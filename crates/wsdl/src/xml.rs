//! WSDL-S XML parsing and printing.
//!
//! The wire form follows the paper's listing (section 3.1):
//!
//! ```xml
//! <definitions name="StudentManagement" targetNamespace="urn:uma:students"
//!              xmlns:sm="http://uma.pt/ontologies/university">
//!   <interface name="StudentManagementUMA">
//!     <operation name="StudentInformation">
//!       <action element="sm:StudentInformation"/>
//!       <input messageLabel="ID" element="sm:StudentID"/>
//!       <output messageLabel="student" element="sm:StudentInfo"/>
//!     </operation>
//!   </interface>
//! </definitions>
//! ```
//!
//! Concept references in `element` attributes are prefixed QNames resolved
//! against the namespace declarations in scope.

use crate::model::{Endpoint, Interface, MessagePart, Operation, ServiceDescription};
use crate::WsdlError;
use std::collections::HashMap;
use whisper_xml::{parse, Element, QName};

/// Namespace prefix environment accumulated while walking the document.
#[derive(Clone, Default)]
struct NsEnv {
    bindings: HashMap<String, String>,
}

impl NsEnv {
    fn extended_with(&self, e: &Element) -> NsEnv {
        let mut env = self.clone();
        for a in &e.attrs {
            if a.prefix.is_none() && a.name == "xmlns" {
                env.bindings.insert(String::new(), a.value.clone());
            } else if a.prefix.as_deref() == Some("xmlns") {
                env.bindings.insert(a.name.to_string(), a.value.clone());
            }
        }
        env
    }

    fn resolve_qname(&self, raw: &str) -> Result<QName, WsdlError> {
        match raw.split_once(':') {
            Some((prefix, local)) => {
                let ns = self
                    .bindings
                    .get(prefix)
                    .ok_or_else(|| WsdlError::UndeclaredPrefix(prefix.to_string()))?;
                Ok(QName::with_ns(ns.clone(), local))
            }
            None => Ok(QName::new(raw)),
        }
    }
}

fn require_attr(e: &Element, attr: &str) -> Result<String, WsdlError> {
    e.attr(attr)
        .map(str::to_string)
        .ok_or_else(|| WsdlError::MissingAttribute {
            element: e.name.to_string(),
            attribute: attr.to_string(),
        })
}

impl ServiceDescription {
    /// Parses a WSDL-S `<definitions>` document from text.
    ///
    /// # Errors
    ///
    /// XML errors, a non-`definitions` root, missing mandatory attributes,
    /// or undeclared concept prefixes.
    pub fn parse(text: &str) -> Result<Self, WsdlError> {
        Self::from_element(&parse(text)?)
    }

    /// Interprets a parsed element tree as a service description.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServiceDescription::parse`], minus XML errors.
    pub fn from_element(root: &Element) -> Result<Self, WsdlError> {
        if root.name != "definitions" {
            return Err(WsdlError::NotDefinitions(root.name.to_string()));
        }
        let env = NsEnv::default().extended_with(root);
        let name = require_attr(root, "name")?;
        let target_namespace = root.attr("targetNamespace").unwrap_or_default().to_string();

        let mut interfaces = Vec::new();
        for ie in root.children_named("interface") {
            let ienv = env.extended_with(ie);
            let mut iface = Interface::new(require_attr(ie, "name")?);
            for oe in ie.children_named("operation") {
                let oenv = ienv.extended_with(oe);
                let oname = require_attr(oe, "name")?;
                let action_el = oe
                    .child("action")
                    .ok_or_else(|| WsdlError::MissingAttribute {
                        element: format!("operation {oname}"),
                        attribute: "action".to_string(),
                    })?;
                let action = oenv
                    .extended_with(action_el)
                    .resolve_qname(&require_attr(action_el, "element")?)?;
                let mut op = Operation::new(oname, action);
                for part in oe.children_named("input") {
                    op.inputs.push(parse_part(part, &oenv)?);
                }
                for part in oe.children_named("output") {
                    op.outputs.push(parse_part(part, &oenv)?);
                }
                iface.operations.push(op);
            }
            interfaces.push(iface);
        }
        let mut endpoints = Vec::new();
        for se in root.children_named("service") {
            for ee in se.children_named("endpoint") {
                endpoints.push(Endpoint {
                    name: require_attr(ee, "name")?,
                    interface: require_attr(ee, "interface")?,
                    address: require_attr(ee, "address")?,
                });
            }
        }
        Ok(ServiceDescription {
            name,
            target_namespace,
            interfaces,
            endpoints,
        })
    }

    /// Renders the description back to its XML form.
    ///
    /// Concept namespaces are assigned the prefixes `c0`, `c1`, ... declared
    /// on the root element.
    pub fn to_element(&self) -> Element {
        // Collect distinct concept namespaces in first-use order.
        let mut ns_order: Vec<String> = Vec::new();
        let add_ns = |q: &QName, ns_order: &mut Vec<String>| {
            if let Some(ns) = q.ns() {
                if !ns_order.iter().any(|u| u == ns) {
                    ns_order.push(ns.to_string());
                }
            }
        };
        for op in self.operations() {
            add_ns(&op.action, &mut ns_order);
            for p in op.inputs.iter().chain(&op.outputs) {
                add_ns(&p.concept, &mut ns_order);
            }
        }
        let prefix_of = |q: &QName| -> String {
            match q.ns() {
                Some(ns) => {
                    let i = ns_order
                        .iter()
                        .position(|u| u == ns)
                        .expect("collected above");
                    format!("c{i}:{}", q.local())
                }
                None => q.local().to_string(),
            }
        };

        let mut root = Element::new("definitions");
        root.set_attr("name", &self.name);
        if !self.target_namespace.is_empty() {
            root.set_attr("targetNamespace", &self.target_namespace);
        }
        for (i, ns) in ns_order.iter().enumerate() {
            root.declare_ns(&format!("c{i}"), ns.clone());
        }
        for iface in &self.interfaces {
            let mut ie = Element::new("interface");
            ie.set_attr("name", &iface.name);
            for op in &iface.operations {
                let mut oe = Element::new("operation");
                oe.set_attr("name", &op.name);
                let mut ae = Element::new("action");
                ae.set_attr("element", prefix_of(&op.action));
                oe.push_child(ae);
                for p in &op.inputs {
                    oe.push_child(part_element("input", p, &prefix_of));
                }
                for p in &op.outputs {
                    oe.push_child(part_element("output", p, &prefix_of));
                }
                ie.push_child(oe);
            }
            root.push_child(ie);
        }
        if !self.endpoints.is_empty() {
            let mut se = Element::new("service");
            se.set_attr("name", &self.name);
            for ep in &self.endpoints {
                let mut ee = Element::new("endpoint");
                ee.set_attr("name", &ep.name);
                ee.set_attr("interface", &ep.interface);
                ee.set_attr("address", &ep.address);
                se.push_child(ee);
            }
            root.push_child(se);
        }
        root
    }

    /// Serializes to document text.
    pub fn to_xml_string(&self) -> String {
        self.to_element().to_xml()
    }
}

fn parse_part(e: &Element, env: &NsEnv) -> Result<MessagePart, WsdlError> {
    let env = env.extended_with(e);
    let label = require_attr(e, "messageLabel")?;
    let concept = env.resolve_qname(&require_attr(e, "element")?)?;
    Ok(MessagePart { label, concept })
}

fn part_element(tag: &str, p: &MessagePart, prefix_of: &impl Fn(&QName) -> String) -> Element {
    let mut e = Element::new(tag);
    e.set_attr("messageLabel", &p.label);
    e.set_attr("element", prefix_of(&p.concept));
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::student_management;
    use whisper_ontology::samples::UNIVERSITY_NS;

    /// The verbatim document shape from the paper's section 3.1 listing.
    const PAPER_WSDL: &str = r#"<?xml version="1.0" encoding="utf-8"?>
<definitions name="StudentManagement" targetNamespace="urn:uma:students"
             xmlns:sm="http://uma.pt/ontologies/university">
  <interface name="StudentManagementUMA">
    <operation name="StudentInformation">
      <action element="sm:StudentInformation"/>
      <input messageLabel="ID" element="sm:StudentID"/>
      <output messageLabel="student" element="sm:StudentInfo"/>
    </operation>
  </interface>
</definitions>"#;

    #[test]
    fn parses_the_paper_listing() {
        let svc = ServiceDescription::parse(PAPER_WSDL).unwrap();
        assert_eq!(svc.name, "StudentManagement");
        assert_eq!(svc.target_namespace, "urn:uma:students");
        let op = svc.operation("StudentInformation").unwrap();
        assert_eq!(
            op.action,
            QName::with_ns(UNIVERSITY_NS, "StudentInformation")
        );
        assert_eq!(op.inputs[0].label, "ID");
        assert_eq!(
            op.inputs[0].concept,
            QName::with_ns(UNIVERSITY_NS, "StudentID")
        );
        assert_eq!(
            op.outputs[0].concept,
            QName::with_ns(UNIVERSITY_NS, "StudentInfo")
        );
    }

    #[test]
    fn round_trip_preserves_model() {
        let svc = student_management();
        let text = svc.to_xml_string();
        let back = ServiceDescription::parse(&text).unwrap();
        assert_eq!(svc, back);
    }

    #[test]
    fn endpoints_round_trip() {
        let svc = student_management().with_endpoint(crate::Endpoint::new(
            "primary",
            "StudentManagementUMA",
            "whisper://proxy-1/students",
        ));
        let back = ServiceDescription::parse(&svc.to_xml_string()).unwrap();
        assert_eq!(svc, back);
        assert!(svc.to_xml_string().contains("<service"));
    }

    #[test]
    fn prefix_declared_on_nested_element_resolves() {
        let text = r#"<definitions name="S">
            <interface name="I">
              <operation name="op" xmlns:x="urn:x">
                <action element="x:Act"/>
              </operation>
            </interface>
        </definitions>"#;
        let svc = ServiceDescription::parse(text).unwrap();
        assert_eq!(
            svc.operation("op").unwrap().action,
            QName::with_ns("urn:x", "Act")
        );
    }

    #[test]
    fn undeclared_concept_prefix_rejected() {
        let text = r#"<definitions name="S"><interface name="I">
            <operation name="op"><action element="nope:Act"/></operation>
        </interface></definitions>"#;
        assert_eq!(
            ServiceDescription::parse(text),
            Err(WsdlError::UndeclaredPrefix("nope".into()))
        );
    }

    #[test]
    fn missing_bits_rejected() {
        assert!(matches!(
            ServiceDescription::parse("<notdefs/>"),
            Err(WsdlError::NotDefinitions(_))
        ));
        assert!(matches!(
            ServiceDescription::parse("<definitions/>"),
            Err(WsdlError::MissingAttribute { .. })
        ));
        // operation without action
        let text = r#"<definitions name="S"><interface name="I">
            <operation name="op"/>
        </interface></definitions>"#;
        assert!(matches!(
            ServiceDescription::parse(text),
            Err(WsdlError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn unprefixed_concept_is_plain_name() {
        let text = r#"<definitions name="S"><interface name="I">
            <operation name="op"><action element="Act"/></operation>
        </interface></definitions>"#;
        let svc = ServiceDescription::parse(text).unwrap();
        assert_eq!(svc.operation("op").unwrap().action, QName::new("Act"));
    }

    #[test]
    fn multiple_concept_namespaces_get_distinct_prefixes() {
        let svc = ServiceDescription::new("S", "urn:s").with_interface(
            Interface::new("I").with_operation(
                Operation::new("op", QName::with_ns("urn:a", "Act"))
                    .with_input("in", QName::with_ns("urn:b", "In")),
            ),
        );
        let text = svc.to_xml_string();
        let back = ServiceDescription::parse(&text).unwrap();
        assert_eq!(svc, back);
        assert!(text.contains("urn:a") && text.contains("urn:b"));
    }
}
