//! Error type for WSDL processing.

use std::error::Error;
use std::fmt;
use whisper_xml::XmlError;

/// An error produced while parsing a WSDL-S document or resolving its
/// semantic annotations against an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsdlError {
    /// The document was not well-formed XML.
    Xml(XmlError),
    /// The root element is not `<definitions>`.
    NotDefinitions(String),
    /// A mandatory attribute is missing from the named element.
    MissingAttribute {
        /// Element the attribute belongs to.
        element: String,
        /// The attribute that was expected.
        attribute: String,
    },
    /// A concept reference uses a namespace prefix that is not declared.
    UndeclaredPrefix(String),
    /// A concept reference does not resolve to a class in the ontology.
    UnknownConcept(String),
    /// An operation was looked up that the description does not define.
    UnknownOperation(String),
}

impl fmt::Display for WsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsdlError::Xml(e) => write!(f, "invalid XML: {e}"),
            WsdlError::NotDefinitions(found) => {
                write!(f, "expected <definitions>, found <{found}>")
            }
            WsdlError::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> is missing the {attribute:?} attribute")
            }
            WsdlError::UndeclaredPrefix(p) => write!(f, "undeclared concept prefix {p:?}"),
            WsdlError::UnknownConcept(c) => write!(f, "concept {c} not found in ontology"),
            WsdlError::UnknownOperation(o) => write!(f, "operation {o:?} not defined"),
        }
    }
}

impl Error for WsdlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WsdlError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for WsdlError {
    fn from(e: XmlError) -> Self {
        WsdlError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(WsdlError::NotDefinitions("x".into())
            .to_string()
            .contains("definitions"));
        let e = WsdlError::MissingAttribute {
            element: "operation".into(),
            attribute: "name".into(),
        };
        assert!(e.to_string().contains("operation") && e.to_string().contains("name"));
        assert!(WsdlError::UnknownConcept("{u}C".into())
            .to_string()
            .contains("{u}C"));
    }
}
