//! Ready-made service descriptions used by examples and benchmarks.

use crate::model::{Interface, Operation, ServiceDescription};
use whisper_ontology::samples::{B2B_NS, UNIVERSITY_NS};
use whisper_xml::QName;

/// The paper's running example: the `StudentManagement` service whose
/// `StudentInformation` operation takes a `StudentID` and returns a
/// `StudentInfo` record (section 3.1).
pub fn student_management() -> ServiceDescription {
    let q = |local: &str| QName::with_ns(UNIVERSITY_NS, local);
    ServiceDescription::new("StudentManagement", "urn:uma:students").with_interface(
        Interface::new("StudentManagementUMA")
            .with_operation(
                Operation::new("StudentInformation", q("StudentInformation"))
                    .with_input("ID", q("StudentID"))
                    .with_output("student", q("StudentInfo")),
            )
            .with_operation(
                Operation::new("StudentTranscript", q("StudentTranscriptRetrieval"))
                    .with_input("ID", q("StudentID"))
                    .with_output("transcript", q("StudentTranscript")),
            ),
    )
}

/// An insurance-claim processing service, one of the B2B workloads the
/// paper's introduction motivates ("insurance claim processing").
pub fn claim_processing() -> ServiceDescription {
    let q = |local: &str| QName::with_ns(B2B_NS, local);
    ServiceDescription::new("ClaimManagement", "urn:acme:claims").with_interface(
        Interface::new("ClaimProcessingPort").with_operation(
            Operation::new("ProcessClaim", q("ClaimProcessing"))
                .with_input("claim", q("InsuranceClaim"))
                .with_output("decision", q("ClaimDecision")),
        ),
    )
}

/// An order-tracking service for the supply-chain example.
pub fn order_tracking() -> ServiceDescription {
    let q = |local: &str| QName::with_ns(B2B_NS, local);
    ServiceDescription::new("OrderManagement", "urn:acme:orders").with_interface(
        Interface::new("OrderTrackingPort")
            .with_operation(
                Operation::new("TrackOrder", q("OrderTracking"))
                    .with_input("order", q("OrderNumber"))
                    .with_output("status", q("OrderStatus")),
            )
            .with_operation(
                Operation::new("ProcessOrder", q("OrderProcessing"))
                    .with_input("order", q("PurchaseOrder"))
                    .with_output("invoice", q("Invoice")),
            ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_ontology::samples::{b2b_ontology, university_ontology};

    #[test]
    fn samples_resolve_against_their_ontologies() {
        assert_eq!(
            student_management()
                .resolve_all(&university_ontology())
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            claim_processing()
                .resolve_all(&b2b_ontology())
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            order_tracking().resolve_all(&b2b_ontology()).unwrap().len(),
            2
        );
    }

    #[test]
    fn samples_round_trip_through_xml() {
        for svc in [student_management(), claim_processing(), order_tracking()] {
            let back = ServiceDescription::parse(&svc.to_xml_string()).unwrap();
            assert_eq!(svc, back);
        }
    }
}
