//! # whisper-wsdl
//!
//! WSDL service descriptions with WSDL-S semantic annotations — the
//! "semantic Web service" half of Whisper's integration story.
//!
//! A [`ServiceDescription`] models the `<definitions>` document of the
//! paper's section 3.1: interfaces containing operations whose *action*,
//! *inputs* and *outputs* are annotated with ontological concepts (qualified
//! names pointing into a [`whisper_ontology::Ontology`]). The crate offers:
//!
//! * an owned model ([`ServiceDescription`], [`Interface`], [`Operation`],
//!   [`MessagePart`]);
//! * WSDL-S XML parsing and printing that round-trips the model;
//! * semantic resolution ([`Operation::resolve`]) from concept QNames to
//!   [`ClassId`]s, producing the [`OperationSemantics`] consumed by the
//!   matchmaker in `whisper` core;
//! * the paper's running example, [`samples::student_management`].
//!
//! [`ClassId`]: whisper_ontology::ClassId
//!
//! # Examples
//!
//! ```
//! use whisper_wsdl::samples::student_management;
//! use whisper_ontology::samples::university_ontology;
//!
//! let service = student_management();
//! let onto = university_ontology();
//! let op = &service.interfaces[0].operations[0];
//! assert_eq!(op.name, "StudentInformation");
//!
//! let sem = op.resolve(&onto).unwrap();
//! assert_eq!(sem.inputs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
pub mod samples;
mod xml;

pub use error::WsdlError;
pub use model::{
    Endpoint, Interface, MessagePart, Operation, OperationSemantics, ServiceDescription,
};

/// Namespace URI for WSDL-S annotation attributes (as used by METEOR-S).
pub const WSDLS_NS: &str = "http://www.ibm.com/xmlns/WebServices/WSSemantics";
