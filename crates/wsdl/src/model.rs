//! The WSDL-S service description model.

use crate::WsdlError;
use whisper_ontology::{ClassId, Ontology};
use whisper_xml::QName;

/// One message part of an operation: a label, a syntactic element name and
/// an ontological concept annotation (the WSDL-S `modelReference`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessagePart {
    /// The `messageLabel` attribute (e.g. `"ID"`).
    pub label: String,
    /// The concept annotating this part, as a qualified name into an
    /// ontology (the paper's `element="sm:StudentID"`).
    pub concept: QName,
}

impl MessagePart {
    /// Creates a part.
    pub fn new(label: impl Into<String>, concept: QName) -> Self {
        MessagePart {
            label: label.into(),
            concept,
        }
    }
}

/// An operation with WSDL-S functional and data semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name (syntactic).
    pub name: String,
    /// Functional semantics: the action concept
    /// (`<action element="sm:StudentInformation"/>`).
    pub action: QName,
    /// Input parts in signature order.
    pub inputs: Vec<MessagePart>,
    /// Output parts in signature order.
    pub outputs: Vec<MessagePart>,
}

impl Operation {
    /// Creates an operation with the given action concept and no parts.
    pub fn new(name: impl Into<String>, action: QName) -> Self {
        Operation {
            name: name.into(),
            action,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds an input part, returning `self` for chaining.
    pub fn with_input(mut self, label: impl Into<String>, concept: QName) -> Self {
        self.inputs.push(MessagePart::new(label, concept));
        self
    }

    /// Adds an output part, returning `self` for chaining.
    pub fn with_output(mut self, label: impl Into<String>, concept: QName) -> Self {
        self.outputs.push(MessagePart::new(label, concept));
        self
    }

    /// Resolves every concept annotation against `ontology`.
    ///
    /// # Errors
    ///
    /// [`WsdlError::UnknownConcept`] naming the first annotation whose
    /// namespace or local name is not defined by the ontology.
    pub fn resolve(&self, ontology: &Ontology) -> Result<OperationSemantics, WsdlError> {
        let resolve_one = |q: &QName| {
            ontology
                .class_by_qname(q)
                .ok_or_else(|| WsdlError::UnknownConcept(q.to_clark()))
        };
        Ok(OperationSemantics {
            operation: self.name.clone(),
            action: resolve_one(&self.action)?,
            inputs: self
                .inputs
                .iter()
                .map(|p| resolve_one(&p.concept))
                .collect::<Result<_, _>>()?,
            outputs: self
                .outputs
                .iter()
                .map(|p| resolve_one(&p.concept))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The fully resolved semantics of one operation: what the SWS-proxy hands
/// to the matchmaker when it searches for a semantic peer group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationSemantics {
    /// Name of the operation these semantics describe.
    pub operation: String,
    /// Resolved action concept.
    pub action: ClassId,
    /// Resolved input concepts in signature order.
    pub inputs: Vec<ClassId>,
    /// Resolved output concepts in signature order.
    pub outputs: Vec<ClassId>,
}

/// A deployed endpoint of a service: where an interface can be invoked.
///
/// Mirrors WSDL 2.0's `<service><endpoint …/></service>` section. Whisper
/// uses it to record which node exposes the SWS-proxy for a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Endpoint name.
    pub name: String,
    /// Name of the interface served at this endpoint.
    pub interface: String,
    /// Transport address (URI).
    pub address: String,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(
        name: impl Into<String>,
        interface: impl Into<String>,
        address: impl Into<String>,
    ) -> Self {
        Endpoint {
            name: name.into(),
            interface: interface.into(),
            address: address.into(),
        }
    }
}

/// A WSDL interface: a named set of operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Interface name.
    pub name: String,
    /// Operations in declaration order.
    pub operations: Vec<Operation>,
}

impl Interface {
    /// Creates an empty interface.
    pub fn new(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            operations: Vec::new(),
        }
    }

    /// Adds an operation, returning `self` for chaining.
    pub fn with_operation(mut self, op: Operation) -> Self {
        self.operations.push(op);
        self
    }
}

/// A WSDL-S `<definitions>` document.
///
/// # Examples
///
/// ```
/// use whisper_wsdl::{Interface, Operation, ServiceDescription};
/// use whisper_xml::QName;
///
/// let ns = "http://uma.pt/ontologies/university";
/// let svc = ServiceDescription::new("StudentManagement", "urn:svc")
///     .with_interface(
///         Interface::new("StudentManagementUMA").with_operation(
///             Operation::new("StudentInformation", QName::with_ns(ns, "StudentInformation"))
///                 .with_input("ID", QName::with_ns(ns, "StudentID"))
///                 .with_output("student", QName::with_ns(ns, "StudentInfo")),
///         ),
///     );
/// assert!(svc.operation("StudentInformation").is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service name (the `name` attribute of `<definitions>`).
    pub name: String,
    /// Target namespace of the definitions document.
    pub target_namespace: String,
    /// Interfaces in declaration order.
    pub interfaces: Vec<Interface>,
    /// Deployed endpoints in declaration order.
    pub endpoints: Vec<Endpoint>,
}

impl ServiceDescription {
    /// Creates an empty description.
    pub fn new(name: impl Into<String>, target_namespace: impl Into<String>) -> Self {
        ServiceDescription {
            name: name.into(),
            target_namespace: target_namespace.into(),
            interfaces: Vec::new(),
            endpoints: Vec::new(),
        }
    }

    /// Adds an interface, returning `self` for chaining.
    pub fn with_interface(mut self, iface: Interface) -> Self {
        self.interfaces.push(iface);
        self
    }

    /// Adds a deployed endpoint, returning `self` for chaining.
    pub fn with_endpoint(mut self, endpoint: Endpoint) -> Self {
        self.endpoints.push(endpoint);
        self
    }

    /// The endpoints serving `interface`.
    pub fn endpoints_of<'a>(&'a self, interface: &'a str) -> impl Iterator<Item = &'a Endpoint> {
        self.endpoints
            .iter()
            .filter(move |e| e.interface == interface)
    }

    /// Finds an operation by name across all interfaces.
    ///
    /// # Errors
    ///
    /// [`WsdlError::UnknownOperation`] when no interface defines it.
    pub fn operation(&self, name: &str) -> Result<&Operation, WsdlError> {
        self.interfaces
            .iter()
            .flat_map(|i| i.operations.iter())
            .find(|o| o.name == name)
            .ok_or_else(|| WsdlError::UnknownOperation(name.to_string()))
    }

    /// Iterates over all operations of all interfaces.
    pub fn operations(&self) -> impl Iterator<Item = &Operation> {
        self.interfaces.iter().flat_map(|i| i.operations.iter())
    }

    /// Resolves the semantics of every operation against an ontology.
    ///
    /// # Errors
    ///
    /// Fails on the first annotation that does not resolve; a service whose
    /// annotations dangle should not be published.
    pub fn resolve_all(&self, ontology: &Ontology) -> Result<Vec<OperationSemantics>, WsdlError> {
        self.operations().map(|o| o.resolve(ontology)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_ontology::samples::{university_ontology, UNIVERSITY_NS};

    fn sample() -> ServiceDescription {
        ServiceDescription::new("StudentManagement", "urn:uma:students").with_interface(
            Interface::new("StudentManagementUMA").with_operation(
                Operation::new(
                    "StudentInformation",
                    QName::with_ns(UNIVERSITY_NS, "StudentInformation"),
                )
                .with_input("ID", QName::with_ns(UNIVERSITY_NS, "StudentID"))
                .with_output("student", QName::with_ns(UNIVERSITY_NS, "StudentInfo")),
            ),
        )
    }

    #[test]
    fn endpoints_attach_to_interfaces() {
        let svc = sample().with_endpoint(Endpoint::new(
            "primary",
            "StudentManagementUMA",
            "whisper://proxy-1/students",
        ));
        assert_eq!(svc.endpoints.len(), 1);
        assert_eq!(svc.endpoints_of("StudentManagementUMA").count(), 1);
        assert_eq!(svc.endpoints_of("Other").count(), 0);
        assert_eq!(
            svc.endpoints_of("StudentManagementUMA")
                .next()
                .expect("present")
                .address,
            "whisper://proxy-1/students"
        );
    }

    #[test]
    fn operation_lookup() {
        let svc = sample();
        assert!(svc.operation("StudentInformation").is_ok());
        assert_eq!(
            svc.operation("Nope"),
            Err(WsdlError::UnknownOperation("Nope".into()))
        );
        assert_eq!(svc.operations().count(), 1);
    }

    #[test]
    fn semantics_resolve_against_university_ontology() {
        let svc = sample();
        let onto = university_ontology();
        let sem = svc
            .operation("StudentInformation")
            .unwrap()
            .resolve(&onto)
            .unwrap();
        assert_eq!(sem.operation, "StudentInformation");
        assert_eq!(onto.class_name(sem.action), Some("StudentInformation"));
        assert_eq!(sem.inputs.len(), 1);
        assert_eq!(onto.class_name(sem.inputs[0]), Some("StudentID"));
        assert_eq!(onto.class_name(sem.outputs[0]), Some("StudentInfo"));
    }

    #[test]
    fn unknown_concept_fails_resolution() {
        let svc = ServiceDescription::new("S", "urn:s").with_interface(
            Interface::new("I").with_operation(Operation::new(
                "op",
                QName::with_ns(UNIVERSITY_NS, "NoSuchConcept"),
            )),
        );
        let err = svc.resolve_all(&university_ontology()).unwrap_err();
        assert!(matches!(err, WsdlError::UnknownConcept(_)));
    }

    #[test]
    fn wrong_namespace_fails_resolution() {
        let svc = ServiceDescription::new("S", "urn:s").with_interface(
            Interface::new("I").with_operation(Operation::new(
                "op",
                QName::with_ns("urn:other", "StudentInformation"),
            )),
        );
        assert!(svc.resolve_all(&university_ontology()).is_err());
    }
}
