//! Ontology alignment: importing foreign vocabularies and asserting
//! concept equivalences.
//!
//! The paper's central integration problem is *semantic heterogeneity*
//! (§2.1): autonomous organizations describe the same things with
//! different vocabularies. Alignment solves it in two steps:
//!
//! 1. [`Ontology::import`] copies a foreign ontology's classes into this
//!    one, preserving their namespace, so concepts from both vocabularies
//!    can be referenced by qualified name;
//! 2. [`Ontology::add_equivalence`] asserts `owl:equivalentClass` between
//!    concepts. Subsumption reasoning and degree-of-match computation treat
//!    equivalent classes as one concept, so an advertisement annotated in
//!    organization B's vocabulary matches a request annotated in
//!    organization A's.
//!
//! Equivalences are maintained as a union–find over class ids; the
//! reasoning routines in [`reason`](crate) canonicalize through it.

use crate::model::{ClassId, Ontology};
use crate::OntologyError;

/// A union–find over class ids representing `owl:equivalentClass`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct Equivalences {
    /// parent pointer per class id; `usize::MAX` sentinel = singleton root.
    parent: Vec<u32>,
}

impl Equivalences {
    fn ensure(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len() as u32);
        }
    }

    pub(crate) fn find(&self, mut x: u32) -> u32 {
        if x as usize >= self.parent.len() {
            return x; // singleton never unioned
        }
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32, n: usize) {
        self.ensure(n);
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }

    pub(crate) fn same(&self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Whether no equivalence has ever been asserted (fast-path check).
    pub(crate) fn is_trivial(&self) -> bool {
        self.parent.iter().enumerate().all(|(i, &p)| p == i as u32)
    }

    /// All ids in `0..n` equivalent to `x` (including `x`).
    pub(crate) fn set_of(&self, x: u32, n: usize) -> Vec<u32> {
        let root = self.find(x);
        (0..n as u32).filter(|&y| self.find(y) == root).collect()
    }

    /// Every non-singleton pair `(a, b)` with `a < b`, for serialization.
    pub(crate) fn pairs(&self, n: usize) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if self.same(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

impl Ontology {
    /// Copies every class of `other` into this ontology, preserving its
    /// namespace, together with the subclass edges among the copied
    /// classes. Returns the id mapping in `other`'s id order.
    ///
    /// Properties and individuals are not imported — alignment concerns the
    /// concept hierarchy.
    ///
    /// # Errors
    ///
    /// [`OntologyError::DuplicateClass`] if a foreign qualified name is
    /// already present.
    pub fn import(&mut self, other: &Ontology) -> Result<Vec<ClassId>, OntologyError> {
        // Reject collisions up front so a failed import leaves no partial
        // state behind.
        for id in other.class_ids() {
            let q = other.class_qname(id).expect("id from iterator");
            if self.class_by_qname(&q).is_some() {
                return Err(OntologyError::DuplicateClass(q.to_clark()));
            }
        }
        let mut mapping = Vec::with_capacity(other.class_count());
        for id in other.class_ids() {
            let q = other.class_qname(id).expect("id from iterator");
            let new_id =
                self.add_foreign_class(q.ns().expect("foreign classes are namespaced"), q.local())?;
            if let Some(l) = other.label(id) {
                self.set_label(new_id, l)?;
            }
            mapping.push(new_id);
        }
        for id in other.class_ids() {
            let sub = mapping[id.index()];
            for &p in other.parents(id) {
                self.add_subclass_edge(sub, mapping[p.index()])?;
            }
        }
        Ok(mapping)
    }

    /// Asserts `owl:equivalentClass` between `a` and `b`: the two concepts
    /// (and everything already equivalent to either) become one concept for
    /// subsumption and matching.
    ///
    /// # Errors
    ///
    /// [`OntologyError::InvalidClassId`] for foreign ids.
    pub fn add_equivalence(&mut self, a: ClassId, b: ClassId) -> Result<(), OntologyError> {
        self.check_class(a)?;
        self.check_class(b)?;
        let n = self.class_count();
        self.equivalences_mut().union(a.0, b.0, n);
        Ok(())
    }

    /// Whether `a` and `b` are the same concept under equivalence.
    pub fn is_equivalent(&self, a: ClassId, b: ClassId) -> bool {
        a == b || self.equivalences().same(a.0, b.0)
    }

    /// All classes equivalent to `c`, including itself.
    pub fn equivalence_set(&self, c: ClassId) -> Vec<ClassId> {
        self.equivalences()
            .set_of(c.0, self.class_count())
            .into_iter()
            .map(ClassId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatchDegree;
    use whisper_xml::QName;

    fn uni_a() -> Ontology {
        let mut o = Ontology::new("urn:org-a");
        let person = o.add_class("Person", &[]).unwrap();
        let student = o.add_class("Student", &[person]).unwrap();
        o.add_class("GradStudent", &[student]).unwrap();
        o
    }

    fn uni_b() -> Ontology {
        let mut o = Ontology::new("urn:org-b");
        let pessoa = o.add_class("Pessoa", &[]).unwrap();
        let estudante = o.add_class("Estudante", &[pessoa]).unwrap();
        o.add_class("Doutorando", &[estudante]).unwrap();
        o.set_label(estudante, "aluno").unwrap();
        o
    }

    #[test]
    fn import_preserves_namespaces_and_hierarchy() {
        let mut a = uni_a();
        let before = a.class_count();
        let mapping = a.import(&uni_b()).unwrap();
        assert_eq!(a.class_count(), before + 3);
        assert_eq!(mapping.len(), 3);
        let estudante = a
            .class_by_qname(&QName::with_ns("urn:org-b", "Estudante"))
            .unwrap();
        let pessoa = a
            .class_by_qname(&QName::with_ns("urn:org-b", "Pessoa"))
            .unwrap();
        assert!(a.is_subclass_of(estudante, pessoa));
        assert_eq!(a.label(estudante), Some("aluno"));
        // native lookup still works
        assert!(a
            .class_by_qname(&QName::with_ns("urn:org-a", "Student"))
            .is_some());
        // imported classes do NOT subsume native ones without alignment
        let student = a.class_by_name("Student").unwrap();
        assert!(!a.is_subclass_of(estudante, student));
    }

    #[test]
    fn import_rejects_collisions_without_partial_state() {
        let mut a = uni_a();
        let mut clash = Ontology::new("urn:org-a"); // same namespace!
        clash.add_class("Student", &[]).unwrap();
        let before = a.class_count();
        assert!(matches!(
            a.import(&clash),
            Err(OntologyError::DuplicateClass(_))
        ));
        assert_eq!(a.class_count(), before);
    }

    #[test]
    fn equivalence_merges_concepts_for_subsumption() {
        let mut a = uni_a();
        a.import(&uni_b()).unwrap();
        let student = a.class_by_name("Student").unwrap();
        let estudante = a
            .class_by_qname(&QName::with_ns("urn:org-b", "Estudante"))
            .unwrap();
        let doutorando = a
            .class_by_qname(&QName::with_ns("urn:org-b", "Doutorando"))
            .unwrap();
        let person = a.class_by_name("Person").unwrap();

        a.add_equivalence(student, estudante).unwrap();
        assert!(a.is_equivalent(student, estudante));
        assert!(!a.is_equivalent(student, person));
        assert_eq!(a.equivalence_set(student).len(), 2);

        // a Doutorando is now a Student (via the equivalence bridge)...
        assert!(a.is_subclass_of(doutorando, student));
        // ...and a Person (crossing vocabularies twice)
        assert!(a.is_subclass_of(doutorando, person));
        // the reverse is still false
        assert!(!a.is_subclass_of(person, doutorando));
    }

    #[test]
    fn equivalence_makes_matches_exact_across_vocabularies() {
        let mut a = uni_a();
        a.import(&uni_b()).unwrap();
        let student = a.class_by_name("Student").unwrap();
        let estudante = a
            .class_by_qname(&QName::with_ns("urn:org-b", "Estudante"))
            .unwrap();
        let doutorando = a
            .class_by_qname(&QName::with_ns("urn:org-b", "Doutorando"))
            .unwrap();

        assert_eq!(a.match_concepts(student, estudante), MatchDegree::Fail);
        a.add_equivalence(student, estudante).unwrap();
        assert_eq!(a.match_concepts(student, estudante), MatchDegree::Exact);
        assert_eq!(a.match_concepts(student, doutorando), MatchDegree::Subsume);
        assert_eq!(a.match_concepts(doutorando, student), MatchDegree::PlugIn);
    }

    #[test]
    fn equivalence_is_transitive_via_union() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        let b = o.add_class("B", &[]).unwrap();
        let c = o.add_class("C", &[]).unwrap();
        o.add_equivalence(a, b).unwrap();
        o.add_equivalence(b, c).unwrap();
        assert!(o.is_equivalent(a, c));
        assert_eq!(o.equivalence_set(b).len(), 3);
        assert_eq!(o.match_concepts(a, c), MatchDegree::Exact);
    }

    #[test]
    fn foreign_ids_rejected() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        assert!(o.add_equivalence(a, ClassId(99)).is_err());
    }
}
