//! The ontology data model: classes, properties and individuals.

use crate::OntologyError;
use std::collections::HashMap;
use whisper_xml::QName;

/// Identifier of a class within one [`Ontology`]. Cheap to copy and compare;
/// only meaningful together with the ontology that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// The position of this class in definition order (the order of
    /// [`Ontology::class_ids`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a property within one [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyId(pub(crate) u32);

/// Identifier of an individual within one [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndividualId(pub(crate) u32);

/// Whether a property relates individuals to individuals or to literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyKind {
    /// `owl:ObjectProperty` — range is a class.
    Object,
    /// `owl:DatatypeProperty` — range is a literal datatype name.
    Datatype,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Class {
    pub name: String,
    /// Namespace override for imported (foreign-vocabulary) classes;
    /// `None` means the ontology's own URI.
    pub ns: Option<String>,
    pub parents: Vec<ClassId>,
    pub children: Vec<ClassId>,
    pub label: Option<String>,
}

/// A property definition: name, kind, domain class and range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    /// Local name of the property.
    pub name: String,
    /// Object vs datatype property.
    pub kind: PropertyKind,
    /// Domain class.
    pub domain: ClassId,
    /// Range: a class for object properties (`Ok`), a datatype name such as
    /// `"xsd:string"` for datatype properties (`Err`).
    pub range: Result<ClassId, String>,
}

/// A named individual with its asserted types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Individual {
    /// Local name of the individual.
    pub name: String,
    /// Classes the individual is asserted to belong to.
    pub types: Vec<ClassId>,
}

/// An ontology: a base URI plus classes, properties and individuals.
///
/// Classes form a directed acyclic graph under `subClassOf`; cycles are
/// rejected at insertion time so all reasoning can assume a DAG.
///
/// # Examples
///
/// ```
/// use whisper_ontology::Ontology;
///
/// # fn main() -> Result<(), whisper_ontology::OntologyError> {
/// let mut o = Ontology::new("urn:example");
/// let thing = o.add_class("Record", &[])?;
/// let info = o.add_class("StudentInfo", &[thing])?;
/// assert_eq!(o.class_name(info), Some("StudentInfo"));
/// assert_eq!(o.class_by_name("StudentInfo"), Some(info));
/// assert!(o.is_subclass_of(info, thing));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ontology {
    uri: String,
    pub(crate) classes: Vec<Class>,
    class_index: HashMap<String, ClassId>,
    /// (namespace, local) index for imported classes.
    foreign_index: HashMap<(String, String), ClassId>,
    properties: Vec<Property>,
    property_index: HashMap<String, PropertyId>,
    individuals: Vec<Individual>,
    individual_index: HashMap<String, IndividualId>,
    /// `owl:equivalentClass` assertions (see the `align` module).
    pub(crate) equivalences: crate::align::Equivalences,
}

impl Ontology {
    /// Creates an empty ontology with the given base URI.
    pub fn new(uri: impl Into<String>) -> Self {
        Ontology {
            uri: uri.into(),
            ..Ontology::default()
        }
    }

    /// The base URI of this ontology (used as the namespace of its concepts).
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// Number of classes defined.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of properties defined.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// Number of individuals defined.
    pub fn individual_count(&self) -> usize {
        self.individuals.len()
    }

    /// Adds a class with the given direct superclasses.
    ///
    /// # Errors
    ///
    /// * [`OntologyError::DuplicateClass`] if the name is taken.
    /// * [`OntologyError::InvalidClassId`] if a parent id is foreign.
    pub fn add_class(&mut self, name: &str, parents: &[ClassId]) -> Result<ClassId, OntologyError> {
        if self.class_index.contains_key(name) {
            return Err(OntologyError::DuplicateClass(name.to_string()));
        }
        for p in parents {
            self.check_class(*p)?;
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: name.to_string(),
            ns: None,
            parents: parents.to_vec(),
            children: Vec::new(),
            label: None,
        });
        for p in parents {
            self.classes[p.0 as usize].children.push(id);
        }
        self.class_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a class from a foreign vocabulary, keyed by `(ns, local)`.
    /// Used by [`Ontology::import`]; a `ns` equal to the ontology URI is
    /// treated as a native class.
    pub(crate) fn add_foreign_class(
        &mut self,
        ns: &str,
        local: &str,
    ) -> Result<ClassId, OntologyError> {
        if ns == self.uri {
            return self.add_class(local, &[]);
        }
        let key = (ns.to_string(), local.to_string());
        if self.foreign_index.contains_key(&key) {
            return Err(OntologyError::DuplicateClass(format!("{{{ns}}}{local}")));
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: local.to_string(),
            ns: Some(ns.to_string()),
            parents: Vec::new(),
            children: Vec::new(),
            label: None,
        });
        self.foreign_index.insert(key, id);
        Ok(id)
    }

    /// Adds a `subClassOf` edge between two existing classes.
    ///
    /// # Errors
    ///
    /// * [`OntologyError::InvalidClassId`] for foreign ids.
    /// * [`OntologyError::CyclicHierarchy`] if `sup` is already a descendant
    ///   of `sub` (the edge would create a cycle). Adding an edge that is
    ///   already present is a no-op.
    pub fn add_subclass_edge(&mut self, sub: ClassId, sup: ClassId) -> Result<(), OntologyError> {
        self.check_class(sub)?;
        self.check_class(sup)?;
        if sub == sup || self.is_subclass_of(sup, sub) {
            return Err(OntologyError::CyclicHierarchy {
                sub: self.classes[sub.0 as usize].name.clone(),
                sup: self.classes[sup.0 as usize].name.clone(),
            });
        }
        if self.classes[sub.0 as usize].parents.contains(&sup) {
            return Ok(());
        }
        self.classes[sub.0 as usize].parents.push(sup);
        self.classes[sup.0 as usize].children.push(sub);
        Ok(())
    }

    /// Attaches a human-readable label to a class.
    pub fn set_label(
        &mut self,
        class: ClassId,
        label: impl Into<String>,
    ) -> Result<(), OntologyError> {
        self.check_class(class)?;
        self.classes[class.0 as usize].label = Some(label.into());
        Ok(())
    }

    /// The label of a class, if one was set.
    pub fn label(&self, class: ClassId) -> Option<&str> {
        self.classes.get(class.0 as usize)?.label.as_deref()
    }

    /// Adds a property definition.
    ///
    /// # Errors
    ///
    /// Duplicate names and foreign class ids are rejected.
    pub fn add_property(
        &mut self,
        name: &str,
        kind: PropertyKind,
        domain: ClassId,
        range: Result<ClassId, String>,
    ) -> Result<PropertyId, OntologyError> {
        if self.property_index.contains_key(name) {
            return Err(OntologyError::DuplicateProperty(name.to_string()));
        }
        self.check_class(domain)?;
        if let Ok(r) = range {
            self.check_class(r)?;
        }
        let id = PropertyId(self.properties.len() as u32);
        self.properties.push(Property {
            name: name.to_string(),
            kind,
            domain,
            range,
        });
        self.property_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a named individual with its asserted types.
    ///
    /// # Errors
    ///
    /// Duplicate names and foreign class ids are rejected.
    pub fn add_individual(
        &mut self,
        name: &str,
        types: &[ClassId],
    ) -> Result<IndividualId, OntologyError> {
        if self.individual_index.contains_key(name) {
            return Err(OntologyError::DuplicateIndividual(name.to_string()));
        }
        for t in types {
            self.check_class(*t)?;
        }
        let id = IndividualId(self.individuals.len() as u32);
        self.individuals.push(Individual {
            name: name.to_string(),
            types: types.to_vec(),
        });
        self.individual_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a class id by local name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_index.get(name).copied()
    }

    /// Looks up a class id by qualified name: the ontology's own URI finds
    /// native classes, an imported vocabulary's URI finds its classes.
    pub fn class_by_qname(&self, qname: &QName) -> Option<ClassId> {
        match qname.ns() {
            Some(ns) if ns == self.uri() => self.class_by_name(qname.local()),
            Some(ns) => self
                .foreign_index
                .get(&(ns.to_string(), qname.local().to_string()))
                .copied(),
            None => None,
        }
    }

    /// The local name of a class.
    pub fn class_name(&self, id: ClassId) -> Option<&str> {
        self.classes.get(id.0 as usize).map(|c| c.name.as_str())
    }

    /// The qualified name of a class: its vocabulary's namespace (the
    /// ontology URI for native classes) plus its local name.
    pub fn class_qname(&self, id: ClassId) -> Option<QName> {
        let c = self.classes.get(id.0 as usize)?;
        let ns = c.ns.clone().unwrap_or_else(|| self.uri.clone());
        Some(QName::with_ns(ns, c.name.clone()))
    }

    /// Direct superclasses of a class.
    pub fn parents(&self, id: ClassId) -> &[ClassId] {
        self.classes
            .get(id.0 as usize)
            .map(|c| c.parents.as_slice())
            .unwrap_or(&[])
    }

    /// Direct subclasses of a class.
    pub fn children(&self, id: ClassId) -> &[ClassId] {
        self.classes
            .get(id.0 as usize)
            .map(|c| c.children.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Looks up a property by name.
    pub fn property_by_name(&self, name: &str) -> Option<(PropertyId, &Property)> {
        let id = *self.property_index.get(name)?;
        Some((id, &self.properties[id.0 as usize]))
    }

    /// Iterates over all properties.
    pub fn properties(&self) -> impl Iterator<Item = &Property> {
        self.properties.iter()
    }

    /// Looks up an individual by name.
    pub fn individual_by_name(&self, name: &str) -> Option<(IndividualId, &Individual)> {
        let id = *self.individual_index.get(name)?;
        Some((id, &self.individuals[id.0 as usize]))
    }

    /// Iterates over all individuals.
    pub fn individuals(&self) -> impl Iterator<Item = &Individual> {
        self.individuals.iter()
    }

    /// Whether the individual is an instance of `class`, directly or via
    /// subsumption.
    pub fn is_instance_of(&self, ind: IndividualId, class: ClassId) -> bool {
        let Some(i) = self.individuals.get(ind.0 as usize) else {
            return false;
        };
        i.types
            .iter()
            .any(|t| *t == class || self.is_subclass_of(*t, class))
    }

    pub(crate) fn equivalences(&self) -> &crate::align::Equivalences {
        &self.equivalences
    }

    pub(crate) fn equivalences_mut(&mut self) -> &mut crate::align::Equivalences {
        &mut self.equivalences
    }

    pub(crate) fn check_class(&self, id: ClassId) -> Result<(), OntologyError> {
        if (id.0 as usize) < self.classes.len() {
            Ok(())
        } else {
            Err(OntologyError::InvalidClassId(id.0 as usize))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_classes() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        let b = o.add_class("B", &[a]).unwrap();
        assert_eq!(o.class_count(), 2);
        assert_eq!(o.class_by_name("B"), Some(b));
        assert_eq!(o.parents(b), &[a]);
        assert_eq!(o.children(a), &[b]);
        assert_eq!(o.class_qname(a).unwrap().to_clark(), "{urn:t}A");
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut o = Ontology::new("urn:t");
        o.add_class("A", &[]).unwrap();
        assert_eq!(
            o.add_class("A", &[]),
            Err(OntologyError::DuplicateClass("A".into()))
        );
    }

    #[test]
    fn foreign_parent_rejected() {
        let mut o = Ontology::new("urn:t");
        assert!(matches!(
            o.add_class("A", &[ClassId(9)]),
            Err(OntologyError::InvalidClassId(9))
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        let b = o.add_class("B", &[a]).unwrap();
        let c = o.add_class("C", &[b]).unwrap();
        assert!(matches!(
            o.add_subclass_edge(a, c),
            Err(OntologyError::CyclicHierarchy { .. })
        ));
        assert!(matches!(
            o.add_subclass_edge(a, a),
            Err(OntologyError::CyclicHierarchy { .. })
        ));
    }

    #[test]
    fn redundant_edge_is_noop() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        let b = o.add_class("B", &[a]).unwrap();
        o.add_subclass_edge(b, a).unwrap();
        assert_eq!(o.parents(b).len(), 1);
    }

    #[test]
    fn properties_and_individuals() {
        let mut o = Ontology::new("urn:t");
        let student = o.add_class("Student", &[]).unwrap();
        let info = o.add_class("StudentInfo", &[]).unwrap();
        o.add_property("hasInfo", PropertyKind::Object, student, Ok(info))
            .unwrap();
        o.add_property(
            "hasId",
            PropertyKind::Datatype,
            student,
            Err("xsd:string".into()),
        )
        .unwrap();
        assert_eq!(o.property_count(), 2);
        let (_, p) = o.property_by_name("hasId").unwrap();
        assert_eq!(p.range, Err("xsd:string".to_string()));

        let grad = o.add_class("Grad", &[student]).unwrap();
        let alice = o.add_individual("alice", &[grad]).unwrap();
        assert!(o.is_instance_of(alice, student));
        assert!(o.is_instance_of(alice, grad));
        assert!(!o.is_instance_of(alice, info));
    }

    #[test]
    fn qname_lookup_requires_matching_namespace() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        assert_eq!(o.class_by_qname(&QName::with_ns("urn:t", "A")), Some(a));
        assert_eq!(o.class_by_qname(&QName::with_ns("urn:other", "A")), None);
        assert_eq!(o.class_by_qname(&QName::new("A")), None);
    }

    #[test]
    fn labels() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        assert_eq!(o.label(a), None);
        o.set_label(a, "a thing").unwrap();
        assert_eq!(o.label(a), Some("a thing"));
    }
}
