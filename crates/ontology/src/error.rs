//! Error type for ontology construction and parsing.

use std::error::Error;
use std::fmt;

/// An error produced while building or deserializing an [`Ontology`].
///
/// [`Ontology`]: crate::Ontology
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// A class with this name already exists in the ontology.
    DuplicateClass(String),
    /// A property with this name already exists in the ontology.
    DuplicateProperty(String),
    /// An individual with this name already exists in the ontology.
    DuplicateIndividual(String),
    /// A referenced class name is not defined.
    UnknownClass(String),
    /// A referenced class id does not belong to this ontology.
    InvalidClassId(usize),
    /// Adding this subclass edge would create a cycle in the hierarchy.
    CyclicHierarchy {
        /// The subclass end of the offending edge.
        sub: String,
        /// The superclass end of the offending edge.
        sup: String,
    },
    /// The XML document is not a valid ontology serialization.
    MalformedDocument(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::DuplicateClass(n) => write!(f, "duplicate class {n:?}"),
            OntologyError::DuplicateProperty(n) => write!(f, "duplicate property {n:?}"),
            OntologyError::DuplicateIndividual(n) => write!(f, "duplicate individual {n:?}"),
            OntologyError::UnknownClass(n) => write!(f, "unknown class {n:?}"),
            OntologyError::InvalidClassId(i) => write!(f, "class id {i} is out of range"),
            OntologyError::CyclicHierarchy { sub, sup } => {
                write!(f, "subclass edge {sub:?} -> {sup:?} would create a cycle")
            }
            OntologyError::MalformedDocument(why) => {
                write!(f, "malformed ontology document: {why}")
            }
        }
    }
}

impl Error for OntologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OntologyError::CyclicHierarchy {
            sub: "A".into(),
            sup: "B".into(),
        };
        assert!(e.to_string().contains("cycle"));
        assert!(OntologyError::UnknownClass("X".into())
            .to_string()
            .contains("X"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<OntologyError>();
    }
}
