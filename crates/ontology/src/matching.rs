//! Degree-of-match computation and graded concept similarity.
//!
//! Whisper's discovery compares the concepts annotating a Web-service
//! operation against the concepts carried by semantic peer-group
//! advertisements. The classic four-degree scale (Paolucci et al., adopted by
//! METEOR-S, which the paper builds on) orders candidate matches.

use crate::model::{ClassId, Ontology};
use std::fmt;

/// How well an advertised concept matches a requested concept.
///
/// Ordered from best to worst, so `max`/sorting picks the strongest match:
/// `Exact > Subsume > PlugIn > Fail`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MatchDegree {
    /// No subsumption relation between the concepts.
    Fail,
    /// The advertised concept is a strict *superclass* of the request: the
    /// provider is more general and can plug in for the request.
    PlugIn,
    /// The advertised concept is a strict *subclass* of the request: the
    /// request subsumes the advertisement (provider is more specific).
    Subsume,
    /// The concepts are identical.
    Exact,
}

impl MatchDegree {
    /// Whether the degree counts as a successful match.
    pub fn is_match(self) -> bool {
        self != MatchDegree::Fail
    }

    /// A numeric score in `[0, 1]` used when aggregating multi-concept
    /// matches: Exact=1.0, Subsume=2/3, PlugIn=1/3, Fail=0.
    pub fn score(self) -> f64 {
        match self {
            MatchDegree::Exact => 1.0,
            MatchDegree::Subsume => 2.0 / 3.0,
            MatchDegree::PlugIn => 1.0 / 3.0,
            MatchDegree::Fail => 0.0,
        }
    }
}

impl fmt::Display for MatchDegree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatchDegree::Exact => "exact",
            MatchDegree::Subsume => "subsume",
            MatchDegree::PlugIn => "plug-in",
            MatchDegree::Fail => "fail",
        };
        f.write_str(s)
    }
}

/// The outcome of matching a list of requested concepts against a list of
/// advertised concepts (e.g. all inputs of an operation).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchReport {
    /// Per-pair degrees, one entry per requested concept.
    pub degrees: Vec<MatchDegree>,
    /// The weakest degree — the overall verdict (a chain is as strong as its
    /// weakest link).
    pub overall: MatchDegree,
    /// Mean numeric score across pairs, for ranking equal verdicts.
    pub score: f64,
}

impl Ontology {
    /// Degree of match of an advertised concept against a requested concept.
    ///
    /// See [`MatchDegree`] for the scale. Both ids must belong to this
    /// ontology; foreign ids yield [`MatchDegree::Fail`].
    pub fn match_concepts(&self, requested: ClassId, advertised: ClassId) -> MatchDegree {
        if self.check_class(requested).is_err() || self.check_class(advertised).is_err() {
            return MatchDegree::Fail;
        }
        if self.is_equivalent(requested, advertised) {
            MatchDegree::Exact
        } else if self.is_subclass_of(advertised, requested) {
            MatchDegree::Subsume
        } else if self.is_subclass_of(requested, advertised) {
            MatchDegree::PlugIn
        } else {
            MatchDegree::Fail
        }
    }

    /// Matches parallel lists of concepts (requested vs advertised).
    ///
    /// Lists of different lengths fail outright: the operation signatures are
    /// structurally incompatible.
    pub fn match_concept_lists(
        &self,
        requested: &[ClassId],
        advertised: &[ClassId],
    ) -> MatchReport {
        if requested.len() != advertised.len() {
            return MatchReport {
                degrees: vec![MatchDegree::Fail; requested.len().max(1)],
                overall: MatchDegree::Fail,
                score: 0.0,
            };
        }
        if requested.is_empty() {
            return MatchReport {
                degrees: Vec::new(),
                overall: MatchDegree::Exact,
                score: 1.0,
            };
        }
        let degrees: Vec<MatchDegree> = requested
            .iter()
            .zip(advertised)
            .map(|(&r, &a)| self.match_concepts(r, a))
            .collect();
        let overall = degrees.iter().copied().min().unwrap_or(MatchDegree::Fail);
        let score = degrees.iter().map(|d| d.score()).sum::<f64>() / degrees.len() as f64;
        MatchReport {
            degrees,
            overall,
            score,
        }
    }

    /// Wu–Palmer-style similarity of two concepts in `[0, 1]`:
    /// `2·depth(lca) / (depth(a) + depth(b))`, and `1.0` for identical
    /// concepts. Returns `0.0` when the concepts share no ancestor.
    pub fn similarity(&self, a: ClassId, b: ClassId) -> f64 {
        if a == b {
            return 1.0;
        }
        let Some(l) = self.lca(a, b) else { return 0.0 };
        let da = self.depth(a) as f64;
        let db = self.depth(b) as f64;
        let dl = self.depth(l) as f64;
        if da + db == 0.0 {
            // both are roots and distinct, but lca existed => impossible;
            // defensive zero.
            return 0.0;
        }
        (2.0 * dl / (da + db)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni() -> (Ontology, ClassId, ClassId, ClassId, ClassId) {
        let mut o = Ontology::new("urn:u");
        let person = o.add_class("Person", &[]).unwrap();
        let student = o.add_class("Student", &[person]).unwrap();
        let grad = o.add_class("Grad", &[student]).unwrap();
        let course = o.add_class("Course", &[]).unwrap();
        (o, person, student, grad, course)
    }

    #[test]
    fn degree_ordering_is_useful_for_max() {
        assert!(MatchDegree::Exact > MatchDegree::Subsume);
        assert!(MatchDegree::Subsume > MatchDegree::PlugIn);
        assert!(MatchDegree::PlugIn > MatchDegree::Fail);
        assert!(MatchDegree::Exact.is_match());
        assert!(!MatchDegree::Fail.is_match());
    }

    #[test]
    fn pairwise_degrees() {
        let (o, person, student, grad, course) = uni();
        assert_eq!(o.match_concepts(student, student), MatchDegree::Exact);
        // advertised grad is more specific than requested student
        assert_eq!(o.match_concepts(student, grad), MatchDegree::Subsume);
        // advertised person is more general than requested student
        assert_eq!(o.match_concepts(student, person), MatchDegree::PlugIn);
        assert_eq!(o.match_concepts(student, course), MatchDegree::Fail);
    }

    #[test]
    fn foreign_ids_fail() {
        let (o, _, student, _, _) = uni();
        assert_eq!(o.match_concepts(student, ClassId(99)), MatchDegree::Fail);
        assert_eq!(o.match_concepts(ClassId(99), student), MatchDegree::Fail);
    }

    #[test]
    fn list_match_takes_weakest_link() {
        let (o, person, student, grad, course) = uni();
        let r = o.match_concept_lists(&[student, student], &[student, grad]);
        assert_eq!(r.overall, MatchDegree::Subsume);
        assert_eq!(r.degrees, vec![MatchDegree::Exact, MatchDegree::Subsume]);
        assert!(r.score > MatchDegree::Subsume.score());

        let r = o.match_concept_lists(&[student, person], &[student, course]);
        assert_eq!(r.overall, MatchDegree::Fail);
    }

    #[test]
    fn list_length_mismatch_fails() {
        let (o, _, student, grad, _) = uni();
        let r = o.match_concept_lists(&[student], &[student, grad]);
        assert_eq!(r.overall, MatchDegree::Fail);
    }

    #[test]
    fn empty_lists_match_exactly() {
        let (o, ..) = uni();
        let r = o.match_concept_lists(&[], &[]);
        assert_eq!(r.overall, MatchDegree::Exact);
        assert_eq!(r.score, 1.0);
    }

    #[test]
    fn similarity_properties() {
        let (o, person, student, grad, course) = uni();
        assert_eq!(o.similarity(grad, grad), 1.0);
        assert_eq!(o.similarity(student, course), 0.0);
        let sib = o.similarity(student, grad);
        let far = o.similarity(person, grad);
        assert!(sib > far, "closer concepts more similar: {sib} vs {far}");
        assert!((0.0..=1.0).contains(&sib));
        // symmetric
        assert_eq!(o.similarity(student, grad), o.similarity(grad, student));
    }

    #[test]
    fn scores_are_monotone_in_degree() {
        assert!(MatchDegree::Exact.score() > MatchDegree::Subsume.score());
        assert!(MatchDegree::Subsume.score() > MatchDegree::PlugIn.score());
        assert!(MatchDegree::PlugIn.score() > MatchDegree::Fail.score());
    }
}
