//! # whisper-ontology
//!
//! An OWL-Lite-flavoured ontology model with subsumption reasoning and the
//! concept-matching machinery that Whisper uses for semantic integration of
//! Web services and peer-to-peer advertisements.
//!
//! The paper annotates WSDL operations and JXTA advertisements with
//! *ontological concepts* and matches them during discovery. This crate
//! provides:
//!
//! * [`Ontology`] — named classes arranged in a multiple-inheritance DAG,
//!   object/datatype properties with domain and range, and individuals;
//! * subsumption reasoning ([`Ontology::is_subclass_of`],
//!   [`Ontology::ancestors`], [`Ontology::lca`], ...);
//! * degree-of-match computation ([`MatchDegree`], [`Ontology::match_concepts`])
//!   following the classic Exact / PlugIn / Subsume / Fail scale;
//! * a graded similarity measure ([`Ontology::similarity`]) used for ranking
//!   and for the discovery-quality experiment;
//! * XML (de)serialization compatible with the rest of the Whisper stack;
//! * the paper's running-example **university ontology**
//!   ([`samples::university_ontology`]).
//!
//! # Examples
//!
//! ```
//! use whisper_ontology::{MatchDegree, Ontology};
//!
//! # fn main() -> Result<(), whisper_ontology::OntologyError> {
//! let mut onto = Ontology::new("http://example.org/uni");
//! let person = onto.add_class("Person", &[])?;
//! let student = onto.add_class("Student", &[person])?;
//! let grad = onto.add_class("GraduateStudent", &[student])?;
//!
//! assert!(onto.is_subclass_of(grad, person));
//! assert_eq!(onto.match_concepts(student, student), MatchDegree::Exact);
//! assert_eq!(onto.match_concepts(student, grad), MatchDegree::Subsume);
//! assert_eq!(onto.match_concepts(grad, student), MatchDegree::PlugIn);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod align;
mod error;
mod matching;
mod model;
mod reason;
pub mod samples;
mod xml;

pub use error::OntologyError;
pub use matching::{MatchDegree, MatchReport};
pub use model::{ClassId, Individual, IndividualId, Ontology, Property, PropertyId, PropertyKind};
