//! Ready-made ontologies used by the paper's running example, the examples
//! and the benchmark workloads.

use crate::model::{ClassId, Ontology, PropertyKind};
use crate::OntologyError;

/// Namespace URI of the university ontology — the `sm:` namespace in the
/// paper's WSDL-S listing.
pub const UNIVERSITY_NS: &str = "http://uma.pt/ontologies/university";

/// Builds the university ontology behind the paper's `StudentManagement`
/// running example (section 3.1): student records, identifiers and the
/// `StudentInformation` action concept, with enough structure (sub- and
/// super-concepts) for non-trivial Subsume/PlugIn matches.
///
/// # Examples
///
/// ```
/// let o = whisper_ontology::samples::university_ontology();
/// let sid = o.class_by_name("StudentID").unwrap();
/// let ident = o.class_by_name("Identifier").unwrap();
/// assert!(o.is_subclass_of(sid, ident));
/// ```
pub fn university_ontology() -> Ontology {
    build_university().expect("static ontology is well-formed")
}

fn build_university() -> Result<Ontology, OntologyError> {
    let mut o = Ontology::new(UNIVERSITY_NS);
    // Top concepts
    let entity = o.add_class("Entity", &[])?;
    let person = o.add_class("Person", &[entity])?;
    let document = o.add_class("Document", &[entity])?;
    let action = o.add_class("Action", &[entity])?;
    let identifier = o.add_class("Identifier", &[entity])?;

    // People
    let student = o.add_class("Student", &[person])?;
    o.add_class("GraduateStudent", &[student])?;
    o.add_class("UndergraduateStudent", &[student])?;
    let staff = o.add_class("Staff", &[person])?;
    o.add_class("Professor", &[staff])?;

    // Identifiers
    let sid = o.add_class("StudentID", &[identifier])?;
    o.add_class("StaffID", &[identifier])?;
    o.add_class("NationalID", &[identifier])?;

    // Records / documents
    let record = o.add_class("Record", &[document])?;
    let info = o.add_class("StudentInfo", &[record])?;
    o.add_class("StudentTranscript", &[info])?;
    o.add_class("StudentContactInfo", &[info])?;
    let staff_rec = o.add_class("StaffRecord", &[record])?;
    o.add_class("PayrollRecord", &[staff_rec])?;
    let enrollment = o.add_class("Enrollment", &[record])?;

    // Academic structure
    let course = o.add_class("Course", &[entity])?;
    o.add_class("GraduateCourse", &[course])?;
    let degree = o.add_class("Degree", &[entity])?;
    o.add_class("MastersDegree", &[degree])?;

    // Actions (functional semantics of operations)
    let retrieval = o.add_class("InformationRetrieval", &[action])?;
    let si = o.add_class("StudentInformation", &[retrieval])?;
    o.add_class("StudentTranscriptRetrieval", &[si])?;
    o.add_class("StaffInformation", &[retrieval])?;
    let update = o.add_class("InformationUpdate", &[action])?;
    o.add_class("EnrollmentUpdate", &[update])?;

    // Properties
    o.add_property(
        "hasIdentifier",
        PropertyKind::Object,
        person,
        Ok(identifier),
    )?;
    o.add_property("describes", PropertyKind::Object, record, Ok(person))?;
    o.add_property("enrolledIn", PropertyKind::Object, student, Ok(course))?;
    o.add_property(
        "idValue",
        PropertyKind::Datatype,
        sid,
        Err("xsd:string".into()),
    )?;
    o.add_property(
        "gpa",
        PropertyKind::Datatype,
        info,
        Err("xsd:decimal".into()),
    )?;

    // A couple of individuals used by examples/tests.
    o.add_individual("databases101", &[course])?;
    let _ = enrollment;
    Ok(o)
}

/// Namespace URI of the B2B commerce ontology used by the insurance-claim and
/// supply-chain examples.
pub const B2B_NS: &str = "http://uma.pt/ontologies/b2b";

/// Builds a business-to-business ontology covering the application domains
/// the paper's introduction motivates: insurance claim processing, bank loan
/// management and healthcare/supply-chain document flows.
pub fn b2b_ontology() -> Ontology {
    build_b2b().expect("static ontology is well-formed")
}

fn build_b2b() -> Result<Ontology, OntologyError> {
    let mut o = Ontology::new(B2B_NS);
    let entity = o.add_class("Entity", &[])?;
    let document = o.add_class("BusinessDocument", &[entity])?;
    let action = o.add_class("BusinessAction", &[entity])?;
    let party = o.add_class("Party", &[entity])?;
    let identifier = o.add_class("Identifier", &[entity])?;

    // Parties
    o.add_class("Customer", &[party])?;
    o.add_class("Supplier", &[party])?;
    o.add_class("Insurer", &[party])?;

    // Documents
    let claim = o.add_class("Claim", &[document])?;
    o.add_class("InsuranceClaim", &[claim])?;
    o.add_class("HealthClaim", &[claim])?;
    let order = o.add_class("Order", &[document])?;
    o.add_class("PurchaseOrder", &[order])?;
    o.add_class("OrderStatus", &[document])?;
    let loan = o.add_class("LoanApplication", &[document])?;
    o.add_class("MortgageApplication", &[loan])?;
    o.add_class("Invoice", &[document])?;
    o.add_class("ShippingNotice", &[document])?;
    let decision = o.add_class("Decision", &[document])?;
    o.add_class("ClaimDecision", &[decision])?;
    o.add_class("LoanDecision", &[decision])?;

    // Identifiers
    o.add_class("ClaimNumber", &[identifier])?;
    o.add_class("OrderNumber", &[identifier])?;
    o.add_class("PolicyNumber", &[identifier])?;

    // Actions
    let processing = o.add_class("DocumentProcessing", &[action])?;
    o.add_class("ClaimProcessing", &[processing])?;
    o.add_class("LoanProcessing", &[processing])?;
    o.add_class("OrderProcessing", &[processing])?;
    let tracking = o.add_class("Tracking", &[action])?;
    o.add_class("OrderTracking", &[tracking])?;
    o.add_class("ShipmentTracking", &[tracking])?;

    o.add_property("submittedBy", PropertyKind::Object, document, Ok(party))?;
    o.add_property(
        "amount",
        PropertyKind::Datatype,
        claim,
        Err("xsd:decimal".into()),
    )?;
    Ok(o)
}

/// Builds a synthetic ontology shaped like a `fanout`-ary tree of the given
/// `depth` (plus a single root), used by benchmark workloads that need
/// ontologies of controlled size. Class names are `C_<level>_<index>`.
///
/// The total class count is `1 + fanout + fanout^2 + ... + fanout^depth`.
///
/// # Panics
///
/// Panics if the requested tree exceeds one million classes — benchmark
/// misconfiguration rather than a legitimate workload.
pub fn synthetic_tree(fanout: usize, depth: usize) -> (Ontology, Vec<ClassId>) {
    let mut total = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= fanout;
        total += level;
    }
    assert!(
        total <= 1_000_000,
        "synthetic ontology too large: {total} classes"
    );

    let mut o = Ontology::new("urn:whisper:synthetic");
    let root = o.add_class("C_0_0", &[]).expect("fresh ontology");
    let mut all = vec![root];
    let mut frontier = vec![root];
    for lvl in 1..=depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for (pi, &parent) in frontier.iter().enumerate() {
            for f in 0..fanout {
                let name = format!("C_{lvl}_{}", pi * fanout + f);
                let id = o.add_class(&name, &[parent]).expect("unique names");
                next.push(id);
            }
        }
        all.extend(&next);
        frontier = next;
    }
    (o, all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatchDegree;

    #[test]
    fn university_ontology_structure() {
        let o = university_ontology();
        assert!(o.class_count() >= 25, "got {}", o.class_count());
        let grad = o.class_by_name("GraduateStudent").unwrap();
        let person = o.class_by_name("Person").unwrap();
        assert!(o.is_subclass_of(grad, person));
        let si = o.class_by_name("StudentInformation").unwrap();
        let action = o.class_by_name("Action").unwrap();
        assert!(o.is_subclass_of(si, action));
    }

    #[test]
    fn paper_scenario_concepts_exist() {
        // The WSDL-S listing in section 3.1 references these concepts.
        let o = university_ontology();
        for c in ["StudentID", "StudentInfo", "StudentInformation"] {
            assert!(o.class_by_name(c).is_some(), "missing concept {c}");
        }
    }

    #[test]
    fn data_warehouse_peer_can_subsume_db_peer() {
        // Section 4.1: a peer returning data-warehouse records substitutes
        // for the operational-database peer because the concepts subsume.
        let o = university_ontology();
        let info = o.class_by_name("StudentInfo").unwrap();
        let transcript = o.class_by_name("StudentTranscript").unwrap();
        assert_eq!(o.match_concepts(info, transcript), MatchDegree::Subsume);
    }

    #[test]
    fn b2b_ontology_structure() {
        let o = b2b_ontology();
        assert!(o.class_count() >= 25);
        let ins = o.class_by_name("InsuranceClaim").unwrap();
        let doc = o.class_by_name("BusinessDocument").unwrap();
        assert!(o.is_subclass_of(ins, doc));
    }

    #[test]
    fn synthetic_tree_counts() {
        let (o, all) = synthetic_tree(3, 3);
        assert_eq!(o.class_count(), 1 + 3 + 9 + 27);
        assert_eq!(all.len(), o.class_count());
        // every non-root has exactly one parent
        let root = all[0];
        for &c in &all[1..] {
            assert_eq!(o.parents(c).len(), 1);
            assert!(o.is_subclass_of(c, root));
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn synthetic_tree_guards_size() {
        let _ = synthetic_tree(100, 4);
    }
}
