//! Subsumption reasoning over the class DAG.

use crate::model::{ClassId, Ontology};
use std::collections::{HashSet, VecDeque};

impl Ontology {
    /// Whether `sub` is a (strict or reflexive) subclass of `sup`.
    ///
    /// Every class is considered a subclass of itself, matching the
    /// reflexivity of `rdfs:subClassOf`, and `owl:equivalentClass`
    /// assertions merge concepts: the walk crosses equivalence bridges in
    /// both vocabularies (see the crate's alignment support).
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup || self.is_equivalent(sub, sup) {
            return true;
        }
        let has_equivalences = !self.equivalences().is_trivial();
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([sub]);
        seen.insert(sub);
        while let Some(c) = queue.pop_front() {
            // expand through the equivalence set before walking up
            let members: Vec<ClassId> = if has_equivalences {
                self.equivalence_set(c)
            } else {
                vec![c]
            };
            for m in members {
                if m == sup || self.is_equivalent(m, sup) {
                    return true;
                }
                for &p in self.parents(m) {
                    if p == sup || self.is_equivalent(p, sup) {
                        return true;
                    }
                    if seen.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        false
    }

    /// All strict ancestors of `class` (excluding itself), breadth-first.
    pub fn ancestors(&self, class: ClassId) -> Vec<ClassId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut queue = VecDeque::from([class]);
        while let Some(c) = queue.pop_front() {
            for &p in self.parents(c) {
                if seen.insert(p) {
                    out.push(p);
                    queue.push_back(p);
                }
            }
        }
        out
    }

    /// All strict descendants of `class` (excluding itself), breadth-first.
    pub fn descendants(&self, class: ClassId) -> Vec<ClassId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut queue = VecDeque::from([class]);
        while let Some(c) = queue.pop_front() {
            for &ch in self.children(c) {
                if seen.insert(ch) {
                    out.push(ch);
                    queue.push_back(ch);
                }
            }
        }
        out
    }

    /// Depth of a class: length of the longest parent chain to a root
    /// (a class with no parents). Roots have depth 0.
    pub fn depth(&self, class: ClassId) -> usize {
        self.parents(class)
            .iter()
            .map(|&p| self.depth(p) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Distance (number of edges) of the shortest upward path from `sub`
    /// to `sup`, or `None` when `sup` does not subsume `sub`.
    pub fn up_distance(&self, sub: ClassId, sup: ClassId) -> Option<usize> {
        if sub == sup {
            return Some(0);
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([(sub, 0usize)]);
        while let Some((c, d)) = queue.pop_front() {
            for &p in self.parents(c) {
                if p == sup {
                    return Some(d + 1);
                }
                if seen.insert(p) {
                    queue.push_back((p, d + 1));
                }
            }
        }
        None
    }

    /// A lowest common ancestor of two classes: a common subsumer of both
    /// with maximal depth. Returns `None` only when the classes share no
    /// ancestor at all (disjoint roots).
    pub fn lca(&self, a: ClassId, b: ClassId) -> Option<ClassId> {
        let mut a_up: HashSet<ClassId> = HashSet::from([a]);
        a_up.extend(self.ancestors(a));
        std::iter::once(b)
            .chain(self.ancestors(b))
            .filter(|c| a_up.contains(c))
            .max_by_key(|&c| self.depth(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the diamond:
    /// ```text
    ///        Thing
    ///       /     \
    ///   Person   Record
    ///      |    \   |
    ///  Student   Staff(Person,Record)
    ///      |
    ///  Grad
    /// ```
    fn diamond() -> (Ontology, [ClassId; 6]) {
        let mut o = Ontology::new("urn:d");
        let thing = o.add_class("Thing", &[]).unwrap();
        let person = o.add_class("Person", &[thing]).unwrap();
        let record = o.add_class("Record", &[thing]).unwrap();
        let student = o.add_class("Student", &[person]).unwrap();
        let staff = o.add_class("Staff", &[person, record]).unwrap();
        let grad = o.add_class("Grad", &[student]).unwrap();
        (o, [thing, person, record, student, staff, grad])
    }

    #[test]
    fn subsumption_transitive_and_reflexive() {
        let (o, [thing, person, record, student, _, grad]) = diamond();
        assert!(o.is_subclass_of(grad, grad));
        assert!(o.is_subclass_of(grad, student));
        assert!(o.is_subclass_of(grad, person));
        assert!(o.is_subclass_of(grad, thing));
        assert!(!o.is_subclass_of(grad, record));
        assert!(!o.is_subclass_of(person, student));
    }

    #[test]
    fn multiple_inheritance_subsumes_both_parents() {
        let (o, [thing, person, record, _, staff, _]) = diamond();
        assert!(o.is_subclass_of(staff, person));
        assert!(o.is_subclass_of(staff, record));
        assert!(o.is_subclass_of(staff, thing));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (o, [thing, person, _, student, _, grad]) = diamond();
        let anc = o.ancestors(grad);
        assert_eq!(anc, vec![student, person, thing]);
        let desc = o.descendants(person);
        assert!(desc.contains(&student) && desc.contains(&grad));
        assert!(o.descendants(grad).is_empty());
        assert!(o.ancestors(thing).is_empty());
    }

    #[test]
    fn depth_and_up_distance() {
        let (o, [thing, person, _, student, staff, grad]) = diamond();
        assert_eq!(o.depth(thing), 0);
        assert_eq!(o.depth(person), 1);
        assert_eq!(o.depth(grad), 3);
        assert_eq!(o.depth(staff), 2);
        assert_eq!(o.up_distance(grad, thing), Some(3));
        assert_eq!(o.up_distance(grad, grad), Some(0));
        assert_eq!(o.up_distance(person, grad), None);
        assert_eq!(o.up_distance(grad, student), Some(1));
    }

    #[test]
    fn lca_picks_deepest_common_subsumer() {
        let (o, [thing, person, record, student, staff, grad]) = diamond();
        assert_eq!(o.lca(grad, staff), Some(person));
        assert_eq!(o.lca(student, staff), Some(person));
        assert_eq!(o.lca(record, student), Some(thing));
        // one subsumes the other: the subsumer is the LCA
        assert_eq!(o.lca(grad, person), Some(person));
        assert_eq!(o.lca(person, grad), Some(person));
        assert_eq!(o.lca(grad, grad), Some(grad));
    }

    #[test]
    fn lca_none_for_disjoint_roots() {
        let mut o = Ontology::new("urn:t");
        let a = o.add_class("A", &[]).unwrap();
        let b = o.add_class("B", &[]).unwrap();
        assert_eq!(o.lca(a, b), None);
    }
}
