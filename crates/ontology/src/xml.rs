//! XML (de)serialization of ontologies.
//!
//! The format is a compact OWL-inspired dialect that round-trips the model
//! exactly; it is what Whisper nodes exchange when synchronizing ontologies:
//!
//! ```xml
//! <Ontology uri="http://example.org/uni">
//!   <Class name="Student" subClassOf="Person" label="a student"/>
//!   <ObjectProperty name="hasInfo" domain="Student" range="StudentInfo"/>
//!   <DatatypeProperty name="hasId" domain="Student" range="xsd:string"/>
//!   <Individual name="alice" type="Student"/>
//! </Ontology>
//! ```

use crate::model::{ClassId, Ontology, PropertyKind};
use crate::OntologyError;
use whisper_xml::{Element, QName};

impl Ontology {
    /// Textual reference to a class: the local name for native classes,
    /// Clark notation for imported ones (which may share local names).
    fn class_ref(&self, id: ClassId) -> String {
        let q = self.class_qname(id).expect("valid id");
        if q.ns() == Some(self.uri()) {
            q.local().to_string()
        } else {
            q.to_clark()
        }
    }

    /// Resolves a textual reference produced by [`Ontology::class_ref`].
    fn resolve_ref(&self, r: &str) -> Option<ClassId> {
        if r.starts_with('{') {
            self.class_by_qname(&QName::from_clark(r)?)
        } else {
            self.class_by_name(r)
        }
    }

    /// Serializes the ontology to its XML exchange form.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("Ontology");
        root.set_attr("uri", self.uri());
        for id in self.class_ids() {
            let mut c = Element::new("Class");
            c.set_attr("name", self.class_name(id).expect("class id from iterator"));
            let q = self.class_qname(id).expect("class id from iterator");
            if q.ns() != Some(self.uri()) {
                c.set_attr("ns", q.ns().expect("foreign classes are namespaced"));
            }
            let parents: Vec<String> = self
                .parents(id)
                .iter()
                .map(|&p| self.class_ref(p))
                .collect();
            if !parents.is_empty() {
                c.set_attr("subClassOf", parents.join(" "));
            }
            if let Some(l) = self.label(id) {
                c.set_attr("label", l);
            }
            root.push_child(c);
        }
        for (a, b) in self.equivalences.pairs(self.class_count()) {
            let mut e = Element::new("EquivalentClasses");
            e.set_attr("a", self.class_ref(ClassId(a)));
            e.set_attr("b", self.class_ref(ClassId(b)));
            root.push_child(e);
        }
        for p in self.properties() {
            let tag = match p.kind {
                PropertyKind::Object => "ObjectProperty",
                PropertyKind::Datatype => "DatatypeProperty",
            };
            let mut e = Element::new(tag);
            e.set_attr("name", &p.name);
            if let Some(d) = self.class_name(p.domain) {
                e.set_attr("domain", d);
            }
            match &p.range {
                Ok(c) => {
                    if let Some(r) = self.class_name(*c) {
                        e.set_attr("range", r);
                    }
                }
                Err(dt) => {
                    e.set_attr("range", dt);
                }
            }
            root.push_child(e);
        }
        for i in self.individuals() {
            let mut e = Element::new("Individual");
            e.set_attr("name", &i.name);
            let types: Vec<&str> = i.types.iter().filter_map(|t| self.class_name(*t)).collect();
            if !types.is_empty() {
                e.set_attr("type", types.join(" "));
            }
            root.push_child(e);
        }
        root
    }

    /// Parses an ontology from its XML exchange form.
    ///
    /// Classes may be declared in any order; forward references in
    /// `subClassOf` are resolved in a second pass.
    ///
    /// # Errors
    ///
    /// [`OntologyError::MalformedDocument`] for structural problems,
    /// [`OntologyError::UnknownClass`] for dangling references, and the
    /// usual construction errors (duplicates, cycles).
    pub fn from_xml(root: &Element) -> Result<Self, OntologyError> {
        if root.name != "Ontology" {
            return Err(OntologyError::MalformedDocument(format!(
                "expected <Ontology>, found <{}>",
                root.name
            )));
        }
        let uri = root
            .attr("uri")
            .ok_or_else(|| OntologyError::MalformedDocument("missing uri attribute".into()))?;
        let mut onto = Ontology::new(uri);

        // Pass 1: declare all classes (imported ones carry a `ns`).
        let mut ids_in_order = Vec::new();
        for c in root.children_named("Class") {
            let name = c.attr("name").ok_or_else(|| {
                OntologyError::MalformedDocument("Class missing name attribute".into())
            })?;
            let id = match c.attr("ns") {
                Some(ns) => onto.add_foreign_class(ns, name)?,
                None => onto.add_class(name, &[])?,
            };
            if let Some(l) = c.attr("label") {
                onto.set_label(id, l)?;
            }
            ids_in_order.push(id);
        }
        // Pass 2: wire subclass edges.
        for (c, &sub) in root.children_named("Class").zip(&ids_in_order) {
            if let Some(parents) = c.attr("subClassOf") {
                for p in parents.split_whitespace() {
                    let sup = onto
                        .resolve_ref(p)
                        .ok_or_else(|| OntologyError::UnknownClass(p.to_string()))?;
                    onto.add_subclass_edge(sub, sup)?;
                }
            }
        }
        // Equivalences.
        for e in root.children_named("EquivalentClasses") {
            let get = |attr: &str| -> Result<ClassId, OntologyError> {
                let r = e.attr(attr).ok_or_else(|| {
                    OntologyError::MalformedDocument("EquivalentClasses missing class ref".into())
                })?;
                onto.resolve_ref(r)
                    .ok_or_else(|| OntologyError::UnknownClass(r.to_string()))
            };
            onto.add_equivalence(get("a")?, get("b")?)?;
        }
        // Properties.
        for e in root.child_elements() {
            let kind = match e.name.as_str() {
                "ObjectProperty" => PropertyKind::Object,
                "DatatypeProperty" => PropertyKind::Datatype,
                _ => continue,
            };
            let name = e
                .attr("name")
                .ok_or_else(|| OntologyError::MalformedDocument("property missing name".into()))?;
            let domain_name = e.attr("domain").ok_or_else(|| {
                OntologyError::MalformedDocument(format!("property {name} missing domain"))
            })?;
            let domain = onto
                .class_by_name(domain_name)
                .ok_or_else(|| OntologyError::UnknownClass(domain_name.to_string()))?;
            let range_s = e.attr("range").ok_or_else(|| {
                OntologyError::MalformedDocument(format!("property {name} missing range"))
            })?;
            let range = match kind {
                PropertyKind::Object => Ok(onto
                    .class_by_name(range_s)
                    .ok_or_else(|| OntologyError::UnknownClass(range_s.to_string()))?),
                PropertyKind::Datatype => Err(range_s.to_string()),
            };
            onto.add_property(name, kind, domain, range)?;
        }
        // Individuals.
        for e in root.children_named("Individual") {
            let name = e.attr("name").ok_or_else(|| {
                OntologyError::MalformedDocument("Individual missing name".into())
            })?;
            let mut types = Vec::new();
            if let Some(ts) = e.attr("type") {
                for t in ts.split_whitespace() {
                    types.push(
                        onto.class_by_name(t)
                            .ok_or_else(|| OntologyError::UnknownClass(t.to_string()))?,
                    );
                }
            }
            onto.add_individual(name, &types)?;
        }
        Ok(onto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::university_ontology;
    use whisper_xml::parse;

    #[test]
    fn round_trip_university_ontology() {
        let onto = university_ontology();
        let xml = onto.to_xml().to_xml();
        let reparsed = Ontology::from_xml(&parse(&xml).unwrap()).unwrap();
        assert_eq!(onto, reparsed);
    }

    #[test]
    fn forward_references_resolve() {
        let xml = r#"<Ontology uri="urn:t">
            <Class name="B" subClassOf="A"/>
            <Class name="A"/>
        </Ontology>"#;
        let onto = Ontology::from_xml(&parse(xml).unwrap()).unwrap();
        let a = onto.class_by_name("A").unwrap();
        let b = onto.class_by_name("B").unwrap();
        assert!(onto.is_subclass_of(b, a));
    }

    #[test]
    fn dangling_reference_rejected() {
        let xml = r#"<Ontology uri="urn:t"><Class name="B" subClassOf="Nope"/></Ontology>"#;
        let err = Ontology::from_xml(&parse(xml).unwrap()).unwrap_err();
        assert_eq!(err, OntologyError::UnknownClass("Nope".into()));
    }

    #[test]
    fn wrong_root_rejected() {
        let err = Ontology::from_xml(&parse("<Other/>").unwrap()).unwrap_err();
        assert!(matches!(err, OntologyError::MalformedDocument(_)));
    }

    #[test]
    fn missing_uri_rejected() {
        let err = Ontology::from_xml(&parse("<Ontology/>").unwrap()).unwrap_err();
        assert!(matches!(err, OntologyError::MalformedDocument(_)));
    }

    #[test]
    fn properties_and_individuals_round_trip() {
        let xml = r#"<Ontology uri="urn:t">
            <Class name="Student"/>
            <Class name="Info"/>
            <ObjectProperty name="hasInfo" domain="Student" range="Info"/>
            <DatatypeProperty name="hasId" domain="Student" range="xsd:int"/>
            <Individual name="alice" type="Student"/>
        </Ontology>"#;
        let onto = Ontology::from_xml(&parse(xml).unwrap()).unwrap();
        assert_eq!(onto.property_count(), 2);
        assert_eq!(onto.individual_count(), 1);
        let again = Ontology::from_xml(&parse(&onto.to_xml().to_xml()).unwrap()).unwrap();
        assert_eq!(onto, again);
    }

    #[test]
    fn aligned_ontology_round_trips() {
        let mut a = Ontology::new("urn:org-a");
        let person = a.add_class("Person", &[]).unwrap();
        let student = a.add_class("Student", &[person]).unwrap();
        let mut b = Ontology::new("urn:org-b");
        let pessoa = b.add_class("Pessoa", &[]).unwrap();
        b.add_class("Estudante", &[pessoa]).unwrap();
        let mapping = a.import(&b).unwrap();
        a.add_equivalence(student, mapping[1]).unwrap();

        let text = a.to_xml().to_xml();
        let back = Ontology::from_xml(&parse(&text).unwrap()).unwrap();
        assert_eq!(a, back);
        // equivalence semantics survived
        let s2 = back.class_by_name("Student").unwrap();
        let e2 = back
            .class_by_qname(&whisper_xml::QName::with_ns("urn:org-b", "Estudante"))
            .unwrap();
        assert!(back.is_equivalent(s2, e2));
    }

    #[test]
    fn foreign_local_name_collision_round_trips() {
        // both vocabularies define "Student"; Clark refs disambiguate
        let mut a = Ontology::new("urn:org-a");
        let s_a = a.add_class("Student", &[]).unwrap();
        let mut b = Ontology::new("urn:org-b");
        let s_b0 = b.add_class("Student", &[]).unwrap();
        b.add_class("Grad", &[s_b0]).unwrap();
        let mapping = a.import(&b).unwrap();
        a.add_equivalence(s_a, mapping[0]).unwrap();
        let text = a.to_xml().to_xml();
        let back = Ontology::from_xml(&parse(&text).unwrap()).unwrap();
        assert_eq!(a, back);
    }
}
