//! Real-time execution of [`Actor`]s over OS threads and channels.
//!
//! [`ThreadNet`] runs each actor on its own thread, connected by unbounded
//! crossbeam channels; timers are real-time deadlines. This gives wall-clock
//! numbers for Criterion benches from exactly the protocol code that the
//! deterministic [`SimNet`](crate::SimNet) exercises in tests.
//!
//! The node loop is transport-agnostic: outgoing sends go through the
//! crate-internal `Outbound` trait, which [`ThreadNet`] backs with channels
//! and [`tcpnet::TcpNet`](crate::tcpnet::TcpNet) backs with real TCP
//! loopback sockets — the same actor objects run unmodified on either.
//!
//! Fault injection and link modelling are intentionally absent here: the
//! threaded transport exists to measure real in-process messaging cost, not
//! to emulate the LAN.

use crate::engine::{Actor, Context, NodeId, Op, TimerId};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::time::SimTime;
use crate::Wire;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) enum Ctl<M> {
    Msg(NodeId, M),
    Stop,
}

/// How a node thread pushes a message toward another node.
///
/// `ThreadNet` sends over in-process channels; `TcpNet` encodes to bytes and
/// writes a frame to the link's socket. The node loop (`run_node`) is
/// oblivious to which one it is running on.
pub(crate) trait Outbound<M>: Send + Sync {
    fn send(&self, from: NodeId, to: NodeId, msg: M);
}

/// Channel-backed transport: delivery is a crossbeam send.
pub(crate) struct ChannelOutbound<M> {
    senders: Vec<Sender<Ctl<M>>>,
    metrics: Arc<Mutex<Metrics>>,
}

impl<M: Wire> Outbound<M> for ChannelOutbound<M> {
    fn send(&self, from: NodeId, to: NodeId, msg: M) {
        self.metrics.lock().on_send(msg.kind(), msg.wire_size());
        if let Some(tx) = self.senders.get(to.index()) {
            if tx.send(Ctl::Msg(from, msg)).is_ok() {
                self.metrics.lock().on_deliver();
            }
        }
    }
}

struct PendingTimer {
    deadline: Instant,
    id: TimerId,
    token: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.id == other.id
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // invert: BinaryHeap is a max-heap, we want the earliest deadline
        other.deadline.cmp(&self.deadline)
    }
}

pub(crate) struct Shared<M> {
    pub(crate) outbound: Arc<dyn Outbound<M>>,
    pub(crate) epoch: Instant,
}

impl<M> Clone for Shared<M> {
    fn clone(&self) -> Self {
        Shared {
            outbound: Arc::clone(&self.outbound),
            epoch: self.epoch,
        }
    }
}

pub(crate) trait Spawnable<M: Wire>: Send {
    fn spawn(
        self: Box<Self>,
        id: NodeId,
        rx: Receiver<Ctl<M>>,
        shared: Shared<M>,
    ) -> JoinHandle<Box<dyn Any + Send>>;
}

pub(crate) struct Holder<A>(pub(crate) A);

impl<M: Wire, A: Actor<M> + Any + Send + 'static> Spawnable<M> for Holder<A> {
    fn spawn(
        self: Box<Self>,
        id: NodeId,
        rx: Receiver<Ctl<M>>,
        shared: Shared<M>,
    ) -> JoinHandle<Box<dyn Any + Send>> {
        std::thread::spawn(move || {
            let mut actor = self.0;
            run_node(&mut actor, id, rx, shared);
            Box::new(actor) as Box<dyn Any + Send>
        })
    }
}

pub(crate) fn run_node<M: Wire>(
    actor: &mut dyn Actor<M>,
    id: NodeId,
    rx: Receiver<Ctl<M>>,
    shared: Shared<M>,
) {
    let mut rng = SmallRng::seed_from_u64(0x5157_0000 + id.index() as u64);
    let mut next_timer: u64 = 0;
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerId> = HashSet::new();

    enum Hook<M> {
        Start,
        Message(NodeId, M),
        Timer(u64),
    }

    let run_hook = |actor: &mut dyn Actor<M>,
                    hook: Hook<M>,
                    rng: &mut SmallRng,
                    next_timer: &mut u64,
                    timers: &mut BinaryHeap<PendingTimer>,
                    cancelled: &mut HashSet<TimerId>| {
        let now = SimTime::from_micros(shared.epoch.elapsed().as_micros() as u64);
        let mut ctx = Context::detached(now, id, next_timer, rng);
        match hook {
            Hook::Start => actor.on_start(&mut ctx),
            Hook::Message(from, m) => actor.on_message(&mut ctx, from, m),
            Hook::Timer(token) => actor.on_timer(&mut ctx, token),
        }
        let ops = ctx.take_ops();
        let now_i = Instant::now();
        for op in ops {
            match op {
                Op::Send { to, msg } => {
                    shared.outbound.send(id, to, msg);
                }
                Op::SetTimer {
                    id: tid,
                    delay,
                    token,
                } => {
                    timers.push(PendingTimer {
                        deadline: now_i + Duration::from_micros(delay.as_micros()),
                        id: tid,
                        token,
                    });
                }
                Op::CancelTimer(tid) => {
                    cancelled.insert(tid);
                }
            }
        }
    };

    run_hook(
        actor,
        Hook::Start,
        &mut rng,
        &mut next_timer,
        &mut timers,
        &mut cancelled,
    );
    loop {
        // Fire all due timers.
        loop {
            let due = match timers.peek() {
                Some(t) if t.deadline <= Instant::now() => timers.pop().expect("peeked"),
                _ => break,
            };
            if !cancelled.remove(&due.id) {
                run_hook(
                    actor,
                    Hook::Timer(due.token),
                    &mut rng,
                    &mut next_timer,
                    &mut timers,
                    &mut cancelled,
                );
            }
        }
        let timeout = timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Ctl::Msg(from, m)) => run_hook(
                actor,
                Hook::Message(from, m),
                &mut rng,
                &mut next_timer,
                &mut timers,
                &mut cancelled,
            ),
            Ok(Ctl::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Collects actors before spawning threads.
///
/// Node ids are assigned in registration order, matching
/// [`SimNet::add_node`](crate::SimNet::add_node), so the same wiring code
/// can target either runtime.
pub struct ThreadNetBuilder<M: Wire> {
    actors: Vec<Box<dyn Spawnable<M>>>,
}

impl<M: Wire> Default for ThreadNetBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire> ThreadNetBuilder<M> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ThreadNetBuilder { actors: Vec::new() }
    }

    /// Registers an actor and returns its future node id.
    pub fn add_node(&mut self, actor: impl Actor<M> + Any + 'static) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(Box::new(Holder(actor)));
        id
    }

    /// Spawns every registered actor on its own thread and returns the
    /// running network. Each actor's `on_start` runs before its first
    /// message is processed.
    pub fn start(self) -> ThreadNet<M> {
        let metrics = Arc::new(Mutex::new(Metrics::new()));
        let mut senders = Vec::with_capacity(self.actors.len());
        let mut receivers = Vec::with_capacity(self.actors.len());
        for _ in 0..self.actors.len() {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let outbound = ChannelOutbound {
            senders: senders.clone(),
            metrics: Arc::clone(&metrics),
        };
        let shared = Shared {
            outbound: Arc::new(outbound) as Arc<dyn Outbound<M>>,
            epoch: Instant::now(),
        };
        let handles = self
            .actors
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(i, (a, rx))| a.spawn(NodeId(i as u32), rx, shared.clone()))
            .collect();
        ThreadNet {
            senders,
            handles,
            metrics,
        }
    }
}

/// A running real-time network of actors.
///
/// # Examples
///
/// ```
/// use whisper_simnet::threadnet::ThreadNetBuilder;
/// use whisper_simnet::{Actor, Context, NodeId, Wire};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// #[derive(Clone, Debug)]
/// struct Hit;
/// impl Wire for Hit { fn wire_size(&self) -> usize { 8 } }
///
/// struct Counter(Arc<AtomicU32>);
/// impl Actor<Hit> for Counter {
///     fn on_message(&mut self, _: &mut Context<'_, Hit>, _: NodeId, _: Hit) {
///         self.0.fetch_add(1, Ordering::SeqCst);
///     }
/// }
///
/// let hits = Arc::new(AtomicU32::new(0));
/// let mut b = ThreadNetBuilder::new();
/// let counter = b.add_node(Counter(hits.clone()));
/// let net = b.start();
/// net.inject(counter, counter, Hit);
/// let actors = net.shutdown();
/// assert_eq!(hits.load(Ordering::SeqCst), 1);
/// assert_eq!(actors.len(), 1);
/// ```
pub struct ThreadNet<M: Wire> {
    senders: Vec<Sender<Ctl<M>>>,
    handles: Vec<JoinHandle<Box<dyn Any + Send>>>,
    metrics: Arc<Mutex<Metrics>>,
}

impl<M: Wire> ThreadNet<M> {
    /// Sends `msg` to `to` as if it came from `from`.
    pub fn inject(&self, from: NodeId, to: NodeId, msg: M) {
        self.metrics.lock().on_send(msg.kind(), msg.wire_size());
        if let Some(tx) = self.senders.get(to.index()) {
            if tx.send(Ctl::Msg(from, msg)).is_ok() {
                self.metrics.lock().on_deliver();
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    /// A detached snapshot of the transport metrics so far (a plain-data
    /// copy, not a clone of the live registry).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.lock().snapshot()
    }

    /// Kills one node, as a crash: its thread drains already-queued
    /// messages and exits. See
    /// [`TcpNet::stop_node`](crate::tcpnet::TcpNet::stop_node).
    pub fn stop_node(&self, node: NodeId) {
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Ctl::Stop);
        }
    }

    /// Stops all node threads, draining queued messages first (the stop
    /// marker queues behind them), and returns each actor in node order for
    /// inspection via `Box<dyn Any>`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any node thread.
    pub fn shutdown(self) -> Vec<Box<dyn Any + Send>> {
        for tx in &self.senders {
            let _ = tx.send(Ctl::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[derive(Clone, Debug)]
    enum M {
        Ping(u32),
    }
    impl Wire for M {
        fn wire_size(&self) -> usize {
            16
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }

    struct Echo {
        bounces: Arc<AtomicU32>,
    }
    impl Actor<M> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
            let M::Ping(n) = msg;
            self.bounces.fetch_add(1, Ordering::SeqCst);
            if n > 0 {
                ctx.send(from, M::Ping(n - 1));
            }
        }
    }

    #[test]
    fn ping_pong_over_threads() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start();
        net.inject(na, nb, M::Ping(9));
        // 10 messages bounce; wait for them to drain
        let deadline = Instant::now() + Duration::from_secs(5);
        while a_hits.load(Ordering::SeqCst) + b_hits.load(Ordering::SeqCst) < 10 {
            assert!(Instant::now() < deadline, "ping-pong did not complete");
            std::thread::yield_now();
        }
        let m = net.metrics_snapshot();
        net.shutdown();
        assert_eq!(
            a_hits.load(Ordering::SeqCst) + b_hits.load(Ordering::SeqCst),
            10
        );
        assert_eq!(m.sent_of_kind("ping"), 10);
    }

    #[test]
    fn timers_fire_in_real_time() {
        struct Beeper {
            beeps: Arc<AtomicU32>,
        }
        impl Actor<M> for Beeper {
            fn on_start(&mut self, ctx: &mut Context<'_, M>) {
                ctx.set_timer(SimDuration::from_millis(5), 7);
                ctx.set_timer(SimDuration::from_millis(10), 7);
            }
            fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {}
            fn on_timer(&mut self, _: &mut Context<'_, M>, token: u64) {
                assert_eq!(token, 7);
                self.beeps.fetch_add(1, Ordering::SeqCst);
            }
        }
        let beeps = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        b.add_node(Beeper {
            beeps: beeps.clone(),
        });
        let net = b.start();
        let deadline = Instant::now() + Duration::from_secs(5);
        while beeps.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "timers did not fire");
            std::thread::sleep(Duration::from_millis(1));
        }
        net.shutdown();
        assert_eq!(beeps.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shutdown_returns_actors_in_order() {
        let mut b = ThreadNetBuilder::new();
        let h1 = Arc::new(AtomicU32::new(0));
        let h2 = Arc::new(AtomicU32::new(0));
        b.add_node(Echo { bounces: h1 });
        b.add_node(Echo { bounces: h2 });
        let net = b.start();
        let actors = net.shutdown();
        assert_eq!(actors.len(), 2);
        assert!(actors[0].downcast_ref::<Echo>().is_some());
    }
}
