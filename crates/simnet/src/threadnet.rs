//! Real-time execution of [`Actor`]s over OS threads and channels.
//!
//! [`ThreadNet`] runs each actor on its own thread, connected by unbounded
//! crossbeam channels; timers are real-time deadlines. This gives wall-clock
//! numbers for Criterion benches from exactly the protocol code that the
//! deterministic [`SimNet`](crate::SimNet) exercises in tests.
//!
//! The node loop is transport-agnostic: outgoing sends go through the
//! crate-internal `Outbound` trait, which [`ThreadNet`] backs with channels
//! and [`tcpnet::TcpNet`](crate::tcpnet::TcpNet) backs with real TCP
//! loopback sockets — the same actor objects run unmodified on either.
//!
//! Faults are first-class here, just like on the simulator: a node can be
//! killed and later restarted (its `on_restart` hook fires, its timers and
//! queued messages from the down period are gone), and link pairs can be
//! blocked to emulate partitions. Sends to a down node or across a blocked
//! pair are dropped sender-side and accounted exactly like the engine's
//! [`Metrics`] do, so a [`FaultPlan`] replayed by
//! [`Substrate::execute_plan`](crate::Substrate::execute_plan) produces
//! comparable counters on every substrate.

use crate::chaos::{ChaosDecision, ChaosState, DelayPump};
use crate::engine::{
    Actor, Context, FlightHook, NetHook, NodeId, Op, SelfInjector, TimerId, TraceOutcome,
};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::substrate::FaultDriver;
use crate::time::SimTime;
use crate::{DynActor, FaultAction, FaultPlan, Wire};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shared, thread-safe form of an installed [`NetHook`].
pub(crate) type SharedHook = Arc<Mutex<Box<dyn NetHook + Send>>>;

/// Per-node flight recorders shared between sender threads (which stamp
/// outgoing messages with a Lamport clock) and node loops (which merge the
/// incoming stamp). Slots without a hook cost one `Option` check — the
/// always-on recorder is cheap and uninstalled nodes are free.
pub(crate) struct FlightTable {
    hooks: Vec<Option<Mutex<Box<dyn FlightHook + Send>>>>,
}

impl FlightTable {
    pub(crate) fn new(n: usize, installed: Vec<(NodeId, Box<dyn FlightHook + Send>)>) -> Self {
        let mut hooks: Vec<Option<Mutex<Box<dyn FlightHook + Send>>>> =
            (0..n).map(|_| None).collect();
        for (node, hook) in installed {
            if let Some(slot) = hooks.get_mut(node.index()) {
                *slot = Some(Mutex::new(hook));
            }
        }
        FlightTable { hooks }
    }

    /// Whether `node` has a recorder installed. The transports check this
    /// before paying for the hook's arguments (a wall-clock read, the
    /// correlation lookup, the trailing clock varint on TCP frames), so an
    /// unhooked hot path costs exactly one slot load.
    pub(crate) fn armed(&self, node: NodeId) -> bool {
        self.hooks
            .get(node.index())
            .is_some_and(|slot| slot.is_some())
    }

    pub(crate) fn on_send(
        &self,
        from: NodeId,
        now: SimTime,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
        correlation: Option<u64>,
    ) -> u64 {
        match self.hooks.get(from.index()).and_then(Option::as_ref) {
            Some(h) => h.lock().on_send_msg(now, to, kind, bytes, correlation),
            None => 0,
        }
    }

    // The argument list mirrors the wire frame one-to-one; bundling them
    // into a struct would just move the field list one hop away.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_recv(
        &self,
        node: NodeId,
        now: SimTime,
        from: NodeId,
        kind: &'static str,
        bytes: usize,
        correlation: Option<u64>,
        clock: u64,
    ) {
        if let Some(h) = self.hooks.get(node.index()).and_then(Option::as_ref) {
            h.lock()
                .on_recv_msg(now, from, kind, bytes, correlation, clock);
        }
    }

    pub(crate) fn on_fault(&self, node: NodeId, now: SimTime, action: &str) {
        if let Some(h) = self.hooks.get(node.index()).and_then(Option::as_ref) {
            h.lock().on_fault(now, action);
        }
    }
}

pub(crate) enum Ctl<M> {
    /// A delivered message: sender, payload, and the sender's Lamport stamp
    /// (0 when the sender records no flight data).
    Msg(NodeId, M, u64),
    /// Crash the node: it drops messages and timers until restarted.
    Crash,
    /// Bring a crashed node back; its `on_restart` hook runs.
    Restart,
    /// Tear the node down for good; the thread exits and returns the actor.
    Shutdown,
}

/// Live fault state shared between the transports and the fault drivers:
/// which nodes are up, and which unordered link pairs are blocked.
///
/// Checked sender-side on every transport send, mirroring how the
/// simulator's engine drops at the send event — a message to a down node
/// or across a blocked pair never reaches the destination's queue.
pub(crate) struct FaultState {
    up: Vec<AtomicBool>,
    /// Unordered blocked pairs, stored as (min, max).
    blocked: Mutex<HashSet<(u32, u32)>>,
    /// Cheap emptiness gate so the unblocked hot path never takes the lock.
    blocked_count: AtomicUsize,
}

impl FaultState {
    pub(crate) fn new(n: usize) -> Self {
        FaultState {
            up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            blocked: Mutex::new(HashSet::new()),
            blocked_count: AtomicUsize::new(0),
        }
    }

    pub(crate) fn is_up(&self, node: NodeId) -> bool {
        self.up
            .get(node.index())
            .map(|b| b.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    pub(crate) fn set_up(&self, node: NodeId, up: bool) {
        if let Some(b) = self.up.get(node.index()) {
            b.store(up, Ordering::Release);
        }
    }

    fn pair(a: NodeId, b: NodeId) -> (u32, u32) {
        let (x, y) = (a.index() as u32, b.index() as u32);
        (x.min(y), x.max(y))
    }

    pub(crate) fn is_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked_count.load(Ordering::Acquire) != 0
            && self.blocked.lock().contains(&Self::pair(a, b))
    }

    pub(crate) fn set_blocked(&self, a: NodeId, b: NodeId, blocked: bool) {
        let mut set = self.blocked.lock();
        let changed = if blocked {
            set.insert(Self::pair(a, b))
        } else {
            set.remove(&Self::pair(a, b))
        };
        if changed {
            self.blocked_count.store(set.len(), Ordering::Release);
        }
    }
}

/// How a node thread pushes a message toward another node.
///
/// `ThreadNet` sends over in-process channels; `TcpNet` encodes to bytes and
/// writes a frame to the link's socket. The node loop (`run_node`) is
/// oblivious to which one it is running on.
pub(crate) trait Outbound<M>: Send + Sync {
    fn send(&self, from: NodeId, to: NodeId, msg: M);
}

/// Channel-backed transport: delivery is a crossbeam send, gated by the
/// shared [`FaultState`] exactly like the TCP transport's socket writes.
pub(crate) struct ChannelOutbound<M> {
    senders: Vec<Sender<Ctl<M>>>,
    metrics: Arc<Mutex<Metrics>>,
    faults: Arc<FaultState>,
    hook: Option<SharedHook>,
    flights: Arc<FlightTable>,
    epoch: Instant,
    chaos: Arc<ChaosState>,
    pump: Arc<DelayPump>,
    pump_seq: Arc<AtomicU64>,
}

impl<M> ChannelOutbound<M> {
    fn hook_now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

impl<M: Wire> Outbound<M> for ChannelOutbound<M> {
    fn send(&self, from: NodeId, to: NodeId, msg: M) {
        let size = msg.wire_size();
        let kind = msg.kind();
        self.metrics.lock().on_send(kind, size);
        if let Some(hook) = &self.hook {
            hook.lock().on_send(self.hook_now(), from, to, kind, size);
        }
        // Stamp before the fault gates: the send happened even if the
        // message then dies on a blocked pair, matching the engine. An
        // unhooked sender skips the stamp (and the wall-clock read it
        // needs) and ships clock 0, same as the TCP compat frames.
        let clock = if self.flights.armed(from) {
            self.flights
                .on_send(from, self.hook_now(), to, kind, size, msg.correlation())
        } else {
            0
        };
        if from != to && self.faults.is_blocked(from, to) {
            self.metrics.lock().on_drop_partition();
            if let Some(hook) = &self.hook {
                hook.lock()
                    .on_drop(self.hook_now(), from, to, kind, TraceOutcome::Partitioned);
            }
            return;
        }
        if !self.faults.is_up(to) {
            self.metrics.lock().on_drop_down();
            if let Some(hook) = &self.hook {
                hook.lock().on_drop(
                    self.hook_now(),
                    from,
                    to,
                    kind,
                    TraceOutcome::DestinationDown,
                );
            }
            return;
        }
        // Gray degradation, decided sender-side like the engine's chaos
        // arm. The idle path costs one atomic load inside `decide`.
        match self.chaos.decide(from.0, to.0) {
            ChaosDecision::Clean => {}
            ChaosDecision::Drop => {
                self.metrics.lock().on_lost();
                if let Some(hook) = &self.hook {
                    hook.lock()
                        .on_drop(self.hook_now(), from, to, kind, TraceOutcome::Lost);
                }
                return;
            }
            ChaosDecision::Corrupt => {
                // No byte stage on channels: a corrupted message is a
                // counted decode error at the receiver, same observable
                // as tcpnet's real bit-flip.
                self.metrics.lock().on_decode_error();
                if let Some(hook) = &self.hook {
                    hook.lock()
                        .on_drop(self.hook_now(), from, to, kind, TraceOutcome::Lost);
                }
                self.flights
                    .on_fault(to, self.hook_now(), &format!("decode-error {from} {to}"));
                return;
            }
            ChaosDecision::Deliver { delay, duplicate } => {
                let copies = if duplicate { 2 } else { 1 };
                for i in 0..copies {
                    let Some(tx) = self.senders.get(to.index()).cloned() else {
                        return;
                    };
                    let metrics = Arc::clone(&self.metrics);
                    let m = msg.clone();
                    let seq = self.pump_seq.fetch_add(1, Ordering::Relaxed);
                    let beat = delay + Duration::from_micros(200 * i as u64);
                    self.pump.after(
                        beat,
                        seq,
                        Box::new(move || {
                            if tx.send(Ctl::Msg(from, m, clock)).is_ok() {
                                metrics.lock().on_deliver();
                            }
                        }),
                    );
                }
                return;
            }
        }
        if let Some(tx) = self.senders.get(to.index()) {
            if tx.send(Ctl::Msg(from, msg, clock)).is_ok() {
                self.metrics.lock().on_deliver();
            }
        }
    }
}

struct PendingTimer {
    deadline: Instant,
    id: TimerId,
    token: u64,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.id == other.id
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // invert: BinaryHeap is a max-heap, we want the earliest deadline
        other.deadline.cmp(&self.deadline)
    }
}

pub(crate) struct Shared<M> {
    pub(crate) outbound: Arc<dyn Outbound<M>>,
    pub(crate) flights: Arc<FlightTable>,
    pub(crate) epoch: Instant,
}

impl<M> Clone for Shared<M> {
    fn clone(&self) -> Self {
        Shared {
            outbound: Arc::clone(&self.outbound),
            flights: Arc::clone(&self.flights),
            epoch: self.epoch,
        }
    }
}

pub(crate) trait Spawnable<M: Wire>: Send {
    fn spawn(
        self: Box<Self>,
        id: NodeId,
        rx: Receiver<Ctl<M>>,
        shared: Shared<M>,
    ) -> JoinHandle<Box<dyn Any + Send>>;
}

pub(crate) struct Holder<A>(pub(crate) A);

impl<M: Wire, A: Actor<M> + Any + Send + 'static> Spawnable<M> for Holder<A> {
    fn spawn(
        self: Box<Self>,
        id: NodeId,
        rx: Receiver<Ctl<M>>,
        shared: Shared<M>,
    ) -> JoinHandle<Box<dyn Any + Send>> {
        std::thread::spawn(move || {
            let mut actor = self.0;
            run_node(&mut actor, id, rx, shared);
            Box::new(actor) as Box<dyn Any + Send>
        })
    }
}

/// An already-boxed actor from the substrate-agnostic deployment path
/// ([`Spawner::add_boxed`](crate::Spawner::add_boxed)); the thread returns
/// the inner concrete type so `downcast_ref` keeps working after shutdown.
pub(crate) struct BoxHolder<M>(pub(crate) Box<dyn DynActor<M>>);

impl<M: Wire> Spawnable<M> for BoxHolder<M> {
    fn spawn(
        self: Box<Self>,
        id: NodeId,
        rx: Receiver<Ctl<M>>,
        shared: Shared<M>,
    ) -> JoinHandle<Box<dyn Any + Send>> {
        std::thread::spawn(move || {
            let mut actor = self.0;
            run_node(&mut *actor, id, rx, shared);
            actor.into_any()
        })
    }
}

pub(crate) fn run_node<M: Wire>(
    actor: &mut dyn Actor<M>,
    id: NodeId,
    rx: Receiver<Ctl<M>>,
    shared: Shared<M>,
) {
    let mut rng = SmallRng::seed_from_u64(0x5157_0000 + id.index() as u64);
    let mut next_timer: u64 = 0;
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerId> = HashSet::new();
    // Off-loop work (worker pools) re-enters the node through its own
    // mailbox: a self-send on the transport respects the node's up/down
    // gate, so completions racing a crash are dropped like any message.
    let injector = SelfInjector::new(id, {
        let outbound = Arc::clone(&shared.outbound);
        Arc::new(move |msg| outbound.send(id, id, msg))
    });
    // Crash-stop state: while down the node drops messages and timers, the
    // same observable behavior as the engine's crashed nodes.
    let mut up = true;

    enum Hook<M> {
        Start,
        Restart,
        Message(NodeId, M),
        Timer(u64),
    }

    let run_hook = |actor: &mut dyn Actor<M>,
                    hook: Hook<M>,
                    rng: &mut SmallRng,
                    next_timer: &mut u64,
                    timers: &mut BinaryHeap<PendingTimer>,
                    cancelled: &mut HashSet<TimerId>| {
        let now = SimTime::from_micros(shared.epoch.elapsed().as_micros() as u64);
        let mut ctx = Context::detached(now, id, next_timer, rng, Some(&injector));
        match hook {
            Hook::Start => actor.on_start(&mut ctx),
            Hook::Restart => actor.on_restart(&mut ctx),
            Hook::Message(from, m) => actor.on_message(&mut ctx, from, m),
            Hook::Timer(token) => actor.on_timer(&mut ctx, token),
        }
        let ops = ctx.take_ops();
        let now_i = Instant::now();
        for op in ops {
            match op {
                Op::Send { to, msg } => {
                    shared.outbound.send(id, to, msg);
                }
                Op::SetTimer {
                    id: tid,
                    delay,
                    token,
                } => {
                    timers.push(PendingTimer {
                        deadline: now_i + Duration::from_micros(delay.as_micros()),
                        id: tid,
                        token,
                    });
                }
                Op::CancelTimer(tid) => {
                    cancelled.insert(tid);
                }
            }
        }
    };

    run_hook(
        actor,
        Hook::Start,
        &mut rng,
        &mut next_timer,
        &mut timers,
        &mut cancelled,
    );
    loop {
        // Fire all due timers (none are pending while down: a crash clears
        // the heap and no hooks run to arm new ones).
        loop {
            let due = match timers.peek() {
                Some(t) if t.deadline <= Instant::now() => timers.pop().expect("peeked"),
                _ => break,
            };
            if !cancelled.remove(&due.id) {
                run_hook(
                    actor,
                    Hook::Timer(due.token),
                    &mut rng,
                    &mut next_timer,
                    &mut timers,
                    &mut cancelled,
                );
            }
        }
        let timeout = timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Ctl::Msg(from, m, clock)) => {
                if up {
                    if shared.flights.armed(id) {
                        shared.flights.on_recv(
                            id,
                            SimTime::from_micros(shared.epoch.elapsed().as_micros() as u64),
                            from,
                            m.kind(),
                            m.wire_size(),
                            m.correlation(),
                            clock,
                        );
                    }
                    run_hook(
                        actor,
                        Hook::Message(from, m),
                        &mut rng,
                        &mut next_timer,
                        &mut timers,
                        &mut cancelled,
                    )
                }
                // else: the message raced the crash; a down node hears nothing.
            }
            Ok(Ctl::Crash) => {
                up = false;
                timers.clear();
                cancelled.clear();
            }
            Ok(Ctl::Restart) => {
                if !up {
                    up = true;
                    run_hook(
                        actor,
                        Hook::Restart,
                        &mut rng,
                        &mut next_timer,
                        &mut timers,
                        &mut cancelled,
                    );
                }
            }
            Ok(Ctl::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Applies one [`FaultAction`] to a live channel-backed network; shared by
/// [`ThreadNet`]'s direct fault methods and its real-time fault driver.
struct ThreadFaultCtl<M> {
    senders: Vec<Sender<Ctl<M>>>,
    faults: Arc<FaultState>,
    flights: Arc<FlightTable>,
    chaos: Arc<ChaosState>,
    epoch: Instant,
}

impl<M> ThreadFaultCtl<M> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn apply(&self, action: FaultAction) {
        match action {
            FaultAction::Crash(node) => {
                // Flip the sender-side gate first so in-flight sends start
                // dropping before the node even processes the crash marker.
                self.faults.set_up(node, false);
                self.flights
                    .on_fault(node, self.now(), &format!("kill {node}"));
                if let Some(tx) = self.senders.get(node.index()) {
                    let _ = tx.send(Ctl::Crash);
                }
            }
            FaultAction::Restart(node) => {
                self.faults.set_up(node, true);
                self.flights
                    .on_fault(node, self.now(), &format!("restart {node}"));
                if let Some(tx) = self.senders.get(node.index()) {
                    let _ = tx.send(Ctl::Restart);
                }
            }
            FaultAction::Block(a, b) => {
                self.faults.set_blocked(a, b, true);
                self.flights
                    .on_fault(a, self.now(), &format!("block {a} {b}"));
                self.flights
                    .on_fault(b, self.now(), &format!("block {a} {b}"));
            }
            FaultAction::Unblock(a, b) => {
                self.faults.set_blocked(a, b, false);
                self.flights
                    .on_fault(a, self.now(), &format!("unblock {a} {b}"));
                self.flights
                    .on_fault(b, self.now(), &format!("unblock {a} {b}"));
            }
            FaultAction::Degrade(a, b, _) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(a, self.now(), &format!("degrade {a} {b}"));
                self.flights
                    .on_fault(b, self.now(), &format!("degrade {a} {b}"));
            }
            FaultAction::Restore(a, b) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(a, self.now(), &format!("restore {a} {b}"));
                self.flights
                    .on_fault(b, self.now(), &format!("restore {a} {b}"));
            }
            FaultAction::Stall(node, _) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(node, self.now(), &format!("stall {node}"));
            }
            FaultAction::Slow(node, _) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(node, self.now(), &format!("slow {node}"));
            }
        }
    }
}

/// Collects actors before spawning threads.
///
/// Node ids are assigned in registration order, matching
/// [`SimNet::add_node`](crate::SimNet::add_node), so the same wiring code
/// can target either runtime.
pub struct ThreadNetBuilder<M: Wire> {
    actors: Vec<Box<dyn Spawnable<M>>>,
    hook: Option<Box<dyn NetHook + Send>>,
    flights: Vec<(NodeId, Box<dyn FlightHook + Send>)>,
    chaos_seed: u64,
}

impl<M: Wire> Default for ThreadNetBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire> ThreadNetBuilder<M> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ThreadNetBuilder {
            actors: Vec::new(),
            hook: None,
            flights: Vec::new(),
            chaos_seed: 0,
        }
    }

    /// Seeds the gray-failure RNG, making chaos soaks reproducible: the
    /// same seed and plan produce the same per-message loss/dup/corrupt
    /// decisions (wall-clock interleavings still vary, as on any live
    /// substrate).
    pub fn set_chaos_seed(&mut self, seed: u64) {
        self.chaos_seed = seed;
    }

    /// Registers an actor and returns its future node id.
    pub fn add_node(&mut self, actor: impl Actor<M> + Any + 'static) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(Box::new(Holder(actor)));
        id
    }

    /// Registers an already-boxed actor (the deployment-layer path; see
    /// [`Spawner`](crate::Spawner)).
    pub fn add_boxed(&mut self, actor: Box<dyn DynActor<M>>) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(Box::new(BoxHolder(actor)));
        id
    }

    /// Installs a network hook observing every transport send and fault
    /// drop, with the same callbacks the in-process engine uses. The hook
    /// is shared across sender threads behind a mutex; keep it cheap.
    pub fn set_net_hook(&mut self, hook: Box<dyn NetHook + Send>) {
        self.hook = Some(hook);
    }

    /// Installs `node`'s flight recorder (see
    /// [`FlightHook`]): sender threads ask it to stamp
    /// every outgoing message with a Lamport clock, and the node's loop
    /// hands it every delivery.
    pub fn set_flight_hook(&mut self, node: NodeId, hook: Box<dyn FlightHook + Send>) {
        self.flights.push((node, hook));
    }

    /// Spawns every registered actor on its own thread and returns the
    /// running network. Each actor's `on_start` runs before its first
    /// message is processed.
    pub fn start(self) -> ThreadNet<M> {
        let n = self.actors.len();
        let metrics = Arc::new(Mutex::new(Metrics::new()));
        let faults = Arc::new(FaultState::new(n));
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let flights = Arc::new(FlightTable::new(n, self.flights));
        let chaos = Arc::new(ChaosState::new(self.chaos_seed));
        let pump = DelayPump::start();
        let outbound = ChannelOutbound {
            senders: senders.clone(),
            metrics: Arc::clone(&metrics),
            faults: Arc::clone(&faults),
            hook: self.hook.map(|h| Arc::new(Mutex::new(h))),
            flights: Arc::clone(&flights),
            epoch,
            chaos: Arc::clone(&chaos),
            pump: Arc::clone(&pump),
            pump_seq: Arc::new(AtomicU64::new(0)),
        };
        let shared = Shared {
            outbound: Arc::new(outbound) as Arc<dyn Outbound<M>>,
            flights: Arc::clone(&flights),
            epoch,
        };
        let handles = self
            .actors
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(i, (a, rx))| a.spawn(NodeId(i as u32), rx, shared.clone()))
            .collect();
        ThreadNet {
            ctl: ThreadFaultCtl {
                senders,
                faults,
                flights,
                chaos,
                epoch,
            },
            handles,
            metrics,
            epoch,
            drivers: Vec::new(),
            pump,
        }
    }
}

/// A running real-time network of actors.
///
/// # Examples
///
/// ```
/// use whisper_simnet::threadnet::ThreadNetBuilder;
/// use whisper_simnet::{Actor, Context, NodeId, Wire};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// #[derive(Clone, Debug)]
/// struct Hit;
/// impl Wire for Hit { fn wire_size(&self) -> usize { 8 } }
///
/// struct Counter(Arc<AtomicU32>);
/// impl Actor<Hit> for Counter {
///     fn on_message(&mut self, _: &mut Context<'_, Hit>, _: NodeId, _: Hit) {
///         self.0.fetch_add(1, Ordering::SeqCst);
///     }
/// }
///
/// let hits = Arc::new(AtomicU32::new(0));
/// let mut b = ThreadNetBuilder::new();
/// let counter = b.add_node(Counter(hits.clone()));
/// let net = b.start();
/// net.inject(counter, counter, Hit);
/// let actors = net.shutdown();
/// assert_eq!(hits.load(Ordering::SeqCst), 1);
/// assert_eq!(actors.len(), 1);
/// ```
pub struct ThreadNet<M: Wire> {
    ctl: ThreadFaultCtl<M>,
    handles: Vec<JoinHandle<Box<dyn Any + Send>>>,
    metrics: Arc<Mutex<Metrics>>,
    epoch: Instant,
    drivers: Vec<FaultDriver>,
    pump: Arc<DelayPump>,
}

impl<M: Wire> ThreadNet<M> {
    /// Sends `msg` to `to` as if it came from `from`.
    pub fn inject(&self, from: NodeId, to: NodeId, msg: M) {
        self.metrics.lock().on_send(msg.kind(), msg.wire_size());
        if let Some(tx) = self.ctl.senders.get(to.index()) {
            if tx.send(Ctl::Msg(from, msg, 0)).is_ok() {
                self.metrics.lock().on_deliver();
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ctl.senders.len()
    }

    /// Wall-clock time since the network started, on the same axis the
    /// node loops report to actors.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// A detached snapshot of the transport metrics so far (a plain-data
    /// copy, not a clone of the live registry).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.lock().snapshot()
    }

    /// Kills one node, as a crash: sends to it start dropping immediately,
    /// its pending timers die, and it stays deaf until
    /// [`ThreadNet::restart_node`]. Named like
    /// [`SimNet::kill_node`](crate::SimNet::kill_node).
    pub fn kill_node(&self, node: NodeId) {
        self.ctl.apply(FaultAction::Crash(node));
    }

    /// Restarts a killed node: sends resume reaching it and its
    /// `on_restart` hook runs, symmetric with [`ThreadNet::kill_node`].
    pub fn restart_node(&self, node: NodeId) {
        self.ctl.apply(FaultAction::Restart(node));
    }

    /// Blocks all traffic between `a` and `b` (both directions), as a
    /// partition: such sends are dropped sender-side and counted as
    /// partitioned.
    pub fn block_link(&self, a: NodeId, b: NodeId) {
        self.ctl.apply(FaultAction::Block(a, b));
    }

    /// Unblocks traffic between `a` and `b`.
    pub fn unblock_link(&self, a: NodeId, b: NodeId) {
        self.ctl.apply(FaultAction::Unblock(a, b));
    }

    /// Applies any [`FaultAction`] — including the gray kinds
    /// (degrade/restore/stall/slow) — immediately.
    pub fn apply_action(&self, action: FaultAction) {
        self.ctl.apply(action);
    }

    /// Replays `plan` against the live network in real time: a fault-driver
    /// thread sleeps until each action's wall-clock offset (measured from
    /// network start) and applies it. Multiple plans may be in flight; all
    /// drivers are stopped and joined by [`ThreadNet::shutdown`].
    pub fn execute_plan(&mut self, plan: &FaultPlan) {
        let senders = self.ctl.senders.clone();
        let faults = Arc::clone(&self.ctl.faults);
        let ctl = ThreadFaultCtl {
            senders,
            faults,
            flights: Arc::clone(&self.ctl.flights),
            chaos: Arc::clone(&self.ctl.chaos),
            epoch: self.ctl.epoch,
        };
        self.drivers.push(FaultDriver::spawn(
            plan,
            self.epoch,
            Box::new(move |action| ctl.apply(action)),
        ));
    }

    /// Stops all node threads, draining queued messages first (the stop
    /// marker queues behind them), and returns each actor in node order for
    /// inspection via `Box<dyn Any>`. Fault drivers are stopped first, so
    /// no action fires into a half-torn-down network.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any node thread.
    pub fn shutdown(self) -> Vec<Box<dyn Any + Send>> {
        for d in self.drivers {
            d.stop();
        }
        // Chaos-delayed deliveries still in the pump die with the network,
        // exactly like in-flight frames on a torn-down socket.
        self.pump.shutdown();
        for tx in &self.ctl.senders {
            let _ = tx.send(Ctl::Shutdown);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[derive(Clone, Debug)]
    enum M {
        Ping(u32),
    }
    impl Wire for M {
        fn wire_size(&self) -> usize {
            16
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }

    struct Echo {
        bounces: Arc<AtomicU32>,
    }
    impl Actor<M> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
            let M::Ping(n) = msg;
            self.bounces.fetch_add(1, Ordering::SeqCst);
            if n > 0 {
                ctx.send(from, M::Ping(n - 1));
            }
        }
    }

    #[test]
    fn ping_pong_over_threads() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start();
        net.inject(na, nb, M::Ping(9));
        // 10 messages bounce; wait for them to drain
        let deadline = Instant::now() + Duration::from_secs(5);
        while a_hits.load(Ordering::SeqCst) + b_hits.load(Ordering::SeqCst) < 10 {
            assert!(Instant::now() < deadline, "ping-pong did not complete");
            std::thread::yield_now();
        }
        let m = net.metrics_snapshot();
        net.shutdown();
        assert_eq!(
            a_hits.load(Ordering::SeqCst) + b_hits.load(Ordering::SeqCst),
            10
        );
        assert_eq!(m.sent_of_kind("ping"), 10);
    }

    #[test]
    fn chaos_degrade_drops_then_restore_heals() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        b.set_chaos_seed(42);
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start();
        net.apply_action(FaultAction::Degrade(
            na,
            nb,
            crate::DegradeSpec {
                loss_pct: 100,
                ..crate::DegradeSpec::default()
            },
        ));
        // Injection bypasses the transport; na's *reply* crosses the
        // degraded link and dies there.
        net.inject(nb, na, M::Ping(3));
        let deadline = Instant::now() + Duration::from_secs(5);
        while net.metrics_snapshot().lost < 1 {
            assert!(Instant::now() < deadline, "chaos loss never counted");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(b_hits.load(Ordering::SeqCst), 0);

        net.apply_action(FaultAction::Restore(na, nb));
        net.inject(nb, na, M::Ping(3));
        let deadline = Instant::now() + Duration::from_secs(5);
        while b_hits.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "restored link never delivered");
            std::thread::sleep(Duration::from_millis(1));
        }
        net.shutdown();
    }

    #[test]
    fn chaos_dup_delivers_twice_and_corrupt_counts_decode_error() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        b.set_chaos_seed(42);
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start();
        net.apply_action(FaultAction::Degrade(
            na,
            nb,
            crate::DegradeSpec {
                dup_pct: 100,
                ..crate::DegradeSpec::default()
            },
        ));
        // na's reply Ping(0) is duplicated: nb hears it twice.
        net.inject(nb, na, M::Ping(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        while b_hits.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "duplicate never delivered");
            std::thread::sleep(Duration::from_millis(1));
        }

        net.apply_action(FaultAction::Degrade(
            na,
            nb,
            crate::DegradeSpec {
                corrupt_pct: 100,
                ..crate::DegradeSpec::default()
            },
        ));
        net.inject(nb, na, M::Ping(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        while net.metrics_snapshot().decode_errors < 1 {
            assert!(Instant::now() < deadline, "corruption never counted");
            std::thread::sleep(Duration::from_millis(1));
        }
        net.shutdown();
    }

    #[test]
    fn timers_fire_in_real_time() {
        struct Beeper {
            beeps: Arc<AtomicU32>,
        }
        impl Actor<M> for Beeper {
            fn on_start(&mut self, ctx: &mut Context<'_, M>) {
                ctx.set_timer(SimDuration::from_millis(5), 7);
                ctx.set_timer(SimDuration::from_millis(10), 7);
            }
            fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {}
            fn on_timer(&mut self, _: &mut Context<'_, M>, token: u64) {
                assert_eq!(token, 7);
                self.beeps.fetch_add(1, Ordering::SeqCst);
            }
        }
        let beeps = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        b.add_node(Beeper {
            beeps: beeps.clone(),
        });
        let net = b.start();
        let deadline = Instant::now() + Duration::from_secs(5);
        while beeps.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "timers did not fire");
            std::thread::sleep(Duration::from_millis(1));
        }
        net.shutdown();
        assert_eq!(beeps.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shutdown_returns_actors_in_order() {
        let mut b = ThreadNetBuilder::new();
        let h1 = Arc::new(AtomicU32::new(0));
        let h2 = Arc::new(AtomicU32::new(0));
        b.add_node(Echo { bounces: h1 });
        b.add_node(Echo { bounces: h2 });
        let net = b.start();
        let actors = net.shutdown();
        assert_eq!(actors.len(), 2);
        assert!(actors[0].downcast_ref::<Echo>().is_some());
    }

    #[test]
    fn kill_drops_messages_and_restart_revives() {
        struct Marker {
            seen: Arc<AtomicU32>,
            restarts: Arc<AtomicU32>,
        }
        impl Actor<M> for Marker {
            fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {
                self.seen.fetch_add(1, Ordering::SeqCst);
            }
            fn on_restart(&mut self, _: &mut Context<'_, M>) {
                self.restarts.fetch_add(1, Ordering::SeqCst);
            }
        }
        let seen = Arc::new(AtomicU32::new(0));
        let restarts = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        let src = b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        let dst = b.add_node(Marker {
            seen: seen.clone(),
            restarts: restarts.clone(),
        });
        let net = b.start();

        net.inject(src, dst, M::Ping(0));
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen.load(Ordering::SeqCst) < 1 {
            assert!(Instant::now() < deadline, "first ping not seen");
            std::thread::yield_now();
        }

        net.kill_node(dst);
        // Give the crash marker time to land, then send into the void.
        std::thread::sleep(Duration::from_millis(20));
        net.inject(src, dst, M::Ping(0));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(seen.load(Ordering::SeqCst), 1, "down node heard a message");

        net.restart_node(dst);
        let deadline = Instant::now() + Duration::from_secs(5);
        while restarts.load(Ordering::SeqCst) < 1 {
            assert!(Instant::now() < deadline, "on_restart did not fire");
            std::thread::yield_now();
        }
        net.inject(src, dst, M::Ping(0));
        let deadline = Instant::now() + Duration::from_secs(5);
        while seen.load(Ordering::SeqCst) < 2 {
            assert!(Instant::now() < deadline, "revived node deaf");
            std::thread::yield_now();
        }
        net.shutdown();
    }

    #[test]
    fn blocked_pair_drops_sender_side() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = ThreadNetBuilder::new();
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start();
        net.block_link(na, nb);
        // The injected message reaches nb (inject bypasses the transport),
        // but nb's reply crosses the blocked pair and is dropped.
        net.inject(na, nb, M::Ping(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        while net.metrics_snapshot().partitioned < 1 {
            assert!(Instant::now() < deadline, "no partitioned drop recorded");
            std::thread::yield_now();
        }
        assert_eq!(a_hits.load(Ordering::SeqCst), 0);
        net.unblock_link(na, nb);
        net.inject(nb, na, M::Ping(0));
        let deadline = Instant::now() + Duration::from_secs(5);
        while a_hits.load(Ordering::SeqCst) < 1 {
            assert!(Instant::now() < deadline, "unblocked pair still dropping");
            std::thread::yield_now();
        }
        net.shutdown();
    }
}
