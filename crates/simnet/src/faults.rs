//! Fault injection: scheduled crashes, restarts and partitions.

use crate::engine::NodeId;
use crate::time::SimTime;

/// One injected fault.
///
/// On the simulator these are discrete events executed at virtual time;
/// on the threaded and TCP runtimes a real-time fault driver replays them
/// against the live transport (see
/// [`Substrate::execute_plan`](crate::Substrate::execute_plan)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash-stop a node: it stops receiving messages and timers.
    Crash(NodeId),
    /// Restart a crashed node; its `on_restart` hook runs.
    Restart(NodeId),
    /// Block traffic between two nodes in both directions.
    Block(NodeId, NodeId),
    /// Unblock traffic between two nodes.
    Unblock(NodeId, NodeId),
}

/// A schedule of faults to inject into a run on any substrate.
///
/// Build the plan up front, then install it with [`SimNet::apply_faults`]
/// (the engine executes each action at its virtual time) or replay it on a
/// live transport with
/// [`Substrate::execute_plan`](crate::Substrate::execute_plan), where a
/// fault-driver thread fires each action at the matching wall-clock
/// offset. This keeps experiments declarative and reproducible — the same
/// plan drives the simulator, the threaded runtime and real TCP sockets.
///
/// [`SimNet`]: crate::SimNet
/// [`SimNet::apply_faults`]: crate::SimNet::apply_faults
///
/// # Examples
///
/// ```
/// use whisper_simnet::{FaultPlan, SimTime};
/// # use whisper_simnet::{SimNet, Actor, Context, NodeId, Wire};
/// # #[derive(Clone, Debug)] struct M;
/// # impl Wire for M { fn wire_size(&self) -> usize { 1 } }
/// # struct A; impl Actor<M> for A {
/// #   fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {}
/// # }
/// # let mut net = SimNet::<M>::new(1);
/// # let coordinator = net.add_node(A);
/// let mut plan = FaultPlan::new();
/// plan.crash_at(coordinator, SimTime::from_micros(2_000_000));
/// plan.restart_at(coordinator, SimTime::from_micros(5_000_000));
/// net.apply_faults(&plan);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub(crate) actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crash `node` at time `at`.
    pub fn crash_at(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Crash(node)));
        self
    }

    /// Restart `node` at time `at`.
    pub fn restart_at(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Restart(node)));
        self
    }

    /// Block all traffic between `a` and `b` starting at `at`.
    pub fn block_at(&mut self, a: NodeId, b: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Block(a, b)));
        self
    }

    /// Unblock traffic between `a` and `b` at `at`.
    pub fn unblock_at(&mut self, a: NodeId, b: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Unblock(a, b)));
        self
    }

    /// Partition the nodes into two sides from `from` until `until`:
    /// every cross-side pair is blocked, then unblocked.
    pub fn partition_between(
        &mut self,
        side_a: &[NodeId],
        side_b: &[NodeId],
        from: SimTime,
        until: SimTime,
    ) -> &mut Self {
        for &a in side_a {
            for &b in side_b {
                self.block_at(a, b, from);
                self.unblock_at(a, b, until);
            }
        }
        self
    }

    /// The scheduled actions, in insertion order (not sorted by time).
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_accumulate() {
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        let mut p = FaultPlan::new();
        assert!(p.is_empty());
        p.crash_at(n0, SimTime::from_micros(10))
            .restart_at(n0, SimTime::from_micros(20));
        p.partition_between(
            &[n0],
            &[n1, n2],
            SimTime::from_micros(5),
            SimTime::from_micros(50),
        );
        assert_eq!(p.len(), 2 + 4);
        assert!(matches!(p.actions[0].1, FaultAction::Crash(_)));
    }
}
