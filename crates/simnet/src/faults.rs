//! Fault injection: scheduled crashes, restarts, partitions and gray
//! failures (lossy/duplicating/corrupting links, stalled and fail-slow
//! nodes).

use crate::engine::NodeId;
use crate::time::{SimDuration, SimTime};

/// Gray-degradation parameters for one link pair (applied to both
/// directions, like [`FaultAction::Block`]).
///
/// Percentages are whole percent in `0..=100`; the latency terms are
/// *added* to whatever the substrate's own link model produces. A
/// duplicated message is delivered twice; a reordered message is delayed
/// past its successors; a corrupted message is dropped and counted as a
/// decode error (on TCP the frame's bytes are actually flipped and the
/// receiver's decoder rejects them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradeSpec {
    /// Extra one-way latency added to every message.
    pub latency: SimDuration,
    /// Uniform random extra latency in `0..=jitter` per message.
    pub jitter: SimDuration,
    /// Percent of messages dropped outright.
    pub loss_pct: u32,
    /// Percent of messages delivered twice.
    pub dup_pct: u32,
    /// Percent of messages delayed past their successors (adds a multiple
    /// of the jitter bound on top of the normal delay).
    pub reorder_pct: u32,
    /// Percent of messages corrupted in flight (observable as per-link
    /// decode errors, never as garbage handed to an actor).
    pub corrupt_pct: u32,
}

impl DegradeSpec {
    /// Whether this spec degrades anything at all.
    pub fn is_noop(&self) -> bool {
        *self == DegradeSpec::default()
    }
}

/// One injected fault.
///
/// On the simulator these are discrete events executed at virtual time;
/// on the threaded and TCP runtimes a real-time fault driver replays them
/// against the live transport (see
/// [`Substrate::execute_plan`](crate::Substrate::execute_plan)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash-stop a node: it stops receiving messages and timers.
    Crash(NodeId),
    /// Restart a crashed node; its `on_restart` hook runs.
    Restart(NodeId),
    /// Block traffic between two nodes in both directions.
    Block(NodeId, NodeId),
    /// Unblock traffic between two nodes.
    Unblock(NodeId, NodeId),
    /// Degrade the link pair between two nodes (both directions): added
    /// latency/jitter, probabilistic loss, duplication, reordering and
    /// corruption, per [`DegradeSpec`].
    Degrade(NodeId, NodeId, DegradeSpec),
    /// Restore a degraded link pair to its healthy behavior.
    Restore(NodeId, NodeId),
    /// Freeze a node's outbound traffic for the given duration: everything
    /// it sends during the stall arrives only after the stall ends. The
    /// node is alive (it still receives and processes), which is what
    /// distinguishes a gray stall from a crash.
    Stall(NodeId, SimDuration),
    /// Make a node fail-slow by the given factor, expressed in hundredths
    /// (200 = 2.00x). On the simulator the node's link latencies are
    /// multiplied; on the live substrates each outbound message is held
    /// for a proportional delay. `Slow(n, 100)` restores full speed.
    Slow(NodeId, u32),
}

/// A schedule of faults to inject into a run on any substrate.
///
/// Build the plan up front, then install it with [`SimNet::apply_faults`]
/// (the engine executes each action at its virtual time) or replay it on a
/// live transport with
/// [`Substrate::execute_plan`](crate::Substrate::execute_plan), where a
/// fault-driver thread fires each action at the matching wall-clock
/// offset. This keeps experiments declarative and reproducible — the same
/// plan drives the simulator, the threaded runtime and real TCP sockets.
///
/// Plans round-trip through a line-oriented text form (see
/// [`FaultPlan::to_text`] / [`FaultPlan::parse_text`]), so experiment
/// binaries can load a chaos schedule from a file instead of hardcoding
/// it.
///
/// [`SimNet`]: crate::SimNet
/// [`SimNet::apply_faults`]: crate::SimNet::apply_faults
///
/// # Examples
///
/// ```
/// use whisper_simnet::{FaultPlan, SimTime};
/// # use whisper_simnet::{SimNet, Actor, Context, NodeId, Wire};
/// # #[derive(Clone, Debug)] struct M;
/// # impl Wire for M { fn wire_size(&self) -> usize { 1 } }
/// # struct A; impl Actor<M> for A {
/// #   fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {}
/// # }
/// # let mut net = SimNet::<M>::new(1);
/// # let coordinator = net.add_node(A);
/// let mut plan = FaultPlan::new();
/// plan.crash_at(coordinator, SimTime::from_micros(2_000_000));
/// plan.restart_at(coordinator, SimTime::from_micros(5_000_000));
/// net.apply_faults(&plan);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub(crate) actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Crash `node` at time `at`.
    pub fn crash_at(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Crash(node)));
        self
    }

    /// Restart `node` at time `at`.
    pub fn restart_at(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Restart(node)));
        self
    }

    /// Block all traffic between `a` and `b` starting at `at`.
    pub fn block_at(&mut self, a: NodeId, b: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Block(a, b)));
        self
    }

    /// Unblock traffic between `a` and `b` at `at`.
    pub fn unblock_at(&mut self, a: NodeId, b: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Unblock(a, b)));
        self
    }

    /// Degrade the link pair between `a` and `b` from `at` per `spec`.
    pub fn degrade_at(
        &mut self,
        a: NodeId,
        b: NodeId,
        spec: DegradeSpec,
        at: SimTime,
    ) -> &mut Self {
        self.actions.push((at, FaultAction::Degrade(a, b, spec)));
        self
    }

    /// Restore the link pair between `a` and `b` at `at`.
    pub fn restore_at(&mut self, a: NodeId, b: NodeId, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Restore(a, b)));
        self
    }

    /// Stall `node`'s outbound traffic for `duration` starting at `at`.
    pub fn stall_at(&mut self, node: NodeId, duration: SimDuration, at: SimTime) -> &mut Self {
        self.actions.push((at, FaultAction::Stall(node, duration)));
        self
    }

    /// Slow `node` by `factor_x100` hundredths (200 = 2x) from `at`;
    /// schedule `Slow(node, 100)` later to restore it.
    pub fn slow_at(&mut self, node: NodeId, factor_x100: u32, at: SimTime) -> &mut Self {
        self.actions
            .push((at, FaultAction::Slow(node, factor_x100)));
        self
    }

    /// Partition the nodes into two sides from `from` until `until`:
    /// every cross-side pair is blocked, then unblocked.
    pub fn partition_between(
        &mut self,
        side_a: &[NodeId],
        side_b: &[NodeId],
        from: SimTime,
        until: SimTime,
    ) -> &mut Self {
        for &a in side_a {
            for &b in side_b {
                self.block_at(a, b, from);
                self.unblock_at(a, b, until);
            }
        }
        self
    }

    /// The scheduled actions, in insertion order (not sorted by time).
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Renders the plan as its line-oriented text form, one action per
    /// line: `<time> <verb> <args...>`. The output parses back via
    /// [`FaultPlan::parse_text`] to an identical plan.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (at, action) in &self.actions {
            out.push_str(&fmt_duration(at.as_micros()));
            out.push(' ');
            match action {
                FaultAction::Crash(n) => out.push_str(&format!("crash {n}")),
                FaultAction::Restart(n) => out.push_str(&format!("restart {n}")),
                FaultAction::Block(a, b) => out.push_str(&format!("block {a} {b}")),
                FaultAction::Unblock(a, b) => out.push_str(&format!("unblock {a} {b}")),
                FaultAction::Degrade(a, b, s) => {
                    out.push_str(&format!(
                        "degrade {a} {b} latency={} jitter={} loss={} dup={} reorder={} corrupt={}",
                        fmt_duration(s.latency.as_micros()),
                        fmt_duration(s.jitter.as_micros()),
                        s.loss_pct,
                        s.dup_pct,
                        s.reorder_pct,
                        s.corrupt_pct,
                    ));
                }
                FaultAction::Restore(a, b) => out.push_str(&format!("restore {a} {b}")),
                FaultAction::Stall(n, d) => {
                    out.push_str(&format!("stall {n} {}", fmt_duration(d.as_micros())))
                }
                FaultAction::Slow(n, f) => out.push_str(&format!("slow {n} {}", fmt_factor(*f))),
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text form produced by [`FaultPlan::to_text`].
    ///
    /// One action per line: `<time> <verb> <args...>`. Times and durations
    /// accept `us`, `ms` and `s` suffixes (`250us`, `500ms`, `2s`); a bare
    /// number is microseconds. Blank lines and lines starting with `#` are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line and what was wrong
    /// with it.
    pub fn parse_text(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
            let mut parts = line.split_whitespace();
            let at = SimTime::from_micros(
                parse_duration(parts.next().expect("non-empty line"))
                    .ok_or_else(|| err("bad time"))?,
            );
            let verb = parts.next().ok_or_else(|| err("missing verb"))?;
            let node = |parts: &mut std::str::SplitWhitespace<'_>| -> Result<NodeId, String> {
                parse_node(parts.next().ok_or_else(|| err("missing node"))?)
                    .ok_or_else(|| err("bad node"))
            };
            let action = match verb {
                "crash" => FaultAction::Crash(node(&mut parts)?),
                "restart" => FaultAction::Restart(node(&mut parts)?),
                "block" => FaultAction::Block(node(&mut parts)?, node(&mut parts)?),
                "unblock" => FaultAction::Unblock(node(&mut parts)?, node(&mut parts)?),
                "restore" => FaultAction::Restore(node(&mut parts)?, node(&mut parts)?),
                "stall" => {
                    let n = node(&mut parts)?;
                    let d = parse_duration(parts.next().ok_or_else(|| err("missing duration"))?)
                        .ok_or_else(|| err("bad duration"))?;
                    FaultAction::Stall(n, SimDuration::from_micros(d))
                }
                "slow" => {
                    let n = node(&mut parts)?;
                    let f = parse_factor(parts.next().ok_or_else(|| err("missing factor"))?)
                        .ok_or_else(|| err("bad factor"))?;
                    FaultAction::Slow(n, f)
                }
                "degrade" => {
                    let a = node(&mut parts)?;
                    let b = node(&mut parts)?;
                    let mut spec = DegradeSpec::default();
                    for kv in parts.by_ref() {
                        let (key, value) =
                            kv.split_once('=').ok_or_else(|| err("bad key=value"))?;
                        let dur = || parse_duration(value).map(SimDuration::from_micros);
                        let pct = || value.parse::<u32>().ok().filter(|&p| p <= 100);
                        match key {
                            "latency" => spec.latency = dur().ok_or_else(|| err("bad latency"))?,
                            "jitter" => spec.jitter = dur().ok_or_else(|| err("bad jitter"))?,
                            "loss" => spec.loss_pct = pct().ok_or_else(|| err("bad loss"))?,
                            "dup" => spec.dup_pct = pct().ok_or_else(|| err("bad dup"))?,
                            "reorder" => {
                                spec.reorder_pct = pct().ok_or_else(|| err("bad reorder"))?
                            }
                            "corrupt" => {
                                spec.corrupt_pct = pct().ok_or_else(|| err("bad corrupt"))?
                            }
                            _ => return Err(err("unknown degrade key")),
                        }
                    }
                    FaultAction::Degrade(a, b, spec)
                }
                _ => return Err(err("unknown verb")),
            };
            if let Some(extra) = parts.next() {
                return Err(err(&format!("trailing token {extra:?}")));
            }
            plan.actions.push((at, action));
        }
        Ok(plan)
    }
}

/// Renders a duration in its cleanest unit: `2s`, `500ms`, `250us`.
fn fmt_duration(us: u64) -> String {
    if us == 0 {
        "0s".to_string()
    } else if us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

/// Parses `2s` / `500ms` / `250us` / bare microseconds into microseconds.
fn parse_duration(s: &str) -> Option<u64> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        (s, 1)
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

/// Parses `n3` into a [`NodeId`].
fn parse_node(s: &str) -> Option<NodeId> {
    let digits = s.strip_prefix('n')?;
    Some(NodeId::from_index(digits.parse::<u32>().ok()? as usize))
}

/// Renders a slow factor in hundredths as a decimal: 250 → `2.5`.
fn fmt_factor(f: u32) -> String {
    if f.is_multiple_of(100) {
        format!("{}", f / 100)
    } else if f.is_multiple_of(10) {
        format!("{}.{}", f / 100, (f % 100) / 10)
    } else {
        format!("{}.{:02}", f / 100, f % 100)
    }
}

/// Parses a decimal slow factor with up to two fractional digits back into
/// hundredths: `2.5` → 250.
fn parse_factor(s: &str) -> Option<u32> {
    match s.split_once('.') {
        None => s.parse::<u32>().ok()?.checked_mul(100),
        Some((whole, frac)) => {
            if frac.is_empty() || frac.len() > 2 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let scale = if frac.len() == 1 { 10 } else { 1 };
            let whole = whole.parse::<u32>().ok()?.checked_mul(100)?;
            Some(whole + frac.parse::<u32>().ok()? * scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_accumulate() {
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        let mut p = FaultPlan::new();
        assert!(p.is_empty());
        p.crash_at(n0, SimTime::from_micros(10))
            .restart_at(n0, SimTime::from_micros(20));
        p.partition_between(
            &[n0],
            &[n1, n2],
            SimTime::from_micros(5),
            SimTime::from_micros(50),
        );
        assert_eq!(p.len(), 2 + 4);
        assert!(matches!(p.actions[0].1, FaultAction::Crash(_)));
    }

    #[test]
    fn gray_builders_accumulate() {
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let spec = DegradeSpec {
            loss_pct: 5,
            ..DegradeSpec::default()
        };
        let mut p = FaultPlan::new();
        p.degrade_at(n0, n1, spec, SimTime::from_micros(10))
            .restore_at(n0, n1, SimTime::from_micros(20))
            .stall_at(n0, SimDuration::from_millis(5), SimTime::from_micros(30))
            .slow_at(n1, 250, SimTime::from_micros(40));
        assert_eq!(p.len(), 4);
        assert_eq!(p.actions[0].1, FaultAction::Degrade(n0, n1, spec));
        assert_eq!(p.actions[3].1, FaultAction::Slow(n1, 250));
    }

    fn full_plan() -> FaultPlan {
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let n4 = NodeId(4);
        let mut p = FaultPlan::new();
        p.crash_at(n4, SimTime::from_micros(2_000_000))
            .restart_at(n4, SimTime::from_micros(5_000_000))
            .block_at(n0, n1, SimTime::from_micros(1_500))
            .unblock_at(n0, n1, SimTime::from_micros(7_000))
            .degrade_at(
                n0,
                n4,
                DegradeSpec {
                    latency: SimDuration::from_millis(2),
                    jitter: SimDuration::from_micros(750),
                    loss_pct: 5,
                    dup_pct: 2,
                    reorder_pct: 3,
                    corrupt_pct: 1,
                },
                SimTime::from_micros(1_000_000),
            )
            .restore_at(n0, n4, SimTime::from_micros(6_000_000))
            .stall_at(
                n1,
                SimDuration::from_millis(300),
                SimTime::from_micros(2_500_000),
            )
            .slow_at(n1, 250, SimTime::from_micros(3_000_000))
            .slow_at(n1, 100, SimTime::from_micros(4_000_000));
        p
    }

    #[test]
    fn text_round_trips_every_action_kind() {
        let plan = full_plan();
        let text = plan.to_text();
        let parsed = FaultPlan::parse_text(&text).expect("rendered plan parses");
        assert_eq!(parsed.actions, plan.actions);
        // And the round trip is a fixed point.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn parse_accepts_comments_blank_lines_and_unit_variety() {
        let text = "\
# warm-up, then break things
2s crash n3

500ms degrade n0 n1 loss=5 jitter=250us
750 stall n2 1500us
1s slow n2 1.75
";
        let plan = FaultPlan::parse_text(text).expect("hand-written plan parses");
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan.actions[0],
            (
                SimTime::from_micros(2_000_000),
                FaultAction::Crash(NodeId(3))
            )
        );
        assert_eq!(
            plan.actions[1],
            (
                SimTime::from_micros(500_000),
                FaultAction::Degrade(
                    NodeId(0),
                    NodeId(1),
                    DegradeSpec {
                        loss_pct: 5,
                        jitter: SimDuration::from_micros(250),
                        ..DegradeSpec::default()
                    }
                )
            )
        );
        assert_eq!(
            plan.actions[2],
            (
                SimTime::from_micros(750),
                FaultAction::Stall(NodeId(2), SimDuration::from_micros(1500))
            )
        );
        assert_eq!(
            plan.actions[3],
            (
                SimTime::from_micros(1_000_000),
                FaultAction::Slow(NodeId(2), 175)
            )
        );
    }

    #[test]
    fn parse_rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("2s crush n3", "unknown verb"),
            ("abc crash n3", "bad time"),
            ("2s crash x3", "bad node"),
            ("2s crash", "missing node"),
            ("2s crash n3 n4", "trailing token"),
            ("2s degrade n0 n1 loss=500", "bad loss"),
            ("2s degrade n0 n1 zap=1", "unknown degrade key"),
            ("2s slow n1 1.234", "bad factor"),
        ] {
            let e = FaultPlan::parse_text(text).expect_err(text);
            assert!(e.contains(needle), "{text}: {e}");
            assert!(e.contains("line 1"), "{text}: {e}");
        }
    }

    #[test]
    fn factor_rendering_round_trips() {
        for f in [100u32, 150, 175, 200, 250, 101, 999] {
            assert_eq!(parse_factor(&fmt_factor(f)), Some(f), "factor {f}");
        }
    }
}
