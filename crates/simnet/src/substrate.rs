//! The substrate abstraction: one scenario, three runtimes.
//!
//! A *substrate* is anything that can run a set of [`Actor`]s and have
//! faults injected into it: the deterministic [`SimNet`] (virtual time,
//! discrete events), the threaded [`ThreadNet`] (real time, crossbeam
//! channels) and the socketed [`TcpNet`] (real time, loopback TCP). The
//! [`Substrate`] trait exposes the operations an experiment harness needs
//! — inject a message, kill/restart a node, block/unblock a link pair,
//! replay a whole [`FaultPlan`], advance time, read metrics — so
//! availability and failover experiments are written once and measured on
//! all three.
//!
//! Booting is symmetric: the [`Spawner`] trait is implemented by
//! [`SimNet`] itself and by the two real-time builders, so scenario wiring
//! code can place boxed actors on any substrate without knowing which one
//! it is building (node ids are assigned in registration order
//! everywhere).
//!
//! On the simulator a plan's actions are discrete events at their virtual
//! times; on the real-time substrates [`Substrate::execute_plan`] spawns a
//! *fault driver* thread that sleeps until each action's wall-clock offset
//! and applies it to the live transport — crash gates and link blocks flip
//! sender-side, TCP sockets are shut down and re-dialed. The same plan
//! therefore produces the same ordered fault sequence everywhere, which is
//! what makes cross-substrate MTTR/availability numbers comparable.
//!
//! [`Actor`]: crate::Actor
//! [`SimNet`]: crate::SimNet
//! [`ThreadNet`]: crate::threadnet::ThreadNet
//! [`TcpNet`]: crate::tcpnet::TcpNet

use crate::engine::{DynActor, FlightHook, NetHook, NodeId, SimNet};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::MetricsSnapshot;
use crate::tcpnet::{TcpNet, TcpNetBuilder};
use crate::threadnet::{ThreadNet, ThreadNetBuilder};
use crate::time::{SimDuration, SimTime};
use crate::Wire;
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use std::any::Any;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use whisper_wire::{Decode, Encode};

/// A place boxed actors can be registered before (or while) running —
/// [`SimNet`] directly, or the builders of the two real-time substrates.
///
/// Scenario wiring code written against `Spawner` (see the deployment
/// layer in `whisper-core`) boots identically on all three runtimes.
pub trait Spawner<M: Wire> {
    /// Registers a boxed actor and returns its node id (assigned in
    /// registration order on every substrate).
    fn add_boxed(&mut self, actor: Box<dyn DynActor<M>>) -> NodeId;

    /// Installs a [`NetHook`] observing every transport send and drop.
    fn set_net_hook(&mut self, hook: Box<dyn NetHook + Send>);

    /// Installs `node`'s per-node [`FlightHook`]: the substrate asks it to
    /// stamp every outgoing message with a Lamport clock, hands it every
    /// delivery (with the sender's stamp) and every fault touching the
    /// node, so one flight recorder per node sees the same event story on
    /// all three runtimes.
    fn set_flight_hook(&mut self, node: NodeId, hook: Box<dyn FlightHook + Send>);

    /// Registers an unboxed actor (sugar over [`Spawner::add_boxed`]).
    fn add(&mut self, actor: impl crate::Actor<M> + Any) -> NodeId
    where
        Self: Sized,
    {
        self.add_boxed(Box::new(actor))
    }
}

impl<M: Wire> Spawner<M> for SimNet<M> {
    fn add_boxed(&mut self, actor: Box<dyn DynActor<M>>) -> NodeId {
        SimNet::add_boxed(self, actor)
    }

    fn set_net_hook(&mut self, hook: Box<dyn NetHook + Send>) {
        SimNet::set_net_hook(self, hook);
    }

    fn set_flight_hook(&mut self, node: NodeId, hook: Box<dyn FlightHook + Send>) {
        SimNet::set_flight_hook(self, node, hook);
    }
}

impl<M: Wire> Spawner<M> for ThreadNetBuilder<M> {
    fn add_boxed(&mut self, actor: Box<dyn DynActor<M>>) -> NodeId {
        ThreadNetBuilder::add_boxed(self, actor)
    }

    fn set_net_hook(&mut self, hook: Box<dyn NetHook + Send>) {
        ThreadNetBuilder::set_net_hook(self, hook);
    }

    fn set_flight_hook(&mut self, node: NodeId, hook: Box<dyn FlightHook + Send>) {
        ThreadNetBuilder::set_flight_hook(self, node, hook);
    }
}

impl<M: Wire + Encode + Decode> Spawner<M> for TcpNetBuilder<M> {
    fn add_boxed(&mut self, actor: Box<dyn DynActor<M>>) -> NodeId {
        TcpNetBuilder::add_boxed(self, actor)
    }

    fn set_net_hook(&mut self, hook: Box<dyn NetHook + Send>) {
        TcpNetBuilder::set_net_hook(self, hook);
    }

    fn set_flight_hook(&mut self, node: NodeId, hook: Box<dyn FlightHook + Send>) {
        TcpNetBuilder::set_flight_hook(self, node, hook);
    }
}

/// A running network of actors that an experiment can drive and break.
///
/// `SimNet` advances virtual time deterministically; `ThreadNet` and
/// `TcpNet` run in wall-clock time, where [`Substrate::advance`] simply
/// sleeps while the actor threads make progress on their own.
pub trait Substrate<M: Wire> {
    /// A short label for reports: `"sim"`, `"threadnet"`, `"tcp"`.
    fn name(&self) -> &'static str;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Sends `msg` to `to` as if it came from `from` (driver injection,
    /// not a measured transport hop).
    fn inject(&mut self, from: NodeId, to: NodeId, msg: M);

    /// Kills `node` as a crash: it stops hearing messages and timers until
    /// restarted.
    fn kill_node(&mut self, node: NodeId);

    /// Restarts a killed node; its `on_restart` hook fires.
    fn restart_node(&mut self, node: NodeId);

    /// Blocks all traffic between `a` and `b`, both directions.
    fn block_link(&mut self, a: NodeId, b: NodeId);

    /// Unblocks traffic between `a` and `b`.
    fn unblock_link(&mut self, a: NodeId, b: NodeId);

    /// Applies one [`FaultAction`] now — including the gray kinds
    /// (degrade/restore/stall/slow) that have no dedicated method.
    fn apply_action(&mut self, action: FaultAction);

    /// Schedules `plan` against this substrate: discrete events on the
    /// simulator, a real-time fault-driver thread on the live runtimes.
    /// Action times are measured from substrate start.
    fn execute_plan(&mut self, plan: &FaultPlan);

    /// Lets the scenario progress for `d`: advances virtual time on the
    /// simulator, sleeps wall-clock time on the live runtimes.
    fn advance(&mut self, d: SimDuration);

    /// Current time on this substrate's axis (virtual or since-start).
    fn now(&self) -> SimTime;

    /// A detached copy of the transport metrics so far.
    fn metrics_snapshot(&self) -> MetricsSnapshot;
}

impl<M: Wire> Substrate<M> for SimNet<M> {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn node_count(&self) -> usize {
        SimNet::node_count(self)
    }

    fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        SimNet::inject(self, from, to, msg);
    }

    fn kill_node(&mut self, node: NodeId) {
        SimNet::kill_node(self, node);
    }

    fn restart_node(&mut self, node: NodeId) {
        SimNet::restart_node(self, node);
    }

    fn block_link(&mut self, a: NodeId, b: NodeId) {
        SimNet::block_link(self, a, b);
    }

    fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        SimNet::unblock_link(self, a, b);
    }

    fn apply_action(&mut self, action: FaultAction) {
        SimNet::apply_action(self, action);
    }

    fn execute_plan(&mut self, plan: &FaultPlan) {
        SimNet::apply_faults(self, plan);
    }

    fn advance(&mut self, d: SimDuration) {
        SimNet::run_for(self, d);
    }

    fn now(&self) -> SimTime {
        SimNet::now(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics().snapshot()
    }
}

impl<M: Wire> Substrate<M> for ThreadNet<M> {
    fn name(&self) -> &'static str {
        "threadnet"
    }

    fn node_count(&self) -> usize {
        ThreadNet::node_count(self)
    }

    fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        ThreadNet::inject(self, from, to, msg);
    }

    fn kill_node(&mut self, node: NodeId) {
        ThreadNet::kill_node(self, node);
    }

    fn restart_node(&mut self, node: NodeId) {
        ThreadNet::restart_node(self, node);
    }

    fn block_link(&mut self, a: NodeId, b: NodeId) {
        ThreadNet::block_link(self, a, b);
    }

    fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        ThreadNet::unblock_link(self, a, b);
    }

    fn apply_action(&mut self, action: FaultAction) {
        ThreadNet::apply_action(self, action);
    }

    fn execute_plan(&mut self, plan: &FaultPlan) {
        ThreadNet::execute_plan(self, plan);
    }

    fn advance(&mut self, d: SimDuration) {
        std::thread::sleep(Duration::from_micros(d.as_micros()));
    }

    fn now(&self) -> SimTime {
        ThreadNet::now(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        ThreadNet::metrics_snapshot(self)
    }
}

impl<M: Wire> Substrate<M> for TcpNet<M> {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn node_count(&self) -> usize {
        TcpNet::node_count(self)
    }

    fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        TcpNet::inject(self, from, to, msg);
    }

    fn kill_node(&mut self, node: NodeId) {
        TcpNet::kill_node(self, node);
    }

    fn restart_node(&mut self, node: NodeId) {
        TcpNet::restart_node(self, node);
    }

    fn block_link(&mut self, a: NodeId, b: NodeId) {
        TcpNet::block_link(self, a, b);
    }

    fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        TcpNet::unblock_link(self, a, b);
    }

    fn apply_action(&mut self, action: FaultAction) {
        TcpNet::apply_action(self, action);
    }

    fn execute_plan(&mut self, plan: &FaultPlan) {
        TcpNet::execute_plan(self, plan);
    }

    fn advance(&mut self, d: SimDuration) {
        std::thread::sleep(Duration::from_micros(d.as_micros()));
    }

    fn now(&self) -> SimTime {
        TcpNet::now(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        TcpNet::metrics_snapshot(self)
    }
}

/// A background thread replaying a [`FaultPlan`] against a live substrate
/// in wall-clock time. Created by the real-time substrates'
/// `execute_plan`; stopped and joined on shutdown so no action fires into
/// a half-torn-down network.
pub(crate) struct FaultDriver {
    stop: Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl FaultDriver {
    /// Spawns the driver. Actions run in time order (ties keep plan
    /// insertion order, matching the engine's event queue); each action's
    /// offset is measured from `epoch`, the substrate's start instant.
    /// Actions whose time has already passed fire immediately, in order.
    pub(crate) fn spawn(
        plan: &FaultPlan,
        epoch: Instant,
        apply: Box<dyn Fn(FaultAction) + Send>,
    ) -> FaultDriver {
        let mut actions: Vec<(SimTime, FaultAction)> = plan.actions().to_vec();
        actions.sort_by_key(|&(at, _)| at);
        let (stop_tx, stop_rx) = unbounded::<()>();
        let handle = std::thread::spawn(move || {
            for (at, action) in actions {
                let deadline = epoch + Duration::from_micros(at.as_micros());
                let now = Instant::now();
                if now < deadline {
                    match stop_rx.recv_timeout(deadline - now) {
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                }
                apply(action);
            }
        });
        FaultDriver {
            stop: stop_tx,
            handle: Some(handle),
        }
    }

    /// Stops the driver (remaining actions are abandoned) and joins its
    /// thread.
    pub(crate) fn stop(mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn driver_fires_actions_in_time_order() {
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let mut plan = FaultPlan::new();
        // Inserted out of order on purpose.
        plan.restart_at(n0, SimTime::from_micros(30_000));
        plan.crash_at(n0, SimTime::from_micros(10_000));
        plan.block_at(n0, n1, SimTime::from_micros(20_000));
        let fired = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&fired);
        let driver = FaultDriver::spawn(
            &plan,
            Instant::now(),
            Box::new(move |a| sink.lock().push(a)),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while fired.lock().len() < 3 {
            assert!(Instant::now() < deadline, "driver did not fire all actions");
            std::thread::sleep(Duration::from_millis(1));
        }
        driver.stop();
        let fired = fired.lock();
        assert_eq!(fired[0], FaultAction::Crash(n0));
        assert_eq!(fired[1], FaultAction::Block(n0, n1));
        assert_eq!(fired[2], FaultAction::Restart(n0));
    }

    #[test]
    fn driver_stop_abandons_pending_actions() {
        let n0 = NodeId::from_index(0);
        let mut plan = FaultPlan::new();
        plan.crash_at(n0, SimTime::from_micros(3_600_000_000));
        let fired = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&fired);
        let driver = FaultDriver::spawn(
            &plan,
            Instant::now(),
            Box::new(move |a| sink.lock().push(a)),
        );
        driver.stop();
        assert!(fired.lock().is_empty());
    }
}
