//! Virtual time: instants and durations in integer microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use whisper_wire::{Decode, Encode};

/// A virtual instant, measured in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

/// A span of virtual time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual clocks never run
    /// backwards, so this indicates a scheduling bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("virtual clock ran backwards"),
        )
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Encode for SimTime {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for SimTime {
    fn decode_from(r: &mut whisper_wire::Reader<'_>) -> Result<Self, whisper_wire::WireError> {
        Ok(SimTime(u64::decode_from(r)?))
    }
}

impl Encode for SimDuration {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for SimDuration {
    fn decode_from(r: &mut whisper_wire::Reader<'_>) -> Result<Self, whisper_wire::WireError> {
        Ok(SimDuration(u64::decode_from(r)?))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!(t2.since(t), SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_millis(3) + SimDuration::from_micros(5),
            SimDuration::from_micros(3_005)
        );
        assert_eq!(
            SimDuration::from_millis(3) - SimDuration::from_millis(1),
            SimDuration::from_millis(2)
        );
        // saturating subtraction on durations
        assert_eq!(
            SimDuration::from_millis(1) - SimDuration::from_millis(5),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn since_panics_when_backwards() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(10);
        let _ = early.since(late);
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
        assert_eq!(SimTime::from_micros(1_500).as_millis_f64(), 1.5);
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(500).as_secs_f64(), 0.5);
    }

    #[test]
    fn wire_round_trip() {
        for us in [0u64, 1, 250_000, u64::MAX] {
            let d = SimDuration::from_micros(us);
            assert_eq!(SimDuration::decode(&d.encode()).unwrap(), d);
            assert_eq!(d.encoded_len(), d.encode().len());
            let t = SimTime::from_micros(us);
            assert_eq!(SimTime::decode(&t.encode()).unwrap(), t);
        }
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
