//! Link models: how long a message takes between two nodes, and whether it
//! is lost.

use crate::engine::NodeId;
use crate::time::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;

/// Computes the one-way latency of a message and its loss fate.
///
/// Implementations must be deterministic given the provided RNG (the engine
/// passes its seeded RNG in), so whole runs replay identically.
pub trait LinkModel: Send {
    /// One-way delay for `size` bytes from `from` to `to`.
    fn latency(&self, from: NodeId, to: NodeId, size: usize, rng: &mut SmallRng) -> SimDuration;

    /// Whether this message is lost in transit. Default: never.
    fn is_lost(&self, _from: NodeId, _to: NodeId, _rng: &mut SmallRng) -> bool {
        false
    }
}

/// Zero-latency, lossless link — useful in unit tests where only ordering
/// and counting matter.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectLink;

impl LinkModel for PerfectLink {
    fn latency(&self, _: NodeId, _: NodeId, _: usize, _: &mut SmallRng) -> SimDuration {
        SimDuration::ZERO
    }
}

/// A switched full-duplex LAN calibrated to the paper's testbed:
/// 100 Mbit/s Ethernet with sub-millisecond propagation.
///
/// One-way latency = `propagation + size / bandwidth + jitter`, where jitter
/// is uniform in `[0, max_jitter]`. With the default parameters a ~1 KiB
/// SOAP message sees ≈ 0.25 ms one-way, i.e. ≈ 0.5 ms RTT — the average the
/// paper reports for steady state.
#[derive(Debug, Clone, Copy)]
pub struct SwitchedLan {
    /// Fixed propagation + switching delay.
    pub propagation: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// Upper bound of uniform jitter added per message.
    pub max_jitter: SimDuration,
    /// Independent per-message loss probability.
    pub loss_probability: f64,
}

impl SwitchedLan {
    /// The paper's testbed: 100 Mbit/s, ~0.15 ms switch+stack latency,
    /// 0.1 ms max jitter, lossless.
    pub fn paper_testbed() -> Self {
        SwitchedLan {
            propagation: SimDuration::from_micros(150),
            bandwidth_bps: 100_000_000 / 8,
            max_jitter: SimDuration::from_micros(100),
            loss_probability: 0.0,
        }
    }

    /// A lossy variant of the testbed for fault-injection experiments.
    pub fn lossy(loss_probability: f64) -> Self {
        SwitchedLan {
            loss_probability,
            ..SwitchedLan::paper_testbed()
        }
    }
}

impl Default for SwitchedLan {
    fn default() -> Self {
        SwitchedLan::paper_testbed()
    }
}

impl LinkModel for SwitchedLan {
    fn latency(&self, from: NodeId, to: NodeId, size: usize, rng: &mut SmallRng) -> SimDuration {
        if from == to {
            // loopback: negligible but non-zero so ordering is sensible
            return SimDuration::from_micros(5);
        }
        let serialization_us = (size as u64).saturating_mul(1_000_000) / self.bandwidth_bps.max(1);
        let jitter_us = if self.max_jitter.as_micros() == 0 {
            0
        } else {
            rng.gen_range(0..=self.max_jitter.as_micros())
        };
        self.propagation + SimDuration::from_micros(serialization_us + jitter_us)
    }

    fn is_lost(&self, from: NodeId, to: NodeId, rng: &mut SmallRng) -> bool {
        if from == to || self.loss_probability <= 0.0 {
            return false;
        }
        rng.gen_bool(self.loss_probability.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn perfect_link_is_instant_and_lossless() {
        let mut r = rng();
        let l = PerfectLink;
        assert_eq!(
            l.latency(NodeId(0), NodeId(1), 10_000, &mut r),
            SimDuration::ZERO
        );
        assert!(!l.is_lost(NodeId(0), NodeId(1), &mut r));
    }

    #[test]
    fn lan_latency_close_to_half_millisecond_rtt_for_soap_sizes() {
        // calibration check: 1 KiB message, one-way in [150, 350] us
        let mut r = rng();
        let lan = SwitchedLan::paper_testbed();
        let d = lan.latency(NodeId(0), NodeId(1), 1024, &mut r);
        assert!(
            (150..=350).contains(&d.as_micros()),
            "one-way latency {d} outside calibration band"
        );
    }

    #[test]
    fn bigger_messages_take_longer_on_average() {
        let lan = SwitchedLan {
            max_jitter: SimDuration::ZERO,
            ..SwitchedLan::paper_testbed()
        };
        let mut r = rng();
        let small = lan.latency(NodeId(0), NodeId(1), 100, &mut r);
        let big = lan.latency(NodeId(0), NodeId(1), 1_000_000, &mut r);
        assert!(big > small);
        // 1 MB at 100 Mbit/s is 80 ms of serialization
        assert!(big.as_micros() > 79_000, "{big}");
    }

    #[test]
    fn loopback_is_fast_and_lossless() {
        let lan = SwitchedLan::lossy(1.0);
        let mut r = rng();
        assert!(
            lan.latency(NodeId(3), NodeId(3), 1 << 20, &mut r)
                .as_micros()
                < 50
        );
        assert!(!lan.is_lost(NodeId(3), NodeId(3), &mut r));
    }

    #[test]
    fn loss_probability_respected() {
        let lan = SwitchedLan::lossy(0.5);
        let mut r = rng();
        let lost = (0..1000)
            .filter(|_| lan.is_lost(NodeId(0), NodeId(1), &mut r))
            .count();
        assert!((350..650).contains(&lost), "lost {lost}/1000");
        let lossless = SwitchedLan::paper_testbed();
        assert!(!(0..100).any(|_| lossless.is_lost(NodeId(0), NodeId(1), &mut r)));
    }
}
