//! The discrete-event engine: nodes, virtual clock, scheduling and faults.

use crate::event::{EventKind, EventQueue};
use crate::faults::{DegradeSpec, FaultAction, FaultPlan};
use crate::link::{LinkModel, SwitchedLan};
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::Wire;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a node within one [`SimNet`]. Assigned by
/// [`SimNet::add_node`] in insertion order starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The position of this node in insertion order.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs the id of the `i`-th added node. Node ids are assigned
    /// sequentially from zero, so deployment harnesses can compute routing
    /// tables before the nodes exist.
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// What happened to a traced message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Delivered to a live node.
    Delivered,
    /// Dropped by the loss model.
    Lost,
    /// Dropped by a partition at send time.
    Partitioned,
    /// The destination was crashed at delivery time.
    DestinationDown,
}

/// One traced message (recorded when tracing is enabled via
/// [`SimNet::enable_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the message left the sender.
    pub sent_at: SimTime,
    /// When it arrived (`None` when it never did).
    pub delivered_at: Option<SimTime>,
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Metric label of the message.
    pub kind: &'static str,
    /// Wire size in bytes.
    pub bytes: usize,
    /// Fate of the message.
    pub outcome: TraceOutcome,
}

/// Protocol logic attached to a node.
///
/// Implementations are *sans-io* state machines: they never block and only
/// interact with the world through the [`Context`] passed into each hook.
/// The same actor runs unchanged on the simulator and on
/// [`threadnet::ThreadNet`](crate::threadnet::ThreadNet).
pub trait Actor<M>: Send {
    /// Called once when the node first starts.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _token: u64) {}

    /// Called when the node recovers from a crash. Timers set before the
    /// crash never fire; state carried across the crash is up to the actor
    /// (keep it to model persistent storage, clear it in `on_restart` to
    /// model a cold start).
    fn on_restart(&mut self, _ctx: &mut Context<'_, M>) {}
}

/// An [`Actor`] that can also be inspected via [`Any`] downcasts.
///
/// Deployment harnesses that wire the *same* scenario onto every substrate
/// hand actors around as `Box<dyn DynActor<M>>` (see
/// [`Spawner`](crate::Spawner)): the box spawns onto the simulator, the
/// threaded runtime or the TCP runtime unchanged, while
/// [`SimNet::node`]/[`SimNet::node_mut`] keep their concrete-type access.
/// The blanket impl covers every `'static` actor, so implementors never
/// write this by hand.
pub trait DynActor<M>: Actor<M> {
    /// The actor as [`Any`], for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// The actor as mutable [`Any`], for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Consumes the box into an owned [`Any`], used by the threaded
    /// runtimes to return actors out of `shutdown`.
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
}

impl<M, T: Actor<M> + Any + Send> DynActor<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

pub(crate) enum Op<M> {
    Send {
        to: NodeId,
        msg: M,
    },
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        token: u64,
    },
    CancelTimer(TimerId),
}

/// A handle that lets work running *outside* the actor loop — a worker
/// pool thread, a completion callback — push a message back into the
/// owning node's own mailbox, where it is delivered through the normal
/// `on_message` path (subject to the node's up/down state like any other
/// send-to-self).
///
/// Obtained via [`Context::self_injector`] on the threaded runtimes; the
/// deterministic simulator returns `None` there, because off-loop wall
/// clock work would break replayability — actors must keep a sequential
/// fallback for that substrate.
pub struct SelfInjector<M> {
    node: NodeId,
    send: std::sync::Arc<dyn Fn(M) + Send + Sync>,
}

impl<M> Clone for SelfInjector<M> {
    fn clone(&self) -> Self {
        SelfInjector {
            node: self.node,
            send: std::sync::Arc::clone(&self.send),
        }
    }
}

impl<M> fmt::Debug for SelfInjector<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SelfInjector")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl<M> SelfInjector<M> {
    pub(crate) fn new(node: NodeId, send: std::sync::Arc<dyn Fn(M) + Send + Sync>) -> Self {
        SelfInjector { node, send }
    }

    /// Enqueues `msg` into the owning node's mailbox as a send-to-self.
    pub fn inject(&self, msg: M) {
        (self.send)(msg);
    }

    /// The node this injector feeds.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// The actor's window onto the engine during one hook invocation.
pub struct Context<'a, M> {
    now: SimTime,
    id: NodeId,
    next_timer: &'a mut u64,
    ops: Vec<Op<M>>,
    rng: &'a mut SmallRng,
    injector: Option<&'a SelfInjector<M>>,
}

impl<'a, M> Context<'a, M> {
    /// Crate-internal constructor shared by the simulator and the threaded
    /// runtime.
    pub(crate) fn detached(
        now: SimTime,
        id: NodeId,
        next_timer: &'a mut u64,
        rng: &'a mut SmallRng,
        injector: Option<&'a SelfInjector<M>>,
    ) -> Self {
        Context {
            now,
            id,
            next_timer,
            ops: Vec::new(),
            rng,
            injector,
        }
    }

    /// Crate-internal: drains the buffered operations for interpretation by
    /// the hosting runtime.
    pub(crate) fn take_ops(&mut self) -> Vec<Op<M>> {
        std::mem::take(&mut self.ops)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `msg` to `to`. Delivery time and loss are decided by the link
    /// model; sending to a crashed node silently drops at delivery time,
    /// exactly like a real datagram.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.ops.push(Op::Send { to, msg });
    }

    /// Arms a timer that fires after `delay` with the protocol-chosen
    /// `token`. Returns a handle for [`Context::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.ops.push(Op::SetTimer { id, delay, token });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or foreign timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.ops.push(Op::CancelTimer(id));
    }

    /// Deterministic randomness (seeded per run).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// A cloneable handle for off-loop work (e.g. a worker pool) to push
    /// messages back into this node's mailbox. `None` on the
    /// deterministic simulator, where every effect must stay inside the
    /// event loop — callers keep an inline fallback for that substrate.
    pub fn self_injector(&self) -> Option<SelfInjector<M>> {
        self.injector.cloned()
    }
}

struct NodeSlot<M> {
    actor: Box<dyn DynActor<M>>,
    up: bool,
    /// Incremented on every crash so stale timers never fire after restart.
    epoch: u32,
}

/// The deterministic discrete-event network simulator.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct SimNet<M: Wire> {
    nodes: Vec<NodeSlot<M>>,
    queue: EventQueue<M>,
    clock: SimTime,
    rng: SmallRng,
    link: Box<dyn LinkModel>,
    metrics: Metrics,
    cancelled: HashSet<TimerId>,
    blocked: HashSet<(NodeId, NodeId)>,
    /// Gray-degraded ordered links (both directions of a pair are
    /// inserted when a [`FaultAction::Degrade`] lands).
    degraded: HashMap<(NodeId, NodeId), DegradeSpec>,
    /// Nodes whose outbound traffic is frozen until the given time.
    stalled_until: HashMap<NodeId, SimTime>,
    /// Fail-slow factors in hundredths (absent = 100 = full speed).
    slow: HashMap<NodeId, u32>,
    next_timer: u64,
    /// Safety valve for runaway protocols (see [`SimNet::set_event_limit`]).
    event_limit: u64,
    events_processed: u64,
    /// Message log, populated when [`SimNet::enable_trace`] was called.
    trace: Option<Vec<TraceEvent>>,
    /// Observability hook; `None` keeps the message hot path allocation-free.
    hook: Option<Box<dyn NetHook>>,
    /// Per-node flight recorders, indexed by node; `None` slots are free.
    flight: Vec<Option<Box<dyn FlightHook + Send>>>,
}

/// Callbacks observing the message layer, installed with
/// [`SimNet::set_net_hook`]. All methods default to no-ops so implementors
/// subscribe only to what they need. When no hook is installed the engine
/// pays a single branch per message.
pub trait NetHook {
    /// A message was handed to the network.
    fn on_send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
    ) {
        let _ = (now, from, to, kind, bytes);
    }

    /// A message was dropped before delivery (`reason` is never
    /// [`TraceOutcome::Delivered`]).
    fn on_drop(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        reason: TraceOutcome,
    ) {
        let _ = (now, from, to, kind, reason);
    }
}

/// Per-node flight recorder, installed with
/// [`Spawner::set_flight_hook`](crate::Spawner::set_flight_hook) (or
/// [`SimNet::set_flight_hook`] directly). Unlike [`NetHook`], which observes
/// the network as a whole, a flight hook belongs to *one node* and owns that
/// node's Lamport clock: the engine asks it to stamp every outgoing message
/// and hands it the sender's stamp on every delivery, so cross-node order is
/// recoverable without synchronized clocks.
pub trait FlightHook: Send {
    /// The node hands a message to the network. Returns the Lamport clock to
    /// carry on the message (the hook increments its counter first, so the
    /// returned stamp is strictly greater than every event recorded so far).
    fn on_send_msg(
        &mut self,
        now: SimTime,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
        correlation: Option<u64>,
    ) -> u64;

    /// A message stamped with the sender's Lamport `clock` arrived at the
    /// node. The hook merges the stamp (`counter = max(counter, clock) + 1`),
    /// so the recorded receive is ordered after the matching send.
    fn on_recv_msg(
        &mut self,
        now: SimTime,
        from: NodeId,
        kind: &'static str,
        bytes: usize,
        correlation: Option<u64>,
        clock: u64,
    );

    /// A fault-plan action touching this node was applied (kill, restart,
    /// link block/unblock), described in the substrate's own words.
    fn on_fault(&mut self, now: SimTime, action: &str);
}

impl<M: Wire> SimNet<M> {
    /// Creates a simulator over the paper-calibrated [`SwitchedLan`] with
    /// the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_link(seed, SwitchedLan::paper_testbed())
    }

    /// Creates a simulator with a custom link model.
    pub fn with_link(seed: u64, link: impl LinkModel + 'static) -> Self {
        SimNet {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            link: Box::new(link),
            metrics: Metrics::new(),
            cancelled: HashSet::new(),
            blocked: HashSet::new(),
            degraded: HashMap::new(),
            stalled_until: HashMap::new(),
            slow: HashMap::new(),
            next_timer: 0,
            event_limit: 100_000_000,
            events_processed: 0,
            trace: None,
            hook: None,
            flight: Vec::new(),
        }
    }

    /// Installs an observability hook on the message layer. With no hook
    /// installed (the default) the hot path is unchanged: one `None`
    /// branch, no allocation.
    pub fn set_net_hook(&mut self, hook: Box<dyn NetHook>) {
        self.hook = Some(hook);
    }

    /// Removes the observability hook.
    pub fn clear_net_hook(&mut self) {
        self.hook = None;
    }

    /// Installs `node`'s flight recorder. With none installed (the default)
    /// messages carry Lamport clock 0 and the hot path pays one slot lookup.
    pub fn set_flight_hook(&mut self, node: NodeId, hook: Box<dyn FlightHook + Send>) {
        let i = node.index();
        if self.flight.len() <= i {
            self.flight.resize_with(i + 1, || None);
        }
        self.flight[i] = Some(hook);
    }

    /// Adds a node running `actor`; its `on_start` hook is scheduled at the
    /// current virtual time.
    pub fn add_node(&mut self, actor: impl Actor<M> + Any) -> NodeId {
        self.add_boxed(Box::new(actor))
    }

    /// Adds an already-boxed node (the substrate-agnostic deployment path;
    /// see [`Spawner`](crate::Spawner)). [`SimNet::node`]'s downcasts still
    /// resolve to the concrete actor type inside the box.
    pub fn add_boxed(&mut self, actor: Box<dyn DynActor<M>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            actor,
            up: true,
            epoch: 0,
        });
        self.queue.push(self.clock, EventKind::Start(id));
        id
    }

    /// Number of nodes (up or down).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` is currently up.
    ///
    /// # Panics
    ///
    /// Panics for a foreign id.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.nodes[id.index()].up
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Run metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics, e.g. to [`Metrics::reset`] between phases.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Caps the total number of events processed over the life of this
    /// simulator; exceeding it panics, catching protocol livelock in tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Starts recording every message into an in-memory log (see
    /// [`SimNet::trace`]). Tracing from mid-run is fine: earlier traffic is
    /// simply absent.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The messages recorded since [`SimNet::enable_trace`], in completion
    /// order (drops appear at their send time).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Clears the trace log (keeps tracing enabled).
    pub fn clear_trace(&mut self) {
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Borrows the actor at `id`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the type the node was added with.
    pub fn node<T: Actor<M> + Any>(&self, id: NodeId) -> &T {
        self.nodes[id.index()]
            .actor
            .as_any()
            .downcast_ref::<T>()
            .expect("node downcast to wrong actor type")
    }

    /// Mutably borrows the actor at `id`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not the type the node was added with.
    pub fn node_mut<T: Actor<M> + Any>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.index()]
            .actor
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node downcast to wrong actor type")
    }

    /// Schedules every action of a [`FaultPlan`].
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        for &(at, action) in &plan.actions {
            self.queue.push(at, EventKind::Fault(action));
        }
    }

    /// Kills a node at the current time, as a crash (sugar over a
    /// one-entry plan). Named like
    /// [`ThreadNet::kill_node`](crate::threadnet::ThreadNet::kill_node)
    /// and [`TcpNet::kill_node`](crate::tcpnet::TcpNet::kill_node) so
    /// substrate-generic code reads the same everywhere.
    pub fn kill_node(&mut self, node: NodeId) {
        self.queue
            .push(self.clock, EventKind::Fault(FaultAction::Crash(node)));
    }

    /// Restarts a killed node at the current time; its `on_restart` hook
    /// fires.
    pub fn restart_node(&mut self, node: NodeId) {
        self.queue
            .push(self.clock, EventKind::Fault(FaultAction::Restart(node)));
    }

    /// Blocks all traffic between `a` and `b` (both directions) from the
    /// current time, as a partition.
    pub fn block_link(&mut self, a: NodeId, b: NodeId) {
        self.queue
            .push(self.clock, EventKind::Fault(FaultAction::Block(a, b)));
    }

    /// Unblocks traffic between `a` and `b` at the current time.
    pub fn unblock_link(&mut self, a: NodeId, b: NodeId) {
        self.queue
            .push(self.clock, EventKind::Fault(FaultAction::Unblock(a, b)));
    }

    /// Applies any single [`FaultAction`] — gray actions included — at the
    /// current time (sugar over a one-entry plan). This is the
    /// substrate-generic entry point for chaos drivers.
    pub fn apply_action(&mut self, action: FaultAction) {
        self.queue.push(self.clock, EventKind::Fault(action));
    }

    /// Delivers a message into the network "from outside" (used by test
    /// drivers); it is subject to the link model like any other message.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.process_send(from, to, msg);
    }

    /// Processes one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.event_limit,
            "event limit {} exceeded: protocol livelock?",
            self.event_limit
        );
        debug_assert!(ev.at >= self.clock, "event queue returned stale event");
        self.clock = ev.at;
        match ev.kind {
            EventKind::Start(id) => {
                if self.nodes[id.index()].up {
                    self.dispatch(id, Hook::Start);
                }
            }
            EventKind::Deliver {
                from,
                to,
                sent_at,
                clock,
                msg,
            } => {
                let up = self.nodes[to.index()].up;
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent {
                        sent_at,
                        delivered_at: up.then_some(ev.at),
                        from,
                        to,
                        kind: msg.kind(),
                        bytes: msg.wire_size(),
                        outcome: if up {
                            TraceOutcome::Delivered
                        } else {
                            TraceOutcome::DestinationDown
                        },
                    });
                }
                if up {
                    self.metrics.on_deliver();
                    if let Some(h) = self.flight.get_mut(to.index()).and_then(Option::as_mut) {
                        h.on_recv_msg(
                            ev.at,
                            from,
                            msg.kind(),
                            msg.wire_size(),
                            msg.correlation(),
                            clock,
                        );
                    }
                    self.dispatch(to, Hook::Message(from, msg));
                } else {
                    self.metrics.on_drop_down();
                }
            }
            EventKind::Timer {
                node,
                id,
                token,
                epoch,
            } => {
                if self.cancelled.remove(&id) {
                    return true;
                }
                let slot = &self.nodes[node.index()];
                if slot.up && slot.epoch == epoch {
                    self.dispatch(node, Hook::Timer(token));
                }
            }
            EventKind::Fault(action) => self.apply_fault(action),
        }
        true
    }

    /// Runs until no events remain. Returns the final virtual time.
    pub fn run_until_quiescent(&mut self) -> SimTime {
        while self.step() {}
        self.clock
    }

    /// Runs all events scheduled at or before `deadline`, then advances the
    /// clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.clock + d;
        self.run_until(deadline);
    }

    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::Crash(id) => {
                let slot = &mut self.nodes[id.index()];
                if slot.up {
                    slot.up = false;
                    slot.epoch += 1;
                    self.record_fault(id, &format!("kill {id}"));
                }
            }
            FaultAction::Restart(id) => {
                let slot = &mut self.nodes[id.index()];
                if !slot.up {
                    slot.up = true;
                    self.record_fault(id, &format!("restart {id}"));
                    self.dispatch(id, Hook::Restart);
                }
            }
            FaultAction::Block(a, b) => {
                self.blocked.insert((a, b));
                self.blocked.insert((b, a));
                self.record_fault(a, &format!("block {a} {b}"));
                self.record_fault(b, &format!("block {a} {b}"));
            }
            FaultAction::Unblock(a, b) => {
                self.blocked.remove(&(a, b));
                self.blocked.remove(&(b, a));
                self.record_fault(a, &format!("unblock {a} {b}"));
                self.record_fault(b, &format!("unblock {a} {b}"));
            }
            FaultAction::Degrade(a, b, spec) => {
                if spec.is_noop() {
                    self.degraded.remove(&(a, b));
                    self.degraded.remove(&(b, a));
                } else {
                    self.degraded.insert((a, b), spec);
                    self.degraded.insert((b, a), spec);
                }
                self.record_fault(a, &format!("degrade {a} {b}"));
                self.record_fault(b, &format!("degrade {a} {b}"));
            }
            FaultAction::Restore(a, b) => {
                self.degraded.remove(&(a, b));
                self.degraded.remove(&(b, a));
                self.record_fault(a, &format!("restore {a} {b}"));
                self.record_fault(b, &format!("restore {a} {b}"));
            }
            FaultAction::Stall(node, d) => {
                self.stalled_until.insert(node, self.clock + d);
                self.record_fault(node, &format!("stall {node}"));
            }
            FaultAction::Slow(node, f) => {
                if f <= 100 {
                    self.slow.remove(&node);
                } else {
                    self.slow.insert(node, f);
                }
                self.record_fault(node, &format!("slow {node}"));
            }
        }
    }

    fn record_fault(&mut self, node: NodeId, action: &str) {
        if let Some(h) = self.flight.get_mut(node.index()).and_then(Option::as_mut) {
            h.on_fault(self.clock, action);
        }
    }

    fn dispatch(&mut self, id: NodeId, hook: Hook<M>) {
        let mut ctx = Context {
            now: self.clock,
            id,
            next_timer: &mut self.next_timer,
            ops: Vec::new(),
            rng: &mut self.rng,
            injector: None,
        };
        let actor = &mut self.nodes[id.index()].actor;
        match hook {
            Hook::Start => actor.on_start(&mut ctx),
            Hook::Restart => actor.on_restart(&mut ctx),
            Hook::Message(from, msg) => actor.on_message(&mut ctx, from, msg),
            Hook::Timer(token) => actor.on_timer(&mut ctx, token),
        }
        let ops = ctx.ops;
        for op in ops {
            match op {
                Op::Send { to, msg } => self.process_send(id, to, msg),
                Op::SetTimer {
                    id: tid,
                    delay,
                    token,
                } => {
                    let epoch = self.nodes[id.index()].epoch;
                    self.queue.push(
                        self.clock + delay,
                        EventKind::Timer {
                            node: id,
                            id: tid,
                            token,
                            epoch,
                        },
                    );
                }
                Op::CancelTimer(tid) => {
                    self.cancelled.insert(tid);
                }
            }
        }
    }

    fn process_send(&mut self, from: NodeId, to: NodeId, msg: M) {
        let size = msg.wire_size();
        self.metrics.on_send(msg.kind(), size);
        if let Some(h) = self.hook.as_mut() {
            h.on_send(self.clock, from, to, msg.kind(), size);
        }
        let clock = match self.flight.get_mut(from.index()).and_then(Option::as_mut) {
            Some(h) => h.on_send_msg(self.clock, to, msg.kind(), size, msg.correlation()),
            None => 0,
        };
        let record_drop = |trace: &mut Option<Vec<TraceEvent>>, outcome| {
            if let Some(t) = trace {
                t.push(TraceEvent {
                    sent_at: self.clock,
                    delivered_at: None,
                    from,
                    to,
                    kind: msg.kind(),
                    bytes: size,
                    outcome,
                });
            }
        };
        if self.blocked.contains(&(from, to)) {
            record_drop(&mut self.trace, TraceOutcome::Partitioned);
            self.metrics.on_drop_partition();
            if let Some(h) = self.hook.as_mut() {
                h.on_drop(self.clock, from, to, msg.kind(), TraceOutcome::Partitioned);
            }
            return;
        }
        if self.link.is_lost(from, to, &mut self.rng) {
            record_drop(&mut self.trace, TraceOutcome::Lost);
            self.metrics.on_lost();
            if let Some(h) = self.hook.as_mut() {
                h.on_drop(self.clock, from, to, msg.kind(), TraceOutcome::Lost);
            }
            return;
        }
        // Gray degradation: chaos loss and corruption drop the message
        // here (corruption as a counted decode error, the uniform
        // observable across substrates); the latency terms stack on top of
        // whatever the link model produces below, and duplication
        // schedules a second delivery of the same stamped message.
        let mut extra_us = 0u64;
        let mut dup_extra_us = None;
        if let Some(spec) = self.degraded.get(&(from, to)).copied() {
            if spec.loss_pct > 0 && self.rng.gen_range(0..100u32) < spec.loss_pct {
                record_drop(&mut self.trace, TraceOutcome::Lost);
                self.metrics.on_lost();
                if let Some(h) = self.hook.as_mut() {
                    h.on_drop(self.clock, from, to, msg.kind(), TraceOutcome::Lost);
                }
                return;
            }
            if spec.corrupt_pct > 0 && self.rng.gen_range(0..100u32) < spec.corrupt_pct {
                record_drop(&mut self.trace, TraceOutcome::Lost);
                self.metrics.on_decode_error();
                if let Some(h) = self.hook.as_mut() {
                    h.on_drop(self.clock, from, to, msg.kind(), TraceOutcome::Lost);
                }
                self.record_fault(to, &format!("decode-error {from} {to}"));
                return;
            }
            extra_us = spec.latency.as_micros();
            if spec.jitter > SimDuration::ZERO {
                extra_us += self.rng.gen_range(0..=spec.jitter.as_micros());
            }
            if spec.reorder_pct > 0 && self.rng.gen_range(0..100u32) < spec.reorder_pct {
                // Push the message past its successors: several jitter
                // bounds, with a floor so reordering works even when the
                // spec carries no jitter.
                extra_us += (3 * spec.jitter.as_micros()).max(500);
            }
            if spec.dup_pct > 0 && self.rng.gen_range(0..100u32) < spec.dup_pct {
                dup_extra_us = Some(spec.latency.as_micros().max(200));
            }
        }
        let latency = self.link.latency(from, to, size, &mut self.rng);
        let mut total_us = latency.as_micros();
        let factor = self
            .slow
            .get(&from)
            .copied()
            .unwrap_or(100)
            .max(self.slow.get(&to).copied().unwrap_or(100));
        if factor > 100 {
            total_us = total_us * factor as u64 / 100;
        }
        total_us += extra_us;
        let mut deliver_at = self.clock + SimDuration::from_micros(total_us);
        // A stalled sender's outbound traffic arrives only after the
        // stall ends (the node is alive — it still receives — which is
        // what makes this gray rather than a crash).
        if let Some(&until) = self.stalled_until.get(&from) {
            if until > self.clock {
                deliver_at = deliver_at.max(until);
            } else {
                self.stalled_until.remove(&from);
            }
        }
        let dup = dup_extra_us.map(|d| (deliver_at + SimDuration::from_micros(d), msg.clone()));
        self.queue.push(
            deliver_at,
            EventKind::Deliver {
                from,
                to,
                sent_at: self.clock,
                clock,
                msg,
            },
        );
        if let Some((dup_at, dup_msg)) = dup {
            self.queue.push(
                dup_at,
                EventKind::Deliver {
                    from,
                    to,
                    sent_at: self.clock,
                    clock,
                    msg: dup_msg,
                },
            );
        }
    }
}

enum Hook<M> {
    Start,
    Restart,
    Message(NodeId, M),
    Timer(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::PerfectLink;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Note(&'static str),
    }

    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            64
        }
        fn kind(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "ping",
                Msg::Note(_) => "note",
            }
        }
    }

    /// Records everything it sees; echoes pings down to zero.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, Msg)>,
        started: u32,
        restarted: u32,
        timer_tokens: Vec<u64>,
    }

    impl Actor<Msg> for Recorder {
        fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.started += 1;
        }
        fn on_restart(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.restarted += 1;
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            self.seen.push((ctx.now(), msg.clone()));
            if let Msg::Ping(n) = msg {
                if n > 0 {
                    ctx.send(from, Msg::Ping(n - 1));
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, token: u64) {
            self.timer_tokens.push(token);
        }
    }

    /// Sends a configurable burst on start; arms/cancels timers.
    struct Driver {
        target: NodeId,
        pings: u32,
    }

    impl Actor<Msg> for Driver {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.target, Msg::Ping(self.pings));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                if n > 0 {
                    ctx.send(from, Msg::Ping(n - 1));
                }
            }
        }
    }

    #[test]
    fn ping_pong_counts_messages() {
        let mut net = SimNet::new(1);
        let rec = net.add_node(Recorder::default());
        let _drv = net.add_node(Driver {
            target: rec,
            pings: 5,
        });
        net.run_until_quiescent();
        // Ping(5)..Ping(0): 6 messages total
        assert_eq!(net.metrics().messages_sent(), 6);
        assert_eq!(net.metrics().messages_delivered(), 6);
        assert_eq!(net.metrics().sent_of_kind("ping"), 6);
        let rec = net.node::<Recorder>(rec);
        assert_eq!(rec.seen.len(), 3); // Ping(5), Ping(3), Ping(1)
        assert_eq!(rec.started, 1);
    }

    #[test]
    fn time_advances_monotonically_with_latency() {
        let mut net = SimNet::new(2);
        let rec = net.add_node(Recorder::default());
        let _drv = net.add_node(Driver {
            target: rec,
            pings: 4,
        });
        net.run_until_quiescent();
        let times: Vec<SimTime> = net
            .node::<Recorder>(rec)
            .seen
            .iter()
            .map(|(t, _)| *t)
            .collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut net = SimNet::new(seed);
            let rec = net.add_node(Recorder::default());
            let _ = net.add_node(Driver {
                target: rec,
                pings: 10,
            });
            net.run_until_quiescent();
            (net.now(), net.metrics().messages_sent())
        };
        assert_eq!(run(7), run(7));
        // different seed changes jitter, hence finishing time
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerUser {
            fired: Vec<u64>,
        }
        impl Actor<Msg> for TimerUser {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
                let t2 = ctx.set_timer(SimDuration::from_millis(10), 2);
                ctx.set_timer(SimDuration::from_millis(1), 3);
                ctx.cancel_timer(t2);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut net: SimNet<Msg> = SimNet::with_link(1, PerfectLink);
        let n = net.add_node(TimerUser { fired: Vec::new() });
        net.run_until_quiescent();
        assert_eq!(net.node::<TimerUser>(n).fired, vec![3, 1]);
    }

    #[test]
    fn crash_drops_messages_and_restart_resumes() {
        let mut net: SimNet<Msg> = SimNet::with_link(3, PerfectLink);
        let rec = net.add_node(Recorder::default());
        net.run_until_quiescent();

        net.kill_node(rec);
        net.run_until_quiescent();
        assert!(!net.is_up(rec));
        // messages to a down node are dropped at delivery
        net.inject(rec, rec, Msg::Note("while down"));
        net.run_until_quiescent();
        assert_eq!(net.metrics().messages_to_down_nodes(), 1);
        assert!(net.node::<Recorder>(rec).seen.is_empty());

        net.restart_node(rec);
        net.run_until_quiescent();
        assert!(net.is_up(rec));
        assert_eq!(net.node::<Recorder>(rec).restarted, 1);
        net.inject(rec, rec, Msg::Note("back"));
        net.run_until_quiescent();
        assert_eq!(net.node::<Recorder>(rec).seen.len(), 1);
    }

    #[test]
    fn timers_from_before_crash_do_not_fire_after_restart() {
        struct ArmsOnce;
        impl Actor<Msg> for ArmsOnce {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(100), 42);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        }
        // Recorder at index 0 would record timer fires; we use epoch check
        let mut net: SimNet<Msg> = SimNet::with_link(3, PerfectLink);
        let rec = net.add_node(Recorder::default());
        // manually arm a timer through dispatch: simulate by crash/restart
        // sequence around a pending timer armed in on_start of Recorder?
        // Recorder arms no timers; use a scripted plan instead:
        let mut plan = FaultPlan::new();
        plan.crash_at(rec, SimTime::from_micros(10));
        plan.restart_at(rec, SimTime::from_micros(20));
        net.apply_faults(&plan);
        // Arm a timer before the crash by dispatching an injected message
        // that sets one? Recorder doesn't set timers; inject directly:
        // (cover the epoch logic from a dedicated actor instead)
        let armed = net.add_node(ArmsOnce);
        let mut plan2 = FaultPlan::new();
        plan2.crash_at(armed, SimTime::from_micros(10));
        plan2.restart_at(armed, SimTime::from_micros(20));
        net.apply_faults(&plan2);
        net.run_until_quiescent();
        // The 100ms timer of `armed` must not fire: epoch changed.
        // (Recorder's token list is the observable for timers; ArmsOnce has
        // none, so reaching quiescence without panic is the assertion — and
        // the engine would have dispatched on a stale epoch otherwise.)
        assert!(net.is_up(armed));
        assert_eq!(net.node::<Recorder>(rec).timer_tokens, Vec::<u64>::new());
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut net: SimNet<Msg> = SimNet::with_link(5, PerfectLink);
        let a = net.add_node(Recorder::default());
        let b = net.add_node(Recorder::default());
        net.run_until_quiescent();

        let mut plan = FaultPlan::new();
        plan.block_at(a, b, SimTime::from_micros(0));
        net.apply_faults(&plan);
        net.run_until_quiescent();

        net.inject(a, b, Msg::Note("blocked"));
        net.run_until_quiescent();
        assert_eq!(net.metrics().messages_partitioned(), 1);
        assert!(net.node::<Recorder>(b).seen.is_empty());

        let mut heal = FaultPlan::new();
        heal.unblock_at(a, b, net.now());
        net.apply_faults(&heal);
        net.run_until_quiescent();
        net.inject(a, b, Msg::Note("healed"));
        net.run_until_quiescent();
        assert_eq!(net.node::<Recorder>(b).seen.len(), 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut net: SimNet<Msg> = SimNet::with_link(1, PerfectLink);
        struct Beeper;
        impl Actor<Msg> for Beeper {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: u64) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        net.add_node(Beeper);
        net.run_until(SimTime::from_micros(10_500));
        assert_eq!(net.now(), SimTime::from_micros(10_500));
        // ~10 timer firings in 10.5 ms; queue still has the next one
        net.run_for(SimDuration::from_millis(5));
        assert_eq!(net.now(), SimTime::from_micros(15_500));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        struct Flood {
            peer: Option<NodeId>,
        }
        impl Actor<Msg> for Flood {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                if let Some(p) = self.peer {
                    ctx.send(p, Msg::Ping(0));
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _: Msg) {
                ctx.send(from, Msg::Ping(0));
            }
        }
        let mut net: SimNet<Msg> = SimNet::new(1);
        let a = net.add_node(Flood { peer: None });
        let _b = net.add_node(Flood { peer: Some(a) });
        net.set_event_limit(10_000);
        net.run_until_quiescent();
    }

    #[test]
    #[should_panic(expected = "wrong actor type")]
    fn node_downcast_checks_type() {
        let mut net: SimNet<Msg> = SimNet::new(1);
        let a = net.add_node(Recorder::default());
        let _: &Driver = net.node::<Driver>(a);
    }

    #[test]
    fn tracing_records_outcomes() {
        let mut net: SimNet<Msg> = SimNet::with_link(4, PerfectLink);
        let a = net.add_node(Recorder::default());
        let b = net.add_node(Recorder::default());
        net.run_until_quiescent();
        assert!(net.trace().is_empty(), "tracing off by default");

        net.enable_trace();
        net.inject(a, b, Msg::Note("one"));
        net.run_until_quiescent();
        net.kill_node(b);
        net.run_until_quiescent();
        net.inject(a, b, Msg::Note("two"));
        net.run_until_quiescent();

        let trace = net.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].outcome, TraceOutcome::Delivered);
        assert!(trace[0].delivered_at.is_some());
        assert_eq!(trace[0].kind, "note");
        assert_eq!(trace[1].outcome, TraceOutcome::DestinationDown);
        assert_eq!(trace[1].delivered_at, None);

        net.clear_trace();
        assert!(net.trace().is_empty());
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(NodeId(4).index(), 4);
    }

    use crate::faults::DegradeSpec;

    #[test]
    fn degrade_loss_drops_every_message_until_restored() {
        let mut net: SimNet<Msg> = SimNet::with_link(9, PerfectLink);
        let a = net.add_node(Recorder::default());
        let b = net.add_node(Recorder::default());
        net.run_until_quiescent();

        net.apply_action(FaultAction::Degrade(
            a,
            b,
            DegradeSpec {
                loss_pct: 100,
                ..DegradeSpec::default()
            },
        ));
        net.run_until_quiescent();
        net.inject(a, b, Msg::Note("lost"));
        // Degrade is symmetric, like Block.
        net.inject(b, a, Msg::Note("lost back"));
        net.run_until_quiescent();
        assert_eq!(net.metrics().messages_lost(), 2);
        assert!(net.node::<Recorder>(b).seen.is_empty());
        assert!(net.node::<Recorder>(a).seen.is_empty());

        net.apply_action(FaultAction::Restore(a, b));
        net.run_until_quiescent();
        net.inject(a, b, Msg::Note("through"));
        net.run_until_quiescent();
        assert_eq!(net.node::<Recorder>(b).seen.len(), 1);
    }

    #[test]
    fn degrade_dup_delivers_twice() {
        let mut net: SimNet<Msg> = SimNet::with_link(9, PerfectLink);
        let a = net.add_node(Recorder::default());
        let b = net.add_node(Recorder::default());
        net.run_until_quiescent();
        net.apply_action(FaultAction::Degrade(
            a,
            b,
            DegradeSpec {
                dup_pct: 100,
                ..DegradeSpec::default()
            },
        ));
        net.run_until_quiescent();
        net.inject(a, b, Msg::Note("twice"));
        net.run_until_quiescent();
        assert_eq!(net.node::<Recorder>(b).seen.len(), 2);
        assert_eq!(net.metrics().messages_delivered(), 2);
    }

    #[test]
    fn degrade_corrupt_counts_decode_errors_and_drops() {
        let mut net: SimNet<Msg> = SimNet::with_link(9, PerfectLink);
        let a = net.add_node(Recorder::default());
        let b = net.add_node(Recorder::default());
        net.run_until_quiescent();
        net.apply_action(FaultAction::Degrade(
            a,
            b,
            DegradeSpec {
                corrupt_pct: 100,
                ..DegradeSpec::default()
            },
        ));
        net.run_until_quiescent();
        net.inject(a, b, Msg::Note("garbled"));
        net.run_until_quiescent();
        assert_eq!(net.metrics().decode_errors(), 1);
        assert!(net.node::<Recorder>(b).seen.is_empty());
    }

    #[test]
    fn degrade_latency_and_slow_factor_stack_on_link_model() {
        // PerfectLink delivers at +0; chaos latency and the slow factor are
        // then the only delay terms, so arrival times are exact.
        let mut net: SimNet<Msg> = SimNet::with_link(9, PerfectLink);
        let a = net.add_node(Recorder::default());
        let b = net.add_node(Recorder::default());
        net.run_until_quiescent();
        net.apply_action(FaultAction::Degrade(
            a,
            b,
            DegradeSpec {
                latency: SimDuration::from_millis(2),
                ..DegradeSpec::default()
            },
        ));
        net.run_until_quiescent();
        let t0 = net.now();
        net.inject(a, b, Msg::Note("late"));
        net.run_until_quiescent();
        let seen = &net.node::<Recorder>(b).seen;
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, t0 + SimDuration::from_millis(2));

        // Slow multiplies the link-model latency, which is zero here, so
        // verify via a degraded extra latency on a slowed *sender*: the
        // chaos extra is additive, not multiplied.
        net.apply_action(FaultAction::Slow(a, 300));
        net.run_until_quiescent();
        let t1 = net.now();
        net.inject(a, b, Msg::Note("late again"));
        net.run_until_quiescent();
        let seen = &net.node::<Recorder>(b).seen;
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[1].0, t1 + SimDuration::from_millis(2));
        // Clearing the factor keeps the engine state tidy.
        net.apply_action(FaultAction::Slow(a, 100));
        net.run_until_quiescent();
    }

    #[test]
    fn stalled_sender_holds_outbound_until_stall_ends() {
        let mut net: SimNet<Msg> = SimNet::with_link(9, PerfectLink);
        let a = net.add_node(Recorder::default());
        let b = net.add_node(Recorder::default());
        net.run_until_quiescent();
        let t0 = net.now();
        net.apply_action(FaultAction::Stall(a, SimDuration::from_millis(10)));
        net.run_until_quiescent();
        net.inject(a, b, Msg::Note("held"));
        // The stalled node still *receives* — it is slow, not dead.
        net.inject(b, a, Msg::Note("inbound ok"));
        net.run_until_quiescent();
        let b_seen = &net.node::<Recorder>(b).seen;
        assert_eq!(b_seen.len(), 1);
        assert_eq!(b_seen[0].0, t0 + SimDuration::from_millis(10));
        assert_eq!(net.node::<Recorder>(a).seen.len(), 1);
        assert!(net.node::<Recorder>(a).seen[0].0 < t0 + SimDuration::from_millis(10));
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net: SimNet<Msg> = SimNet::new(seed);
            let rec = net.add_node(Recorder::default());
            let drv = net.add_node(Driver {
                target: rec,
                pings: 30,
            });
            net.apply_action(FaultAction::Degrade(
                rec,
                drv,
                DegradeSpec {
                    latency: SimDuration::from_micros(400),
                    jitter: SimDuration::from_micros(300),
                    loss_pct: 20,
                    dup_pct: 10,
                    reorder_pct: 10,
                    corrupt_pct: 5,
                },
            ));
            net.run_until_quiescent();
            (
                net.now(),
                net.metrics().messages_delivered(),
                net.metrics().messages_lost(),
                net.metrics().decode_errors(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
