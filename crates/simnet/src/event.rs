//! The event queue: a time-ordered heap with FIFO tie-breaking.

use crate::engine::{NodeId, TimerId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::faults::FaultAction;

/// A scheduled occurrence.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Run a node's `on_start` hook.
    Start(NodeId),
    /// Deliver a message to a node.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// When the message left the sender.
        sent_at: SimTime,
        /// Lamport clock stamped by the sender's flight recorder
        /// (0 when the sender has none installed).
        clock: u64,
        /// The payload.
        msg: M,
    },
    /// Fire a timer on a node.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Which timer.
        id: TimerId,
        /// Protocol-chosen discriminator.
        token: u64,
        /// Crash epoch the timer was armed in; stale timers are ignored.
        epoch: u32,
    },
    /// Apply an injected fault.
    Fault(FaultAction),
}

pub(crate) struct Event<M> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first and
        // equal times pop in insertion (seq) order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered queue of pending events.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: u32) -> EventKind<u32> {
        EventKind::Deliver {
            from: NodeId(0),
            to: NodeId(0),
            sent_at: SimTime::ZERO,
            clock: 0,
            msg: n,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), deliver(3));
        q.push(SimTime::from_micros(10), deliver(1));
        q.push(SimTime::from_micros(20), deliver(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros())
            .collect();
        assert_eq!(order, [10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.push(t, deliver(i));
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            if let EventKind::Deliver { msg, .. } = e.kind {
                got.push(msg);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), deliver(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }
}
