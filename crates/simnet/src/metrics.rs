//! Run metrics: message/byte counters and latency histograms.

use crate::time::SimDuration;
use std::collections::BTreeMap;

/// A simple exact histogram of duration samples.
///
/// Stores every sample (experiments here are small enough), giving exact
/// percentiles for the RTT analysis.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_micros());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Some(SimDuration::from_micros((sum / self.samples.len() as u128) as u64))
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples.iter().min().map(|&s| SimDuration::from_micros(s))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples.iter().max().map(|&s| SimDuration::from_micros(s))
    }

    /// Exact percentile via nearest-rank (`p` in `[0, 100]`).
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(self.samples.len() - 1);
        Some(SimDuration::from_micros(self.samples[idx]))
    }

    /// All samples, unsorted, for external analysis.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

/// Counters accumulated by the engine over one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sent: u64,
    delivered: u64,
    dropped_lost: u64,
    dropped_down: u64,
    dropped_partition: u64,
    bytes_sent: u64,
    by_kind: BTreeMap<&'static str, u64>,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics::default()
    }

    pub(crate) fn on_send(&mut self, kind: &'static str, bytes: usize) {
        self.sent += 1;
        self.bytes_sent += bytes as u64;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    pub(crate) fn on_deliver(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn on_lost(&mut self) {
        self.dropped_lost += 1;
    }

    pub(crate) fn on_drop_down(&mut self) {
        self.dropped_down += 1;
    }

    pub(crate) fn on_drop_partition(&mut self) {
        self.dropped_partition += 1;
    }

    /// Total messages handed to the network (the paper's Figure 4 metric).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Messages that reached a live node.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by the loss model.
    pub fn messages_lost(&self) -> u64 {
        self.dropped_lost
    }

    /// Messages dropped because the destination was crashed.
    pub fn messages_to_down_nodes(&self) -> u64 {
        self.dropped_down
    }

    /// Messages dropped by a network partition.
    pub fn messages_partitioned(&self) -> u64 {
        self.dropped_partition
    }

    /// Total bytes handed to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Messages sent, broken down by [`Wire::kind`].
    ///
    /// [`Wire::kind`]: crate::Wire::kind
    pub fn sent_by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.by_kind
    }

    /// Count for one kind (0 when never seen).
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Resets all counters (used between experiment phases so setup traffic
    /// doesn't pollute measurements).
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        for us in [10u64, 20, 30, 40, 50] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(SimDuration::from_micros(30)));
        assert_eq!(h.min(), Some(SimDuration::from_micros(10)));
        assert_eq!(h.max(), Some(SimDuration::from_micros(50)));
        assert_eq!(h.percentile(50.0), Some(SimDuration::from_micros(30)));
        assert_eq!(h.percentile(100.0), Some(SimDuration::from_micros(50)));
        assert_eq!(h.percentile(0.0), Some(SimDuration::from_micros(10)));
        assert_eq!(h.percentile(90.0), Some(SimDuration::from_micros(50)));
    }

    #[test]
    fn histogram_percentile_after_more_records() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(5));
        assert_eq!(h.percentile(50.0), Some(SimDuration::from_micros(5)));
        h.record(SimDuration::from_micros(1));
        // re-sorts after new data
        assert_eq!(h.percentile(0.0), Some(SimDuration::from_micros(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_bad_percentile() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        let _ = h.percentile(101.0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut m = Metrics::new();
        m.on_send("election", 100);
        m.on_send("election", 50);
        m.on_send("heartbeat", 10);
        m.on_deliver();
        m.on_lost();
        m.on_drop_down();
        m.on_drop_partition();
        assert_eq!(m.messages_sent(), 3);
        assert_eq!(m.bytes_sent(), 160);
        assert_eq!(m.sent_of_kind("election"), 2);
        assert_eq!(m.sent_of_kind("heartbeat"), 1);
        assert_eq!(m.sent_of_kind("nope"), 0);
        assert_eq!(m.messages_delivered(), 1);
        assert_eq!(m.messages_lost(), 1);
        assert_eq!(m.messages_to_down_nodes(), 1);
        assert_eq!(m.messages_partitioned(), 1);
        m.reset();
        assert_eq!(m.messages_sent(), 0);
        assert!(m.sent_by_kind().is_empty());
    }
}
