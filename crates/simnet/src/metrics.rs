//! Run metrics: message/byte counters and latency histograms.

use crate::time::SimDuration;
use std::borrow::Cow;
use std::collections::BTreeMap;
use whisper_wire::{Decode, Encode, Reader, WireError};

/// Values below this are tracked in exact 1 µs buckets.
const LINEAR_CUTOFF: u64 = 256;
/// Sub-buckets per power of two above the linear cutoff (relative error
/// is at most `1/SUB_BUCKETS`, i.e. ≤ 1.6%).
const SUB_BUCKETS: u64 = 64;
const SUB_SHIFT: u32 = 6; // log2(SUB_BUCKETS)
const LINEAR_BITS: u32 = 8; // log2(LINEAR_CUTOFF)

/// A bounded-memory log-bucketed histogram of duration samples.
///
/// Values under 256 µs land in exact 1 µs buckets; larger values use 64
/// logarithmic sub-buckets per power of two (≤ 1.6% relative error).
/// Buckets are stored sparsely, so memory is bounded by the number of
/// *distinct* magnitudes (≤ ~3800 buckets total) instead of the number of
/// samples — an unbounded run can no longer grow a `Vec` forever. The
/// mean is exact (tracked as a running sum), and `min`/`max` are exact and
/// anchor `percentile(0)`/`percentile(100)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Maps a value to its bucket id; monotone in `value`.
fn bucket_of(value: u64) -> u32 {
    if value < LINEAR_CUTOFF {
        return value as u32;
    }
    let exp = 63 - value.leading_zeros(); // floor(log2), ≥ LINEAR_BITS
    let sub = ((value - (1u64 << exp)) >> (exp - SUB_SHIFT)) as u32;
    LINEAR_CUTOFF as u32 + (exp - LINEAR_BITS) * SUB_BUCKETS as u32 + sub
}

/// Midpoint of the bucket's value range (exact in the linear region).
fn representative(bucket: u32) -> u64 {
    if bucket < LINEAR_CUTOFF as u32 {
        return bucket as u64;
    }
    let rest = bucket - LINEAR_CUTOFF as u32;
    let exp = LINEAR_BITS + rest / SUB_BUCKETS as u32;
    let sub = (rest % SUB_BUCKETS as u32) as u64;
    let width = 1u64 << (exp - SUB_SHIFT);
    (1u64 << exp) + sub * width + width / 2
}

/// Half-open value range `[lo, hi)` covered by a bucket, in microseconds.
fn bounds(bucket: u32) -> (u64, u64) {
    if bucket < LINEAR_CUTOFF as u32 {
        return (bucket as u64, bucket as u64 + 1);
    }
    let rest = bucket - LINEAR_CUTOFF as u32;
    let exp = LINEAR_BITS + rest / SUB_BUCKETS as u32;
    let sub = (rest % SUB_BUCKETS as u32) as u64;
    let width = 1u64 << (exp - SUB_SHIFT);
    let lo = (1u64 << exp) + sub * width;
    (lo, lo + width)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        if self.count == 0 {
            self.min = us;
            self.max = us;
        } else {
            self.min = self.min.min(us);
            self.max = self.max.max(us);
        }
        self.count += 1;
        self.sum += us as u128;
        *self.buckets.entry(bucket_of(us)).or_insert(0) += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Exact sum of all samples in microseconds, saturating at `u64::MAX`
    /// (used by exporters alongside [`Histogram::bucket_counts`]).
    pub fn sum_micros(&self) -> u64 {
        u64::try_from(self.sum).unwrap_or(u64::MAX)
    }

    /// Exact arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        Some(SimDuration::from_micros(
            (self.sum / self.count as u128) as u64,
        ))
    }

    /// Smallest sample (exact).
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_micros(self.min))
    }

    /// Largest sample (exact).
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_micros(self.max))
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`).
    ///
    /// The first and last ranks return the exact `min`/`max`; interior
    /// ranks return their bucket's midpoint (exact below 256 µs, within
    /// 1.6% above), clamped to `[min, max]`. Monotone in `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return None;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return Some(SimDuration::from_micros(self.min));
        }
        if rank == self.count {
            return Some(SimDuration::from_micros(self.max));
        }
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let rep = representative(bucket).clamp(self.min, self.max);
                return Some(SimDuration::from_micros(rep));
            }
        }
        unreachable!("rank {rank} beyond recorded count {}", self.count)
    }

    /// Sparse `(bucket midpoint µs, sample count)` pairs in ascending
    /// order, for export and external analysis.
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .map(|(&b, &n)| (representative(b), n))
            .collect()
    }

    /// Sparse `(lo µs, hi µs, sample count)` triples in ascending order,
    /// where `[lo, hi)` is the half-open value range of each occupied
    /// bucket. Unlike [`Histogram::bucket_counts`] (midpoints only), this
    /// lets exporters reconstruct bucket boundaries exactly.
    pub fn bucket_ranges(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .map(|(&b, &n)| {
                let (lo, hi) = bounds(b);
                (lo, hi, n)
            })
            .collect()
    }

    /// Folds another histogram into this one.
    ///
    /// Merging is *exact* at the bucket level: because both sides use the
    /// same fixed bucket boundaries, the merged histogram is bucket-wise
    /// identical to a histogram built from the concatenated sample
    /// streams — `count`, `sum`, `min`, `max`, and every bucket count all
    /// match. This is what lets windowed aggregators combine per-interval
    /// delta histograms without losing percentile fidelity.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }

    /// The samples recorded since `earlier` was cloned from this same
    /// histogram, as a standalone histogram (bucket-wise subtraction).
    ///
    /// `count`, `sum`, and bucket counts are exact. `min`/`max` of the
    /// delta are exact when the new samples extended the overall range;
    /// otherwise they are approximated from the first/last occupied delta
    /// bucket (exact below 256 µs, within 1.6% above), which is the same
    /// fidelity every interior percentile already has.
    pub fn since(&self, earlier: &Histogram) -> Histogram {
        if earlier.count == 0 {
            return self.clone();
        }
        let mut buckets = BTreeMap::new();
        for (&b, &n) in &self.buckets {
            let delta = n.saturating_sub(earlier.buckets.get(&b).copied().unwrap_or(0));
            if delta > 0 {
                buckets.insert(b, delta);
            }
        }
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 || buckets.is_empty() {
            return Histogram::new();
        }
        let first = *buckets.keys().next().expect("non-empty");
        let last = *buckets.keys().next_back().expect("non-empty");
        let min = if self.min < earlier.min {
            self.min
        } else {
            representative(first).max(self.min)
        };
        let max = if self.max > earlier.max {
            self.max
        } else {
            representative(last).min(self.max)
        };
        Histogram {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }
}

impl Encode for Histogram {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.count.encode_into(out);
        // u128 sum travels as two u64 halves (low, high).
        (self.sum as u64).encode_into(out);
        ((self.sum >> 64) as u64).encode_into(out);
        self.min.encode_into(out);
        self.max.encode_into(out);
        let pairs: Vec<(u32, u64)> = self.buckets.iter().map(|(&b, &n)| (b, n)).collect();
        pairs.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        let pairs: Vec<(u32, u64)> = self.buckets.iter().map(|(&b, &n)| (b, n)).collect();
        self.count.encoded_len()
            + (self.sum as u64).encoded_len()
            + ((self.sum >> 64) as u64).encoded_len()
            + self.min.encoded_len()
            + self.max.encoded_len()
            + pairs.encoded_len()
    }
}

impl Decode for Histogram {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let count = u64::decode_from(r)?;
        let lo = u64::decode_from(r)?;
        let hi = u64::decode_from(r)?;
        let min = u64::decode_from(r)?;
        let max = u64::decode_from(r)?;
        let pairs: Vec<(u32, u64)> = Vec::decode_from(r)?;
        let mut buckets = BTreeMap::new();
        for (b, n) in pairs {
            if buckets.insert(b, n).is_some() {
                return Err(WireError::Invalid(format!("duplicate bucket {b}")));
            }
        }
        Ok(Histogram {
            buckets,
            count,
            sum: (lo as u128) | ((hi as u128) << 64),
            min,
            max,
        })
    }
}

/// Counters accumulated by the engine over one run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sent: u64,
    delivered: u64,
    dropped_lost: u64,
    dropped_down: u64,
    dropped_partition: u64,
    bytes_sent: u64,
    batch_flushes: u64,
    frames_coalesced: u64,
    backpressure_waits: u64,
    decode_errors: u64,
    by_kind: BTreeMap<Cow<'static, str>, u64>,
}

impl Metrics {
    /// Creates a zeroed counter set. Public so actors can keep a private
    /// per-node tally (e.g. for introspection snapshots) with the same
    /// accounting rules as the engine-level registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Counts one outgoing message of `kind` carrying `bytes` bytes.
    pub fn on_send(&mut self, kind: impl Into<Cow<'static, str>>, bytes: usize) {
        self.sent += 1;
        self.bytes_sent += bytes as u64;
        *self.by_kind.entry(kind.into()).or_insert(0) += 1;
    }

    /// Counts one message that reached a live node.
    pub fn on_deliver(&mut self) {
        self.delivered += 1;
    }

    pub(crate) fn on_lost(&mut self) {
        self.dropped_lost += 1;
    }

    pub(crate) fn on_drop_down(&mut self) {
        self.dropped_down += 1;
    }

    pub(crate) fn on_drop_partition(&mut self) {
        self.dropped_partition += 1;
    }

    /// Counts one vectored flush that drained `frames` queued frames in a
    /// single write (the TCP transport's flat-combining path).
    pub(crate) fn on_batch_flush(&mut self, frames: usize) {
        self.batch_flushes += 1;
        self.frames_coalesced += frames as u64;
    }

    /// Counts one sender that found the link queue full and had to wait
    /// for the writer (backpressure, not loss).
    pub(crate) fn on_backpressure_wait(&mut self) {
        self.backpressure_waits += 1;
    }

    /// Counts one frame that arrived but failed to decode (corruption on
    /// the wire, injected or real). The message is lost but the link and
    /// the node survive; this counter is what makes that gray failure
    /// observable.
    pub(crate) fn on_decode_error(&mut self) {
        self.decode_errors += 1;
    }

    /// Total messages handed to the network (the paper's Figure 4 metric).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Messages that reached a live node.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by the loss model.
    pub fn messages_lost(&self) -> u64 {
        self.dropped_lost
    }

    /// Messages dropped because the destination was crashed.
    pub fn messages_to_down_nodes(&self) -> u64 {
        self.dropped_down
    }

    /// Messages dropped by a network partition.
    pub fn messages_partitioned(&self) -> u64 {
        self.dropped_partition
    }

    /// Total bytes handed to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Vectored flushes that drained a link's outbound queue.
    pub fn batch_flushes(&self) -> u64 {
        self.batch_flushes
    }

    /// Frames written through queue drains (coalesced into batched
    /// writes rather than one syscall each).
    pub fn frames_coalesced(&self) -> u64 {
        self.frames_coalesced
    }

    /// Senders that blocked on a full link queue (backpressure events).
    pub fn backpressure_waits(&self) -> u64 {
        self.backpressure_waits
    }

    /// Frames that arrived but failed to decode (corrupted on the wire).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Messages sent, broken down by [`Wire::kind`]. Keys are `Cow` so
    /// dynamically-named kinds can be counted alongside static ones.
    ///
    /// [`Wire::kind`]: crate::Wire::kind
    pub fn sent_by_kind(&self) -> &BTreeMap<Cow<'static, str>, u64> {
        &self.by_kind
    }

    /// Count for one kind (0 when never seen).
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Resets all counters (used between experiment phases so setup traffic
    /// doesn't pollute measurements).
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// A plain-data copy of the counters, detached from the live registry.
    ///
    /// This is what introspection planes should ship over the wire: it is
    /// `Encode`/`Decode`, owns its strings, and taking one does not hold the
    /// registry lock any longer than a field-by-field copy.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent,
            delivered: self.delivered,
            lost: self.dropped_lost,
            to_down: self.dropped_down,
            partitioned: self.dropped_partition,
            bytes_sent: self.bytes_sent,
            batch_flushes: self.batch_flushes,
            frames_coalesced: self.frames_coalesced,
            backpressure_waits: self.backpressure_waits,
            decode_errors: self.decode_errors,
            by_kind: self
                .by_kind
                .iter()
                .map(|(k, &n)| (k.clone().into_owned(), n))
                .collect(),
        }
    }
}

/// A detached, wire-encodable copy of [`Metrics`] counters.
///
/// Field order in `by_kind` is ascending by kind name (inherited from the
/// registry's `BTreeMap`), which keeps the encoding canonical: two snapshots
/// of equal counters encode to identical bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages that reached a live node.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub lost: u64,
    /// Messages dropped because the destination was crashed.
    pub to_down: u64,
    /// Messages dropped by a network partition.
    pub partitioned: u64,
    /// Total bytes handed to the network.
    pub bytes_sent: u64,
    /// Vectored flushes that drained a link's outbound queue.
    pub batch_flushes: u64,
    /// Frames written through queue drains instead of per-frame writes.
    pub frames_coalesced: u64,
    /// Senders that blocked on a full link queue (backpressure events).
    pub backpressure_waits: u64,
    /// Frames that arrived but failed to decode (corrupted on the wire).
    pub decode_errors: u64,
    /// Per-kind send counts, ascending by kind name.
    pub by_kind: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Total messages handed to the network.
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Messages that reached a live node.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Total bytes handed to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Count for one kind (0 when never seen).
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.by_kind
            .iter()
            .find(|(k, _)| k == kind)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

impl Encode for MetricsSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.sent.encode_into(out);
        self.delivered.encode_into(out);
        self.lost.encode_into(out);
        self.to_down.encode_into(out);
        self.partitioned.encode_into(out);
        self.bytes_sent.encode_into(out);
        self.batch_flushes.encode_into(out);
        self.frames_coalesced.encode_into(out);
        self.backpressure_waits.encode_into(out);
        self.decode_errors.encode_into(out);
        self.by_kind.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.sent.encoded_len()
            + self.delivered.encoded_len()
            + self.lost.encoded_len()
            + self.to_down.encoded_len()
            + self.partitioned.encoded_len()
            + self.bytes_sent.encoded_len()
            + self.batch_flushes.encoded_len()
            + self.frames_coalesced.encoded_len()
            + self.backpressure_waits.encoded_len()
            + self.decode_errors.encoded_len()
            + self.by_kind.encoded_len()
    }
}

impl Decode for MetricsSnapshot {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MetricsSnapshot {
            sent: u64::decode_from(r)?,
            delivered: u64::decode_from(r)?,
            lost: u64::decode_from(r)?,
            to_down: u64::decode_from(r)?,
            partitioned: u64::decode_from(r)?,
            bytes_sent: u64::decode_from(r)?,
            batch_flushes: u64::decode_from(r)?,
            frames_coalesced: u64::decode_from(r)?,
            backpressure_waits: u64::decode_from(r)?,
            decode_errors: u64::decode_from(r)?,
            by_kind: Vec::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        for us in [10u64, 20, 30, 40, 50] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(SimDuration::from_micros(30)));
        assert_eq!(h.min(), Some(SimDuration::from_micros(10)));
        assert_eq!(h.max(), Some(SimDuration::from_micros(50)));
        assert_eq!(h.percentile(50.0), Some(SimDuration::from_micros(30)));
        assert_eq!(h.percentile(100.0), Some(SimDuration::from_micros(50)));
        assert_eq!(h.percentile(0.0), Some(SimDuration::from_micros(10)));
        assert_eq!(h.percentile(90.0), Some(SimDuration::from_micros(50)));
    }

    #[test]
    fn histogram_percentile_after_more_records() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(5));
        assert_eq!(h.percentile(50.0), Some(SimDuration::from_micros(5)));
        h.record(SimDuration::from_micros(1));
        assert_eq!(h.percentile(0.0), Some(SimDuration::from_micros(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_bad_percentile() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        let _ = h.percentile(101.0);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_bounded_error() {
        let mut prev_bucket = 0;
        for v in (0..LINEAR_CUTOFF).chain((8..40).flat_map(|e| {
            let base = 1u64 << e;
            [
                base,
                base + 1,
                base + base / 3,
                base + base / 2,
                2 * base - 1,
            ]
        })) {
            let b = bucket_of(v);
            assert!(b >= prev_bucket, "bucket_of must be monotone at {v}");
            prev_bucket = b;
            let rep = representative(b);
            if v < LINEAR_CUTOFF {
                assert_eq!(rep, v, "linear region must be exact");
            } else {
                let err = rep.abs_diff(v) as f64 / v as f64;
                assert!(err <= 1.0 / SUB_BUCKETS as f64, "err {err} at {v}");
            }
        }
    }

    #[test]
    fn histogram_memory_is_bounded() {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(SimDuration::from_micros(i % 10_000));
        }
        assert_eq!(h.count(), 100_000);
        assert!(h.buckets.len() < 1000, "buckets: {}", h.buckets.len());
    }

    #[test]
    fn percentiles_track_large_values_approximately() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us * 1000)); // 1ms .. 1s
        }
        let p50 = h.percentile(50.0).unwrap().as_micros();
        assert!((490_000..=510_000).contains(&p50), "p50={p50}");
        assert_eq!(h.percentile(100.0).unwrap().as_micros(), 1_000_000);
        assert_eq!(h.percentile(0.0).unwrap().as_micros(), 1000);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut m = Metrics::new();
        m.on_send("election", 100);
        m.on_send("election", 50);
        m.on_send("heartbeat", 10);
        m.on_deliver();
        m.on_lost();
        m.on_drop_down();
        m.on_drop_partition();
        m.on_batch_flush(8);
        m.on_batch_flush(1);
        m.on_backpressure_wait();
        m.on_decode_error();
        m.on_decode_error();
        assert_eq!(m.messages_sent(), 3);
        assert_eq!(m.bytes_sent(), 160);
        assert_eq!(m.batch_flushes(), 2);
        assert_eq!(m.frames_coalesced(), 9);
        assert_eq!(m.backpressure_waits(), 1);
        assert_eq!(m.decode_errors(), 2);
        let snap = m.snapshot();
        assert_eq!(snap.batch_flushes, 2);
        assert_eq!(snap.frames_coalesced, 9);
        assert_eq!(snap.backpressure_waits, 1);
        assert_eq!(snap.decode_errors, 2);
        assert_eq!(MetricsSnapshot::decode(&snap.encode()).unwrap(), snap);
        assert_eq!(m.sent_of_kind("election"), 2);
        assert_eq!(m.sent_of_kind("heartbeat"), 1);
        assert_eq!(m.sent_of_kind("nope"), 0);
        assert_eq!(m.messages_delivered(), 1);
        assert_eq!(m.messages_lost(), 1);
        assert_eq!(m.messages_to_down_nodes(), 1);
        assert_eq!(m.messages_partitioned(), 1);
        m.reset();
        assert_eq!(m.messages_sent(), 0);
        assert!(m.sent_by_kind().is_empty());
    }

    #[test]
    fn dynamic_kind_names_are_counted() {
        let mut m = Metrics::new();
        m.on_send(format!("shard-{}", 3), 8);
        m.on_send("shard-3", 8);
        assert_eq!(m.sent_of_kind("shard-3"), 2);
    }

    fn hist_of(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &us in samples {
            h.record(SimDuration::from_micros(us));
        }
        h
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let h = hist_of(&[3, 700, 90_000]);
        let mut merged = h.clone();
        merged.merge(&Histogram::new());
        assert_eq!(merged, h);
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty, h);
    }

    #[test]
    fn histogram_codec_round_trips() {
        for samples in [&[][..], &[0][..], &[5, 5, 1000, u64::MAX / 2][..]] {
            let h = hist_of(samples);
            let bytes = h.encode();
            assert_eq!(bytes.len(), h.encoded_len());
            assert_eq!(Histogram::decode(&bytes).unwrap(), h);
        }
    }

    #[test]
    fn histogram_codec_rejects_duplicate_buckets() {
        let mut h = hist_of(&[7]);
        h.buckets = BTreeMap::from([(7, 1)]);
        let mut bytes = h.encode();
        // Re-encode with the bucket pair listed twice.
        let pairs: Vec<(u32, u64)> = vec![(7, 1), (7, 1)];
        bytes.truncate(bytes.len() - vec![(7u32, 1u64)].encoded_len());
        pairs.encode_into(&mut bytes);
        assert!(matches!(
            Histogram::decode(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn since_returns_the_suffix_of_samples() {
        let mut h = hist_of(&[10, 500, 90_000]);
        let baseline = h.clone();
        h.record(SimDuration::from_micros(40));
        h.record(SimDuration::from_micros(2_000_000));
        let delta = h.since(&baseline);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum_micros(), 2_000_040);
        // 40 µs extended neither end, but sits in the exact linear region.
        assert_eq!(delta.min(), Some(SimDuration::from_micros(40)));
        // 2 s extended the max, so it is exact.
        assert_eq!(delta.max(), Some(SimDuration::from_micros(2_000_000)));
        assert_eq!(h.since(&h), Histogram::new());
        assert_eq!(h.since(&Histogram::new()), h);
    }

    proptest::proptest! {
        /// Satellite: merging two histograms is bucket-wise identical to a
        /// histogram of the concatenated sample streams.
        #[test]
        fn merge_equals_histogram_of_concatenated_samples(
            a in proptest::collection::vec(0u64..20_000_000, 0..200),
            b in proptest::collection::vec(0u64..20_000_000, 0..200),
        ) {
            let mut merged = hist_of(&a);
            merged.merge(&hist_of(&b));
            let concatenated: Vec<u64> = a.iter().chain(&b).copied().collect();
            proptest::prop_assert_eq!(merged, hist_of(&concatenated));
        }

        #[test]
        fn histogram_codec_round_trips_any_samples(
            samples in proptest::collection::vec(0u64..20_000_000, 0..200),
        ) {
            let h = hist_of(&samples);
            let bytes = h.encode();
            proptest::prop_assert_eq!(bytes.len(), h.encoded_len());
            proptest::prop_assert_eq!(Histogram::decode(&bytes).unwrap(), h);
        }
    }
}
