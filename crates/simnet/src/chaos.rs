//! Gray-failure injection state shared by the live substrates.
//!
//! [`SimNet`](crate::SimNet) implements chaos natively inside its event
//! queue; threadnet and tcpnet instead consult a [`ChaosState`] on every
//! outbound message and, when a decision calls for delay or duplication,
//! hand the delivery to a [`DelayPump`] thread that re-injects it when due.
//!
//! The hot path is engineered around a single atomic load: while no gray
//! action is active, `decide` returns [`ChaosDecision::Clean`] without
//! touching any lock, so the idle-path cost on `tcpnet_request_cycle` is
//! one relaxed atomic read.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::faults::{DegradeSpec, FaultAction};

/// Per-message slowdown charged to a `Slow` node, per hundredth of factor
/// above 1.00×: factor 200 (2.00×) holds each outbound message for 1 ms.
const SLOW_STEP_US: u64 = 10;

/// What the chaos plane wants done with one outbound message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChaosDecision {
    /// No active chaos touches this link; send immediately.
    Clean,
    /// Deliver after `delay` (possibly zero), optionally a second time.
    Deliver {
        /// Hold the message this long before handing it to the transport.
        delay: Duration,
        /// Deliver a second copy (after a further beat) as well.
        duplicate: bool,
    },
    /// Drop the message and count it as chaos loss.
    Drop,
    /// Corrupt the message in transit. tcpnet flips bits in the encoded
    /// frame so the receiver sees a real decode error; threadnet (no
    /// byte stage) drops the message and counts a decode error directly.
    Corrupt,
}

/// Shared gray-failure state for a live substrate.
///
/// One instance per network; outbound transports call [`decide`] per
/// message, fault controllers call [`apply`] when the driver fires a gray
/// action.
///
/// [`decide`]: ChaosState::decide
/// [`apply`]: ChaosState::apply
pub(crate) struct ChaosState {
    /// Count of active gray entries across all three maps. Zero means the
    /// fast path can skip every lock.
    active: AtomicUsize,
    degraded: Mutex<HashMap<(u32, u32), DegradeSpec>>,
    stalled_until: Mutex<HashMap<u32, Instant>>,
    slow: Mutex<HashMap<u32, u32>>,
    rng: Mutex<SmallRng>,
}

impl ChaosState {
    pub(crate) fn new(seed: u64) -> Self {
        ChaosState {
            active: AtomicUsize::new(0),
            degraded: Mutex::new(HashMap::new()),
            stalled_until: Mutex::new(HashMap::new()),
            slow: Mutex::new(HashMap::new()),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Apply a gray action. Binary actions are ignored (the substrate's
    /// own fault controller handles those).
    pub(crate) fn apply(&self, action: FaultAction) {
        match action {
            FaultAction::Degrade(a, b, spec) => {
                let mut map = self.degraded.lock().unwrap();
                if spec.is_noop() {
                    map.remove(&(a.index() as u32, b.index() as u32));
                    map.remove(&(b.index() as u32, a.index() as u32));
                } else {
                    map.insert((a.index() as u32, b.index() as u32), spec);
                    map.insert((b.index() as u32, a.index() as u32), spec);
                }
                let n = map.len();
                drop(map);
                self.recount(n, 0);
            }
            FaultAction::Restore(a, b) => {
                let mut map = self.degraded.lock().unwrap();
                map.remove(&(a.index() as u32, b.index() as u32));
                map.remove(&(b.index() as u32, a.index() as u32));
                let n = map.len();
                drop(map);
                self.recount(n, 0);
            }
            FaultAction::Stall(node, d) => {
                let until = Instant::now() + Duration::from_micros(d.as_micros());
                self.stalled_until
                    .lock()
                    .unwrap()
                    .insert(node.index() as u32, until);
                // Stalls expire lazily in `decide`; the entry itself keeps
                // the slow path armed until then.
                self.active.fetch_add(1, Ordering::Release);
            }
            FaultAction::Slow(node, factor) => {
                let mut map = self.slow.lock().unwrap();
                if factor <= 100 {
                    map.remove(&(node.index() as u32));
                } else {
                    map.insert(node.index() as u32, factor);
                }
                let n = map.len();
                drop(map);
                self.recount(n, 1);
            }
            _ => {}
        }
    }

    /// Recompute `active` as degraded + stalled + slow entry counts, given
    /// the fresh size of one map (`which`: 0 = degraded, 1 = slow).
    fn recount(&self, fresh: usize, which: u8) {
        let degraded = if which == 0 {
            fresh
        } else {
            self.degraded.lock().unwrap().len()
        };
        let slow = if which == 1 {
            fresh
        } else {
            self.slow.lock().unwrap().len()
        };
        let stalled = self.stalled_until.lock().unwrap().len();
        self.active
            .store(degraded + slow + stalled, Ordering::Release);
    }

    /// Decide the fate of one outbound message `from -> to`.
    pub(crate) fn decide(&self, from: u32, to: u32) -> ChaosDecision {
        if self.active.load(Ordering::Acquire) == 0 {
            return ChaosDecision::Clean;
        }
        let mut delay_us = 0u64;
        let mut duplicate = false;
        if let Some(spec) = self.degraded.lock().unwrap().get(&(from, to)).copied() {
            let mut rng = self.rng.lock().unwrap();
            if spec.loss_pct > 0 && rng.gen_range(0..100u32) < spec.loss_pct {
                return ChaosDecision::Drop;
            }
            if spec.corrupt_pct > 0 && rng.gen_range(0..100u32) < spec.corrupt_pct {
                return ChaosDecision::Corrupt;
            }
            delay_us = spec.latency.as_micros();
            if spec.jitter > crate::SimDuration::ZERO {
                delay_us += rng.gen_range(0..=spec.jitter.as_micros());
            }
            if spec.reorder_pct > 0 && rng.gen_range(0..100u32) < spec.reorder_pct {
                delay_us += (3 * spec.jitter.as_micros()).max(500);
            }
            if spec.dup_pct > 0 && rng.gen_range(0..100u32) < spec.dup_pct {
                duplicate = true;
            }
        }
        {
            let slow = self.slow.lock().unwrap();
            let factor = slow
                .get(&from)
                .copied()
                .unwrap_or(100)
                .max(slow.get(&to).copied().unwrap_or(100));
            if factor > 100 {
                delay_us += (factor as u64 - 100) * SLOW_STEP_US;
            }
        }
        {
            let mut stalled = self.stalled_until.lock().unwrap();
            if let Some(&until) = stalled.get(&from) {
                let now = Instant::now();
                if until > now {
                    let remaining = until.duration_since(now).as_micros() as u64;
                    delay_us = delay_us.max(remaining);
                } else {
                    stalled.remove(&from);
                    drop(stalled);
                    self.active.fetch_sub(1, Ordering::Release);
                }
            }
        }
        if delay_us == 0 && !duplicate {
            ChaosDecision::Clean
        } else {
            ChaosDecision::Deliver {
                delay: Duration::from_micros(delay_us),
                duplicate,
            }
        }
    }
}

struct PumpEntry {
    due: Instant,
    seq: u64,
    deliver: Box<dyn FnOnce() + Send>,
}

impl PartialEq for PumpEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for PumpEntry {}
impl PartialOrd for PumpEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PumpEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: BinaryHeap is a max-heap, we want earliest-due first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A single thread that holds delayed deliveries and fires them when due.
///
/// Transports enqueue `(delay, closure)` pairs; the pump sleeps until the
/// earliest deadline and runs the closure (typically a re-send through the
/// normal outbound path with chaos disabled for that hop). Dropping the
/// sender side shuts the pump down; pending deliveries are discarded,
/// which is the right semantic during network shutdown.
pub(crate) struct DelayPump {
    tx: Mutex<Option<Sender<PumpEntry>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl DelayPump {
    pub(crate) fn start() -> Arc<Self> {
        let (tx, rx) = channel::<PumpEntry>();
        let handle = std::thread::Builder::new()
            .name("whisper-chaos-pump".into())
            .spawn(move || {
                let mut heap: BinaryHeap<PumpEntry> = BinaryHeap::new();
                loop {
                    let timeout = match heap.peek() {
                        Some(next) => next.due.saturating_duration_since(Instant::now()),
                        None => Duration::from_millis(200),
                    };
                    if timeout.is_zero() {
                        if let Some(entry) = heap.pop() {
                            (entry.deliver)();
                        }
                        continue;
                    }
                    match rx.recv_timeout(timeout) {
                        Ok(entry) => heap.push(entry),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn chaos pump");
        Arc::new(DelayPump {
            tx: Mutex::new(Some(tx)),
            handle: Mutex::new(Some(handle)),
        })
    }

    /// Schedule `deliver` to run after `delay`. Falls back to running it
    /// inline if the pump has already shut down.
    pub(crate) fn after(&self, delay: Duration, seq: u64, deliver: Box<dyn FnOnce() + Send>) {
        let entry = PumpEntry {
            due: Instant::now() + delay,
            seq,
            deliver,
        };
        let guard = self.tx.lock().unwrap();
        match guard.as_ref() {
            Some(tx) => {
                if let Err(e) = tx.send(entry) {
                    drop(guard);
                    (e.0.deliver)();
                }
            }
            None => {
                drop(guard);
                (entry.deliver)();
            }
        }
    }

    /// Stop the pump thread, discarding pending deliveries.
    pub(crate) fn shutdown(&self) {
        let tx = self.tx.lock().unwrap().take();
        drop(tx);
        if let Some(handle) = self.handle.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DegradeSpec;
    use crate::{NodeId, SimDuration};
    use std::sync::atomic::AtomicU32;

    fn node(i: u32) -> NodeId {
        NodeId::from_index(i as usize)
    }

    #[test]
    fn clean_until_armed_then_clean_after_restore() {
        let chaos = ChaosState::new(7);
        assert_eq!(chaos.decide(0, 1), ChaosDecision::Clean);
        chaos.apply(FaultAction::Degrade(
            node(0),
            node(1),
            DegradeSpec {
                loss_pct: 100,
                ..DegradeSpec::default()
            },
        ));
        assert_eq!(chaos.decide(0, 1), ChaosDecision::Drop);
        // Symmetric, like Block.
        assert_eq!(chaos.decide(1, 0), ChaosDecision::Drop);
        // Unrelated link unaffected.
        assert_eq!(chaos.decide(0, 2), ChaosDecision::Clean);
        chaos.apply(FaultAction::Restore(node(0), node(1)));
        assert_eq!(chaos.decide(0, 1), ChaosDecision::Clean);
        assert_eq!(chaos.active.load(Ordering::Acquire), 0);
    }

    #[test]
    fn corrupt_and_dup_and_delay_decisions() {
        let chaos = ChaosState::new(7);
        chaos.apply(FaultAction::Degrade(
            node(0),
            node(1),
            DegradeSpec {
                corrupt_pct: 100,
                ..DegradeSpec::default()
            },
        ));
        assert_eq!(chaos.decide(0, 1), ChaosDecision::Corrupt);
        chaos.apply(FaultAction::Degrade(
            node(0),
            node(1),
            DegradeSpec {
                latency: SimDuration::from_micros(300),
                dup_pct: 100,
                ..DegradeSpec::default()
            },
        ));
        match chaos.decide(0, 1) {
            ChaosDecision::Deliver { delay, duplicate } => {
                assert_eq!(delay, Duration::from_micros(300));
                assert!(duplicate);
            }
            other => panic!("expected delayed duplicate, got {other:?}"),
        }
    }

    #[test]
    fn slow_node_charges_per_message_delay() {
        let chaos = ChaosState::new(7);
        chaos.apply(FaultAction::Slow(node(2), 300));
        match chaos.decide(2, 0) {
            ChaosDecision::Deliver { delay, duplicate } => {
                assert_eq!(delay, Duration::from_micros(200 * SLOW_STEP_US));
                assert!(!duplicate);
            }
            other => panic!("expected slowed delivery, got {other:?}"),
        }
        // Inbound to the slow node is slowed too (its receive path is
        // starved just like its send path).
        assert!(matches!(chaos.decide(0, 2), ChaosDecision::Deliver { .. }));
        chaos.apply(FaultAction::Slow(node(2), 100));
        assert_eq!(chaos.decide(2, 0), ChaosDecision::Clean);
    }

    #[test]
    fn stall_expires_lazily() {
        let chaos = ChaosState::new(7);
        chaos.apply(FaultAction::Stall(node(1), SimDuration::from_millis(5)));
        match chaos.decide(1, 0) {
            ChaosDecision::Deliver { delay, .. } => {
                assert!(delay > Duration::ZERO && delay <= Duration::from_millis(5));
            }
            other => panic!("expected stalled delivery, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(6));
        assert_eq!(chaos.decide(1, 0), ChaosDecision::Clean);
        assert_eq!(chaos.active.load(Ordering::Acquire), 0);
    }

    #[test]
    fn pump_fires_in_due_order_and_survives_shutdown() {
        let pump = DelayPump::start();
        let fired = Arc::new(AtomicU32::new(0));
        let f1 = fired.clone();
        let f2 = fired.clone();
        pump.after(
            Duration::from_millis(20),
            1,
            Box::new(move || {
                f1.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst)
                    .unwrap();
            }),
        );
        pump.after(
            Duration::from_millis(2),
            2,
            Box::new(move || {
                f2.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .unwrap();
            }),
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while fired.load(Ordering::SeqCst) != 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        pump.shutdown();
        // After shutdown, deliveries run inline rather than being lost.
        let f3 = fired.clone();
        pump.after(
            Duration::from_millis(1),
            3,
            Box::new(move || {
                f3.store(10, Ordering::SeqCst);
            }),
        );
        assert_eq!(fired.load(Ordering::SeqCst), 10);
    }
}
