//! # whisper-simnet
//!
//! A deterministic discrete-event network simulator, plus a real-time
//! threaded transport, for the Whisper protocol stack.
//!
//! The paper benchmarks Whisper on nine LAN-connected PCs. This crate
//! substitutes a calibrated simulation: protocol logic is written against the
//! [`Actor`] trait and scheduled by [`SimNet`], which models per-link
//! propagation delay, serialization (bandwidth) delay, jitter and loss, and
//! injects crash/restart/partition faults. Every run is reproducible from a
//! seed, which makes message-count experiments (the paper's Figure 4) exact.
//!
//! The same actors can be run over OS threads and real channels with
//! [`threadnet::ThreadNet`] to obtain wall-clock numbers for Criterion
//! benches, or over real TCP loopback sockets with [`tcpnet::TcpNet`],
//! where every inter-node message is encoded to bytes
//! (`whisper-wire`), framed, and parsed back on the receiving side.
//!
//! # Examples
//!
//! A two-node ping/pong:
//!
//! ```
//! use whisper_simnet::{Actor, Context, NodeId, SimDuration, SimNet, Wire};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Wire for Ping {
//!     fn wire_size(&self) -> usize { 64 }
//!     fn kind(&self) -> &'static str { "ping" }
//! }
//!
//! struct Echo;
//! impl Actor<Ping> for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
//!         if msg.0 < 3 { ctx.send(from, Ping(msg.0 + 1)); }
//!     }
//! }
//!
//! struct Starter { peer: NodeId }
//! impl Actor<Ping> for Starter {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         ctx.send(self.peer, Ping(0));
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
//!         if msg.0 < 3 { ctx.send(from, Ping(msg.0 + 1)); }
//!     }
//! }
//!
//! let mut net = SimNet::new(42);
//! let echo = net.add_node(Echo);
//! let _starter = net.add_node(Starter { peer: echo });
//! net.run_until_quiescent();
//! assert_eq!(net.metrics().messages_sent(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod engine;
mod event;
mod faults;
mod link;
mod metrics;
mod substrate;
pub mod tcpnet;
pub mod threadnet;
mod time;

pub use engine::{
    Actor, Context, DynActor, FlightHook, NetHook, NodeId, SelfInjector, SimNet, TimerId,
    TraceEvent, TraceOutcome,
};
pub use faults::{DegradeSpec, FaultAction, FaultPlan};
pub use link::{LinkModel, PerfectLink, SwitchedLan};
pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use substrate::{Spawner, Substrate};
pub use time::{SimDuration, SimTime};

/// A message type that can travel over the simulated (or threaded) network.
///
/// `wire_size` feeds the bandwidth model; `kind` labels the message for the
/// per-kind counters that experiments report.
pub trait Wire: Clone + std::fmt::Debug + Send + 'static {
    /// Serialized size in bytes; it drives the serialization-delay term of
    /// the link model and the byte counters in [`Metrics`].
    ///
    /// Whisper message types implement this as exactly
    /// `whisper_wire::Encode::encode(self).len()`, so the simulator's byte
    /// accounting matches what the TCP transport actually puts on a socket.
    fn wire_size(&self) -> usize;

    /// A short static label for metrics, e.g. `"election"`, `"heartbeat"`.
    fn kind(&self) -> &'static str {
        "message"
    }

    /// Whether this message is best-effort telemetry (e.g. a pulse report).
    /// Transports may shed such messages rather than let them head-of-line
    /// block protocol traffic: the TCP runtime drops a telemetry frame
    /// instead of waiting on a contended link, counting it as lost.
    fn is_telemetry(&self) -> bool {
        false
    }

    /// The request/correlation id this message carries, if any. Substrates
    /// pass it to the per-node [`FlightHook`], so the flight recorder can
    /// stitch message-level evidence back to end-to-end requests without
    /// knowing the concrete message type.
    fn correlation(&self) -> Option<u64> {
        None
    }
}
