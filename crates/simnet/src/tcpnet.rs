//! Real TCP loopback transport for the same [`Actor`] objects.
//!
//! [`TcpNet`] runs each actor on its own thread exactly like
//! [`ThreadNet`](crate::threadnet::ThreadNet) — same node loop, same
//! timers — but every inter-node message crosses a real TCP socket on
//! `127.0.0.1`: the sender encodes to bytes with
//! [`whisper_wire::Encode`], writes a length-prefixed frame, and a
//! per-link reader thread decodes the frame back into a message for the
//! destination actor. Kernel socket buffers, syscalls, and the codec are
//! all on the hot path, which is what makes the measured RTT comparable to
//! the paper's LAN numbers rather than a channel-hop artifact.
//!
//! Topology is a full mesh: one TCP connection per ordered node pair,
//! established up front in [`TcpNetBuilder::start`]. Self-sends and control
//! messages (injection, shutdown) use the node's in-process channel — they
//! are a driver convenience, not part of the measured message plane.
//!
//! Faults are real here: killing a node shuts down **both halves** of
//! every socket touching it, so a peer writer blocked on the dead node's
//! full receive buffer gets an I/O error instead of hanging, and
//! [`TcpNet::restart_node`] re-dials fresh socket pairs to every live
//! peer before the node's `on_restart` hook runs. Link-pair blocks are
//! gated sender-side before the socket write, with the same partition
//! accounting as the simulator's engine. A whole
//! [`FaultPlan`] can be replayed in wall-clock time via
//! [`TcpNet::execute_plan`].
//!
//! Decoding is hardened end to end: a frame that is oversized, truncated,
//! or fails to parse terminates that link's current socket (the TCP
//! analogue of a broken peer) without panicking the node.

use crate::chaos::{ChaosDecision, ChaosState, DelayPump};
use crate::engine::FlightHook;
use crate::engine::{Actor, NetHook, NodeId, TraceOutcome};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::substrate::FaultDriver;
use crate::threadnet::{
    BoxHolder, Ctl, FaultState, FlightTable, Holder, Outbound, Shared, SharedHook, Spawnable,
};
use crate::time::SimTime;
use crate::{DynActor, FaultAction, FaultPlan, Wire};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, MutexGuard};
use std::any::Any;
use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use whisper_wire::{
    decode_clocked, read_frame_into, write_frame_vectored, write_frames_vectored, Decode, Encode,
};

/// One outgoing link: the socket's write half plus a reusable encode
/// scratch buffer, bundled behind a single mutex so a steady-state send
/// takes one lock, encodes into the warm buffer, and writes the frame
/// with zero transient allocations.
struct Link {
    stream: TcpStream,
    scratch: Vec<u8>,
}

/// Most frames a link parks while its writer is busy. Beyond this,
/// telemetry is shed and protocol traffic waits for the writer
/// (backpressure), so a stalled socket bounds memory per link.
const LINK_QUEUE_CAP: usize = 64;

/// One ordered link's live socket state: the writer half used by the
/// sender, and a clone of the current reader socket kept so a kill can
/// shut the connection down from outside the reader thread. `None` means
/// the link is down (endpoint killed, or decode error) until a restart
/// re-dials it.
///
/// `queue` holds fully-encoded frames (trailing Lamport varint included)
/// from senders that found the writer busy; the current lock holder
/// drains it into a single vectored write (flat combining), so a
/// contended link coalesces frames instead of serializing syscalls.
struct LinkSlot {
    writer: Mutex<Option<Link>>,
    reader: Mutex<Option<TcpStream>>,
    queue: Mutex<VecDeque<Vec<u8>>>,
}

/// The full mesh of ordered links, indexed `from * n + to` (diagonal
/// unused), shared between the outbound path, the running network handle
/// and any fault drivers.
struct LinkTable {
    n: usize,
    slots: Vec<LinkSlot>,
}

impl LinkTable {
    fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n * n);
        slots.resize_with(n * n, || LinkSlot {
            writer: Mutex::new(None),
            reader: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
        });
        LinkTable { n, slots }
    }

    fn slot(&self, from: usize, to: usize) -> &LinkSlot {
        &self.slots[from * self.n + to]
    }
}

/// TCP-backed transport: encode, frame, write to the link's socket.
struct TcpOutbound<M> {
    links: Arc<LinkTable>,
    /// In-process channels for self-sends (no socket to ourselves).
    loopback: Vec<Sender<Ctl<M>>>,
    metrics: Arc<Mutex<Metrics>>,
    faults: Arc<FaultState>,
    hook: Option<SharedHook>,
    flights: Arc<FlightTable>,
    /// Wall-clock origin shared with the node loops, so hook timestamps
    /// line up with actor-visible [`SimTime`]s.
    epoch: Instant,
    chaos: Arc<ChaosState>,
    pump: Arc<DelayPump>,
    pump_seq: Arc<AtomicU64>,
}

impl<M> TcpOutbound<M> {
    fn now_ts(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn notify_hook(&self, from: NodeId, to: NodeId, kind: &'static str, bytes: usize) {
        if let Some(hook) = &self.hook {
            let now = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
            hook.lock().on_send(now, from, to, kind, bytes);
        }
    }

    fn notify_drop(&self, from: NodeId, to: NodeId, kind: &'static str, reason: TraceOutcome) {
        if let Some(hook) = &self.hook {
            let now = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
            hook.lock().on_drop(now, from, to, kind, reason);
        }
    }

    /// Flushes frames that peers queued on `slot` while `guard` was held,
    /// then releases the writer. The release re-check loop is the flat-
    /// combining liveness protocol: a peer that enqueues just as the
    /// holder's last drain saw an empty queue will either observe the
    /// writer free (and take over the flush itself) or be covered by the
    /// holder re-acquiring here — no frame is stranded either way.
    fn drain_after<'a>(&self, slot: &'a LinkSlot, mut guard: MutexGuard<'a, Option<Link>>) {
        loop {
            loop {
                let batch: Vec<Vec<u8>> = {
                    let mut q = slot.queue.lock();
                    if q.is_empty() {
                        break;
                    }
                    q.drain(..).collect()
                };
                // A down link discards the batch: the frames were already
                // accounted at enqueue time, matching a direct write that
                // fails mid-flight.
                if let Some(Link { stream, .. }) = guard.as_mut() {
                    let refs: Vec<&[u8]> = batch.iter().map(|f| f.as_slice()).collect();
                    let _ = write_frames_vectored(stream, &refs);
                    self.metrics.lock().on_batch_flush(batch.len());
                }
            }
            drop(guard);
            if slot.queue.lock().is_empty() {
                return;
            }
            match slot.writer.try_lock() {
                Some(g) => guard = g,
                None => return, // the new holder drains behind itself
            }
        }
    }
}

impl<M: Wire + Encode> TcpOutbound<M> {
    /// Encodes `msg` into an owned frame with full send accounting
    /// (metrics, net hook, flight stamp with trailing clock varint) — the
    /// chaos paths use this because the frame outlives the send call.
    fn encode_accounted(&self, from: NodeId, to: NodeId, msg: &M) -> Vec<u8> {
        let mut frame = Vec::with_capacity(msg.wire_size() + 8);
        msg.encode_into(&mut frame);
        let body = frame.len();
        self.metrics.lock().on_send(msg.kind(), body);
        self.notify_hook(from, to, msg.kind(), body);
        if self.flights.armed(from) {
            let clock =
                self.flights
                    .on_send(from, self.now_ts(), to, msg.kind(), body, msg.correlation());
            clock.encode_into(&mut frame);
        }
        frame
    }
}

impl<M: Wire + Encode> Outbound<M> for TcpOutbound<M> {
    fn send(&self, from: NodeId, to: NodeId, msg: M) {
        if from == to {
            let size = msg.wire_size();
            self.metrics.lock().on_send(msg.kind(), size);
            self.notify_hook(from, to, msg.kind(), size);
            let clock = if self.flights.armed(from) {
                self.flights
                    .on_send(from, self.now_ts(), to, msg.kind(), size, msg.correlation())
            } else {
                0
            };
            if let Some(tx) = self.loopback.get(to.index()) {
                if tx.send(Ctl::Msg(from, msg, clock)).is_ok() {
                    self.metrics.lock().on_deliver();
                }
            }
            return;
        }
        // Fault gates first, mirroring the engine's send-time drops: a
        // blocked pair partitions the message, a down destination swallows
        // it — in both cases before any socket work.
        if self.faults.is_blocked(from, to) {
            let size = msg.wire_size();
            let kind = msg.kind();
            {
                let mut m = self.metrics.lock();
                m.on_send(kind, size);
                m.on_drop_partition();
            }
            self.notify_hook(from, to, kind, size);
            if self.flights.armed(from) {
                self.flights
                    .on_send(from, self.now_ts(), to, kind, size, msg.correlation());
            }
            self.notify_drop(from, to, kind, TraceOutcome::Partitioned);
            return;
        }
        if !self.faults.is_up(to) {
            let size = msg.wire_size();
            let kind = msg.kind();
            {
                let mut m = self.metrics.lock();
                m.on_send(kind, size);
                m.on_drop_down();
            }
            self.notify_hook(from, to, kind, size);
            if self.flights.armed(from) {
                self.flights
                    .on_send(from, self.now_ts(), to, kind, size, msg.correlation());
            }
            self.notify_drop(from, to, kind, TraceOutcome::DestinationDown);
            return;
        }
        // Gray degradation interposes here — after the fault gates, before
        // any socket work — as a frame-level mangler: chaos loss never
        // reaches the wire, corruption flips bits in the encoded frame so
        // the receiver hits a *real* decode error, and delay/duplication
        // park the finished frame on the pump thread. The healthy path
        // costs one atomic load inside `decide`.
        match self.chaos.decide(from.0, to.0) {
            ChaosDecision::Clean => {}
            ChaosDecision::Drop => {
                let size = msg.wire_size();
                let kind = msg.kind();
                {
                    let mut m = self.metrics.lock();
                    m.on_send(kind, size);
                    m.on_lost();
                }
                self.notify_hook(from, to, kind, size);
                if self.flights.armed(from) {
                    self.flights
                        .on_send(from, self.now_ts(), to, kind, size, msg.correlation());
                }
                self.notify_drop(from, to, kind, TraceOutcome::Lost);
                return;
            }
            ChaosDecision::Corrupt => {
                let mut frame = self.encode_accounted(from, to, &msg);
                // Damage both ends of the payload: the first byte carries
                // the message tag, so the decode on the far side fails
                // rather than resynthesizing a different valid message.
                if let Some(first) = frame.first_mut() {
                    *first ^= 0xFF;
                }
                if frame.len() > 1 {
                    // Only on multi-byte frames: on a 1-byte payload this
                    // would re-flip the same byte back to valid.
                    let last = frame.len() - 1;
                    frame[last] ^= 0xFF;
                }
                let slot = self.links.slot(from.index(), to.index());
                let mut guard = slot.writer.lock();
                if let Some(Link { stream, .. }) = guard.as_mut() {
                    let _ = write_frame_vectored(stream, &frame);
                }
                self.drain_after(slot, guard);
                return;
            }
            ChaosDecision::Deliver { delay, duplicate } => {
                let frame = self.encode_accounted(from, to, &msg);
                let copies = if duplicate { 2 } else { 1 };
                for i in 0..copies {
                    let links = Arc::clone(&self.links);
                    let f = frame.clone();
                    let (fi, ti) = (from.index(), to.index());
                    let seq = self.pump_seq.fetch_add(1, Ordering::Relaxed);
                    self.pump.after(
                        delay + Duration::from_micros(200 * i as u64),
                        seq,
                        Box::new(move || {
                            let slot = links.slot(fi, ti);
                            let mut guard = slot.writer.lock();
                            if let Some(Link { stream, .. }) = guard.as_mut() {
                                let _ = write_frame_vectored(stream, &f);
                            }
                        }),
                    );
                }
                return;
            }
        }
        let slot = self.links.slot(from.index(), to.index());
        match slot.writer.try_lock() {
            Some(mut guard) => {
                match guard.as_mut() {
                    Some(Link { stream, scratch }) => {
                        scratch.clear();
                        msg.encode_into(scratch);
                        // Metrics take the message length *before* the trailing
                        // Lamport varint, so byte accounting equals `wire_size()`
                        // on every substrate; the clock rides as framing overhead
                        // like the length prefix does.
                        self.metrics.lock().on_send(msg.kind(), scratch.len());
                        self.notify_hook(from, to, msg.kind(), scratch.len());
                        // Unhooked senders emit the pre-clock frame layout — no
                        // trailing varint, no wall-clock read — so a cluster with
                        // no recorders pays one slot load per send. Receivers take
                        // the zero-clock compat path, which is exact: a sender
                        // with no ring has no events to order against.
                        if self.flights.armed(from) {
                            let clock = self.flights.on_send(
                                from,
                                self.now_ts(),
                                to,
                                msg.kind(),
                                scratch.len(),
                                msg.correlation(),
                            );
                            clock.encode_into(scratch);
                        }
                        // Frames parked while the writer was last busy go out
                        // *ahead* of ours in one vectored write, preserving
                        // link FIFO; an idle link (empty queue) takes exactly
                        // the pre-batching single-frame path. A write error
                        // means the peer's link is gone (e.g. during
                        // shutdown); the frames are simply lost, like on a
                        // real LAN.
                        let queued: Vec<Vec<u8>> = {
                            let mut q = slot.queue.lock();
                            if q.is_empty() {
                                Vec::new()
                            } else {
                                q.drain(..).collect()
                            }
                        };
                        if queued.is_empty() {
                            let _ = write_frame_vectored(stream, scratch);
                        } else {
                            let refs: Vec<&[u8]> = queued
                                .iter()
                                .map(|f| f.as_slice())
                                .chain(std::iter::once(scratch.as_slice()))
                                .collect();
                            let _ = write_frames_vectored(stream, &refs);
                            self.metrics.lock().on_batch_flush(queued.len());
                        }
                    }
                    None => {
                        // No live link (torn down, not yet re-dialed): the message
                        // is lost but still accounted, matching the loopback
                        // behavior above.
                        let size = msg.wire_size();
                        self.metrics.lock().on_send(msg.kind(), size);
                        self.notify_hook(from, to, msg.kind(), size);
                        if self.flights.armed(from) {
                            self.flights.on_send(
                                from,
                                self.now_ts(),
                                to,
                                msg.kind(),
                                size,
                                msg.correlation(),
                            );
                        }
                    }
                }
                self.drain_after(slot, guard);
            }
            None => {
                // Another thread is mid-write on this link: encode to an
                // owned frame and park it for the lock holder to flush in
                // one vectored write. The send is accounted here, at
                // enqueue time, exactly as a direct write would be.
                let mut frame = Vec::with_capacity(msg.wire_size() + 8);
                msg.encode_into(&mut frame);
                let body = frame.len();
                self.metrics.lock().on_send(msg.kind(), body);
                self.notify_hook(from, to, msg.kind(), body);
                if self.flights.armed(from) {
                    let clock = self.flights.on_send(
                        from,
                        self.now_ts(),
                        to,
                        msg.kind(),
                        body,
                        msg.correlation(),
                    );
                    clock.encode_into(&mut frame);
                }
                let parked = {
                    let mut q = slot.queue.lock();
                    if q.len() < LINK_QUEUE_CAP {
                        q.push_back(std::mem::take(&mut frame));
                        true
                    } else {
                        false
                    }
                };
                if parked {
                    // The holder may have finished its drain between our
                    // failed try_lock and the push; re-check so the frame
                    // is never stranded on an idle link.
                    if let Some(guard) = slot.writer.try_lock() {
                        self.drain_after(slot, guard);
                    }
                } else if msg.is_telemetry() {
                    // Queue full: telemetry never head-of-line blocks
                    // protocol traffic, so the frame is shed — counted as
                    // sent then lost, the same accounting as the engine's
                    // loss model. Pulse deltas are cumulative per emitter,
                    // so a shed frame costs resolution, not correctness.
                    self.metrics.lock().on_lost();
                    self.notify_drop(from, to, msg.kind(), TraceOutcome::Lost);
                } else {
                    // Protocol traffic must not be lost to contention:
                    // wait for the writer (backpressure), then flush the
                    // backlog and this frame in link order.
                    self.metrics.lock().on_backpressure_wait();
                    let guard = slot.writer.lock();
                    slot.queue.lock().push_back(frame);
                    self.drain_after(slot, guard);
                }
            }
        }
    }
}

/// Connects one TCP socket pair on loopback.
///
/// Binding to port 0 and connecting to the assigned address completes
/// synchronously on loopback (the listener's backlog holds the connection
/// until `accept`), so no handshake threads are needed.
fn connect_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let writer = TcpStream::connect(addr)?;
    let (reader, _) = listener.accept()?;
    writer.set_nodelay(true)?;
    reader.set_nodelay(true)?;
    Ok((writer, reader))
}

/// Applies [`FaultAction`]s to the live socket mesh; shared by
/// [`TcpNet`]'s direct fault methods and its real-time fault drivers.
struct TcpFaultCtl<M> {
    senders: Vec<Sender<Ctl<M>>>,
    /// Per ordered link, the channel feeding replacement sockets to that
    /// link's reader thread (`None` on the diagonal).
    reader_ctrl: Vec<Option<Sender<TcpStream>>>,
    links: Arc<LinkTable>,
    faults: Arc<FaultState>,
    flights: Arc<FlightTable>,
    chaos: Arc<ChaosState>,
    epoch: Instant,
}

impl<M> TcpFaultCtl<M> {
    fn now_ts(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn apply(&self, action: FaultAction) {
        match action {
            FaultAction::Crash(node) => self.kill(node),
            FaultAction::Restart(node) => self.restart(node),
            FaultAction::Block(a, b) => {
                self.faults.set_blocked(a, b, true);
                self.flights
                    .on_fault(a, self.now_ts(), &format!("block {a} {b}"));
                self.flights
                    .on_fault(b, self.now_ts(), &format!("block {a} {b}"));
            }
            FaultAction::Unblock(a, b) => {
                self.faults.set_blocked(a, b, false);
                self.flights
                    .on_fault(a, self.now_ts(), &format!("unblock {a} {b}"));
                self.flights
                    .on_fault(b, self.now_ts(), &format!("unblock {a} {b}"));
            }
            FaultAction::Degrade(a, b, _) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(a, self.now_ts(), &format!("degrade {a} {b}"));
                self.flights
                    .on_fault(b, self.now_ts(), &format!("degrade {a} {b}"));
            }
            FaultAction::Restore(a, b) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(a, self.now_ts(), &format!("restore {a} {b}"));
                self.flights
                    .on_fault(b, self.now_ts(), &format!("restore {a} {b}"));
            }
            FaultAction::Stall(node, _) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(node, self.now_ts(), &format!("stall {node}"));
            }
            FaultAction::Slow(node, _) => {
                self.chaos.apply(action);
                self.flights
                    .on_fault(node, self.now_ts(), &format!("slow {node}"));
            }
        }
    }

    fn kill(&self, node: NodeId) {
        // Gate sends first so traffic starts dropping immediately.
        self.faults.set_up(node, false);
        self.flights
            .on_fault(node, self.now_ts(), &format!("kill {node}"));
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Ctl::Crash);
        }
        let n = self.links.n;
        let dead = node.index();
        if dead >= n {
            return;
        }
        for other in 0..n {
            if other == dead {
                continue;
            }
            for (from, to) in [(dead, other), (other, dead)] {
                let slot = self.links.slot(from, to);
                // Shut the read half first: this resets the connection, so
                // a peer writer blocked on the dead node's full receive
                // buffer errors out and releases the writer lock — which
                // we may be about to take.
                if let Some(sock) = slot.reader.lock().take() {
                    let _ = sock.shutdown(Shutdown::Both);
                }
                if let Some(link) = slot.writer.lock().take() {
                    let _ = link.stream.shutdown(Shutdown::Both);
                }
                // Parked frames were addressed to the dead incarnation;
                // dropping them keeps a later restart's fresh socket from
                // replaying stale traffic. They were accounted at enqueue.
                slot.queue.lock().clear();
            }
        }
    }

    fn restart(&self, node: NodeId) {
        let n = self.links.n;
        let back = node.index();
        if back < n {
            for other in 0..n {
                // Links to still-down peers are re-dialed when *they*
                // restart; dialing them now would race their own teardown.
                if other == back || !self.faults.is_up(NodeId::from_index(other)) {
                    continue;
                }
                for (from, to) in [(back, other), (other, back)] {
                    let Ok((writer, reader)) = connect_pair() else {
                        continue;
                    };
                    let slot = self.links.slot(from, to);
                    if let Ok(clone) = reader.try_clone() {
                        *slot.reader.lock() = Some(clone);
                    }
                    *slot.writer.lock() = Some(Link {
                        stream: writer,
                        scratch: Vec::new(),
                    });
                    if let Some(Some(ctrl)) = self.reader_ctrl.get(from * n + to) {
                        let _ = ctrl.send(reader);
                    }
                }
            }
        }
        self.faults.set_up(node, true);
        self.flights
            .on_fault(node, self.now_ts(), &format!("restart {node}"));
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Ctl::Restart);
        }
    }
}

/// Collects actors before opening sockets and spawning threads.
///
/// Node ids are assigned in registration order, matching
/// [`SimNet::add_node`](crate::SimNet::add_node) and
/// [`ThreadNetBuilder::add_node`](crate::threadnet::ThreadNetBuilder::add_node),
/// so the same wiring code can target any of the three runtimes.
pub struct TcpNetBuilder<M: Wire + Encode + Decode> {
    actors: Vec<Box<dyn Spawnable<M>>>,
    hook: Option<Box<dyn NetHook + Send>>,
    flights: Vec<(NodeId, Box<dyn FlightHook + Send>)>,
    chaos_seed: u64,
}

impl<M: Wire + Encode + Decode> Default for TcpNetBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire + Encode + Decode> TcpNetBuilder<M> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TcpNetBuilder {
            actors: Vec::new(),
            hook: None,
            flights: Vec::new(),
            chaos_seed: 0,
        }
    }

    /// Seeds the gray-failure RNG, making chaos soaks reproducible: the
    /// same seed and plan produce the same per-frame loss/dup/corrupt
    /// decisions (kernel scheduling still varies, as on any real network).
    pub fn set_chaos_seed(&mut self, seed: u64) {
        self.chaos_seed = seed;
    }

    /// Installs a network hook observing every send on the transport —
    /// socket writes and loopback self-sends alike — with the same
    /// callback the in-process engine uses, so per-kind message/byte
    /// accounting (e.g. an obs recorder) works identically over TCP.
    ///
    /// The hook is shared across sender threads behind a mutex; keep its
    /// callbacks cheap.
    pub fn set_net_hook(&mut self, hook: Box<dyn NetHook + Send>) {
        self.hook = Some(hook);
    }

    /// Installs `node`'s flight recorder (see
    /// [`FlightHook`]). The recorder stamps every frame
    /// the node writes with a Lamport clock — carried as a trailing varint
    /// after the message payload, so old frames without one decode with
    /// clock 0 — and merges the stamp on every frame the node reads.
    pub fn set_flight_hook(&mut self, node: NodeId, hook: Box<dyn FlightHook + Send>) {
        self.flights.push((node, hook));
    }

    /// Registers an actor and returns its future node id.
    pub fn add_node(&mut self, actor: impl Actor<M> + Any + 'static) -> NodeId {
        let id = NodeId::from_index(self.actors.len());
        self.actors.push(Box::new(Holder(actor)));
        id
    }

    /// Registers an already-boxed actor (the deployment-layer path; see
    /// [`Spawner`](crate::Spawner)).
    pub fn add_boxed(&mut self, actor: Box<dyn DynActor<M>>) -> NodeId {
        let id = NodeId::from_index(self.actors.len());
        self.actors.push(Box::new(BoxHolder(actor)));
        id
    }

    /// Opens the full mesh of loopback sockets, spawns one thread per actor
    /// plus one reader thread per incoming link, and returns the running
    /// network.
    ///
    /// # Errors
    ///
    /// Any socket error while binding/connecting the mesh; no threads have
    /// been spawned when an error is returned.
    pub fn start(self) -> io::Result<TcpNet<M>> {
        let n = self.actors.len();
        let metrics = Arc::new(Mutex::new(Metrics::new()));
        let faults = Arc::new(FaultState::new(n));
        let links = Arc::new(LinkTable::new(n));

        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        // Establish every ordered link before spawning anything, so a
        // socket failure leaves no threads behind.
        let mut initial = Vec::new();
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    let (writer, reader) = connect_pair()?;
                    let slot = links.slot(from, to);
                    *slot.reader.lock() = Some(reader.try_clone()?);
                    *slot.writer.lock() = Some(Link {
                        stream: writer,
                        scratch: Vec::new(),
                    });
                    initial.push((from, to, reader));
                }
            }
        }

        let epoch = Instant::now();
        let hook: Option<SharedHook> = self.hook.map(|h| Arc::new(Mutex::new(h)));
        let flights = Arc::new(FlightTable::new(n, self.flights));
        let chaos = Arc::new(ChaosState::new(self.chaos_seed));
        let pump = DelayPump::start();

        let mut reader_ctrl: Vec<Option<Sender<TcpStream>>> = Vec::with_capacity(n * n);
        reader_ctrl.resize_with(n * n, || None);
        let mut reader_handles = Vec::with_capacity(initial.len());
        for (from, to, reader) in initial {
            let (ctrl_tx, ctrl_rx) = unbounded::<TcpStream>();
            ctrl_tx.send(reader).expect("fresh channel");
            reader_ctrl[from * n + to] = Some(ctrl_tx);
            let tx = senders[to].clone();
            let from_id = NodeId::from_index(from);
            let to_id = NodeId::from_index(to);
            let link_metrics = Arc::clone(&metrics);
            let link_flights = Arc::clone(&flights);
            reader_handles.push(std::thread::spawn(move || {
                // One payload buffer per link, reused across sockets.
                let mut payload = Vec::new();
                // Each received socket is read to EOF/error, then the
                // thread parks waiting for a replacement (node restart);
                // a disconnected control channel ends the thread.
                while let Ok(mut stream) = ctrl_rx.recv() {
                    while let Ok(true) = read_frame_into(&mut stream, &mut payload) {
                        // A frame is the message encoding plus an optional
                        // trailing Lamport varint; frames from before the
                        // clock existed decode with clock 0.
                        let (msg, clock) = match decode_clocked::<M>(&payload) {
                            Ok(pair) => pair,
                            // Garbage on the wire is a counted, flight-
                            // recorded link fault — never a teardown. The
                            // length prefix has already advanced the stream
                            // past the bad payload, so the next frame
                            // parses cleanly; corruption injection is
                            // observable rather than fatal.
                            Err(_) => {
                                link_metrics.lock().on_decode_error();
                                link_flights.on_fault(
                                    to_id,
                                    SimTime::from_micros(epoch.elapsed().as_micros() as u64),
                                    &format!("decode-error {from_id} {to_id}"),
                                );
                                continue;
                            }
                        };
                        if tx.send(Ctl::Msg(from_id, msg, clock)).is_err() {
                            return;
                        }
                        link_metrics.lock().on_deliver();
                    }
                }
            }));
        }
        let outbound = TcpOutbound {
            links: Arc::clone(&links),
            loopback: senders.clone(),
            metrics: Arc::clone(&metrics),
            faults: Arc::clone(&faults),
            hook: hook.clone(),
            flights: Arc::clone(&flights),
            epoch,
            chaos: Arc::clone(&chaos),
            pump: Arc::clone(&pump),
            pump_seq: Arc::new(AtomicU64::new(0)),
        };
        let shared = Shared {
            outbound: Arc::new(outbound) as Arc<dyn Outbound<M>>,
            flights: Arc::clone(&flights),
            epoch,
        };
        let handles = self
            .actors
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(i, (a, rx))| a.spawn(NodeId::from_index(i), rx, shared.clone()))
            .collect();
        Ok(TcpNet {
            ctl: Arc::new(TcpFaultCtl {
                senders,
                reader_ctrl,
                links,
                faults,
                flights,
                chaos,
                epoch,
            }),
            handles,
            reader_handles,
            metrics,
            hook,
            epoch,
            drivers: Vec::new(),
            pump,
        })
    }
}

/// A running network of actors connected by real TCP loopback sockets.
///
/// # Examples
///
/// ```
/// use whisper_simnet::tcpnet::TcpNetBuilder;
/// use whisper_simnet::{Actor, Context, NodeId, Wire};
/// use whisper_wire::{Decode, Encode, Reader, WireError};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// #[derive(Clone, Debug, PartialEq)]
/// struct Hit(u64);
/// impl Wire for Hit {
///     fn wire_size(&self) -> usize { self.encoded_len() }
/// }
/// impl Encode for Hit {
///     fn encode_into(&self, out: &mut Vec<u8>) { self.0.encode_into(out) }
/// }
/// impl Decode for Hit {
///     fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
///         Ok(Hit(u64::decode_from(r)?))
///     }
/// }
///
/// struct Forward { next: NodeId, hits: Arc<AtomicU32> }
/// impl Actor<Hit> for Forward {
///     fn on_message(&mut self, ctx: &mut Context<'_, Hit>, _: NodeId, msg: Hit) {
///         self.hits.fetch_add(1, Ordering::SeqCst);
///         if msg.0 > 0 { ctx.send(self.next, Hit(msg.0 - 1)); }
///     }
/// }
///
/// let hits = Arc::new(AtomicU32::new(0));
/// let mut b = TcpNetBuilder::new();
/// let a = b.add_node(Forward { next: NodeId::from_index(1), hits: hits.clone() });
/// let z = b.add_node(Forward { next: NodeId::from_index(0), hits: hits.clone() });
/// let net = b.start().unwrap();
/// net.inject(a, z, Hit(3)); // bounces over real sockets until the count hits 0
/// while hits.load(Ordering::SeqCst) < 4 { std::thread::yield_now(); }
/// net.shutdown();
/// ```
pub struct TcpNet<M: Wire> {
    ctl: Arc<TcpFaultCtl<M>>,
    handles: Vec<JoinHandle<Box<dyn Any + Send>>>,
    reader_handles: Vec<JoinHandle<()>>,
    metrics: Arc<Mutex<Metrics>>,
    hook: Option<SharedHook>,
    epoch: Instant,
    drivers: Vec<FaultDriver>,
    pump: Arc<DelayPump>,
}

impl<M: Wire> TcpNet<M> {
    /// Sends `msg` to `to` as if it came from `from`, via the control-plane
    /// channel (driver injection, not a measured socket hop).
    pub fn inject(&self, from: NodeId, to: NodeId, msg: M) {
        self.metrics.lock().on_send(msg.kind(), msg.wire_size());
        if let Some(hook) = &self.hook {
            let now = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
            hook.lock()
                .on_send(now, from, to, msg.kind(), msg.wire_size());
        }
        if let Some(tx) = self.ctl.senders.get(to.index()) {
            if tx.send(Ctl::Msg(from, msg, 0)).is_ok() {
                self.metrics.lock().on_deliver();
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ctl.senders.len()
    }

    /// Wall-clock time since the network started, on the same axis the
    /// node loops report to actors.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// A detached snapshot of the transport metrics so far (a plain-data
    /// copy, not a clone of the live registry).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.lock().snapshot()
    }

    /// Kills one node, as a crash: sends to it start dropping immediately,
    /// its pending timers die, and **both halves of every socket touching
    /// it are shut down**, so peer writer threads blocked on its dead
    /// receive buffer error out instead of hanging. The node can come
    /// back via [`TcpNet::restart_node`]; [`TcpNet::shutdown`] joins its
    /// thread cleanly either way.
    pub fn kill_node(&self, node: NodeId) {
        self.ctl.apply(FaultAction::Crash(node));
    }

    /// Restarts a killed node: fresh socket pairs are dialed to every
    /// live peer (their reader threads pick up the replacement sockets),
    /// then the node's `on_restart` hook runs. Symmetric with
    /// [`TcpNet::kill_node`].
    pub fn restart_node(&self, node: NodeId) {
        self.ctl.apply(FaultAction::Restart(node));
    }

    /// Blocks all traffic between `a` and `b` (both directions), dropped
    /// sender-side before the socket write and counted as partitioned.
    pub fn block_link(&self, a: NodeId, b: NodeId) {
        self.ctl.apply(FaultAction::Block(a, b));
    }

    /// Unblocks traffic between `a` and `b`.
    pub fn unblock_link(&self, a: NodeId, b: NodeId) {
        self.ctl.apply(FaultAction::Unblock(a, b));
    }

    /// Applies any [`FaultAction`] — including the gray kinds
    /// (degrade/restore/stall/slow) — immediately.
    pub fn apply_action(&self, action: FaultAction) {
        self.ctl.apply(action);
    }

    /// Replays `plan` against the live mesh in real time: a fault-driver
    /// thread sleeps until each action's wall-clock offset (measured from
    /// network start) and applies it. Multiple plans may be in flight;
    /// all drivers are stopped and joined by [`TcpNet::shutdown`].
    pub fn execute_plan(&mut self, plan: &FaultPlan) {
        let ctl = Arc::clone(&self.ctl);
        self.drivers.push(FaultDriver::spawn(
            plan,
            self.epoch,
            Box::new(move |action| ctl.apply(action)),
        ));
    }

    /// Stops all node threads (draining queued messages first), closes every
    /// link, joins the reader threads, and returns each actor in node order
    /// for inspection via `Box<dyn Any>`. Fault drivers are stopped first,
    /// so no action fires into a half-torn-down network.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any node or reader thread.
    pub fn shutdown(self) -> Vec<Box<dyn Any + Send>> {
        for d in self.drivers {
            d.stop();
        }
        // Chaos-delayed frames still on the pump die with the network,
        // like in-flight bytes on a torn-down socket.
        self.pump.shutdown();
        for tx in &self.ctl.senders {
            let _ = tx.send(Ctl::Shutdown);
        }
        let actors: Vec<_> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        // Nodes are gone; close the read halves so reader threads see EOF
        // even if their peer's write half is still open somewhere, then
        // drop the control channels so parked readers exit too.
        for slot in &self.ctl.links.slots {
            if let Some(sock) = slot.reader.lock().take() {
                let _ = sock.shutdown(Shutdown::Both);
            }
        }
        drop(self.ctl);
        for h in self.reader_handles {
            h.join().expect("link reader thread panicked");
        }
        actors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;
    use crate::SimDuration;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    #[derive(Clone, Debug, PartialEq)]
    enum M {
        Ping(u32),
    }
    impl Wire for M {
        fn wire_size(&self) -> usize {
            self.encoded_len()
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }
    impl Encode for M {
        fn encode_into(&self, out: &mut Vec<u8>) {
            let M::Ping(n) = self;
            n.encode_into(out);
        }
    }
    impl Decode for M {
        fn decode_from(r: &mut whisper_wire::Reader<'_>) -> Result<Self, whisper_wire::WireError> {
            Ok(M::Ping(u32::decode_from(r)?))
        }
    }

    struct Echo {
        bounces: Arc<AtomicU32>,
    }
    impl Actor<M> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
            let M::Ping(n) = msg;
            self.bounces.fetch_add(1, Ordering::SeqCst);
            if n > 0 {
                ctx.send(from, M::Ping(n - 1));
            }
        }
    }

    fn wait_until(deadline_msg: &str, cond: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "{deadline_msg}");
            std::thread::yield_now();
        }
    }

    #[test]
    fn ping_pong_over_real_sockets() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start().unwrap();
        net.inject(na, nb, M::Ping(9));
        let (a, bb) = (a_hits.clone(), b_hits.clone());
        wait_until("ping-pong did not complete", || {
            a.load(Ordering::SeqCst) + bb.load(Ordering::SeqCst) >= 10
        });
        let m = net.metrics_snapshot();
        net.shutdown();
        assert_eq!(m.sent_of_kind("ping"), 10);
        // Byte accounting is the real encoded size: 1 varint byte per ping
        // here, not a hand-estimated constant.
        assert_eq!(m.bytes_sent(), 10);
    }

    #[test]
    fn chaos_corrupt_counts_decode_error_and_link_survives() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        b.set_chaos_seed(42);
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start().unwrap();
        net.apply_action(FaultAction::Degrade(
            na,
            nb,
            crate::DegradeSpec {
                corrupt_pct: 100,
                ..crate::DegradeSpec::default()
            },
        ));
        // na's reply crosses the degraded link as a bit-flipped frame and
        // fails to decode at nb — counted, not fatal.
        net.inject(nb, na, M::Ping(1));
        let m = Arc::clone(&net.metrics);
        wait_until("decode error never counted", || {
            m.lock().decode_errors() >= 1
        });
        assert_eq!(b_hits.load(Ordering::SeqCst), 0);

        // The same socket keeps working once the degradation lifts: the
        // length prefix resynchronized the stream past the bad payload.
        net.apply_action(FaultAction::Restore(na, nb));
        net.inject(nb, na, M::Ping(1));
        let bh = Arc::clone(&b_hits);
        wait_until("link did not survive the corrupted frame", || {
            bh.load(Ordering::SeqCst) >= 1
        });
        net.shutdown();
    }

    #[test]
    fn chaos_dup_delivers_frame_twice() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        b.set_chaos_seed(42);
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start().unwrap();
        net.apply_action(FaultAction::Degrade(
            na,
            nb,
            crate::DegradeSpec {
                dup_pct: 100,
                ..crate::DegradeSpec::default()
            },
        ));
        net.inject(nb, na, M::Ping(1));
        let bh = Arc::clone(&b_hits);
        wait_until("duplicate frame never arrived", || {
            bh.load(Ordering::SeqCst) >= 2
        });
        net.shutdown();
    }

    #[test]
    fn three_node_relay_chain() {
        struct Relay {
            next: NodeId,
            seen: Arc<AtomicU32>,
        }
        impl Actor<M> for Relay {
            fn on_message(&mut self, ctx: &mut Context<'_, M>, _: NodeId, msg: M) {
                self.seen.fetch_add(1, Ordering::SeqCst);
                let M::Ping(n) = msg;
                if n > 0 {
                    ctx.send(self.next, M::Ping(n - 1));
                }
            }
        }
        let seen = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        let n0 = b.add_node(Relay {
            next: NodeId::from_index(1),
            seen: seen.clone(),
        });
        let _n1 = b.add_node(Relay {
            next: NodeId::from_index(2),
            seen: seen.clone(),
        });
        let _n2 = b.add_node(Relay {
            next: NodeId::from_index(0),
            seen: seen.clone(),
        });
        let net = b.start().unwrap();
        net.inject(n0, n0, M::Ping(8));
        let s = seen.clone();
        wait_until("relay chain did not complete", || {
            s.load(Ordering::SeqCst) >= 9
        });
        net.shutdown();
        assert_eq!(seen.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn timers_fire_on_tcp_runtime_too() {
        struct Beeper {
            beeps: Arc<AtomicU32>,
        }
        impl Actor<M> for Beeper {
            fn on_start(&mut self, ctx: &mut Context<'_, M>) {
                ctx.set_timer(SimDuration::from_millis(5), 3);
            }
            fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {}
            fn on_timer(&mut self, _: &mut Context<'_, M>, token: u64) {
                assert_eq!(token, 3);
                self.beeps.fetch_add(1, Ordering::SeqCst);
            }
        }
        let beeps = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        b.add_node(Beeper {
            beeps: beeps.clone(),
        });
        let net = b.start().unwrap();
        let bp = beeps.clone();
        wait_until("timer did not fire", || bp.load(Ordering::SeqCst) >= 1);
        net.shutdown();
    }

    #[test]
    fn scratch_buffer_reuse_has_no_cross_frame_bleed() {
        // Frames of wildly different sizes on the same link: the per-link
        // encode scratch and the reader's reused payload buffer must not
        // leak bytes from a long frame into a following short one.
        #[derive(Clone, Debug, PartialEq)]
        enum B {
            Go,
            Blob(Vec<u8>),
        }
        impl Wire for B {
            fn wire_size(&self) -> usize {
                self.encoded_len()
            }
            fn kind(&self) -> &'static str {
                "blob"
            }
        }
        impl Encode for B {
            fn encode_into(&self, out: &mut Vec<u8>) {
                match self {
                    B::Go => out.push(0),
                    B::Blob(data) => {
                        out.push(1);
                        data.encode_into(out);
                    }
                }
            }
        }
        impl Decode for B {
            fn decode_from(
                r: &mut whisper_wire::Reader<'_>,
            ) -> Result<Self, whisper_wire::WireError> {
                match r.u8()? {
                    0 => Ok(B::Go),
                    _ => Ok(B::Blob(Vec::<u8>::decode_from(r)?)),
                }
            }
        }

        fn payloads() -> Vec<Vec<u8>> {
            vec![
                vec![0xAA; 4096],
                vec![0xBB; 7],
                Vec::new(),
                vec![0xCC; 1024],
                vec![0xDD],
            ]
        }

        struct Burst {
            peer: NodeId,
        }
        impl Actor<B> for Burst {
            fn on_message(&mut self, ctx: &mut Context<'_, B>, _: NodeId, msg: B) {
                if msg == B::Go {
                    for p in payloads() {
                        ctx.send(self.peer, B::Blob(p));
                    }
                }
            }
        }
        struct Collect {
            got: Arc<Mutex<Vec<Vec<u8>>>>,
        }
        impl Actor<B> for Collect {
            fn on_message(&mut self, _: &mut Context<'_, B>, _: NodeId, msg: B) {
                if let B::Blob(data) = msg {
                    self.got.lock().push(data);
                }
            }
        }

        let got = Arc::new(Mutex::new(Vec::new()));
        let mut b = TcpNetBuilder::new();
        let receiver = NodeId::from_index(1);
        let sender = b.add_node(Burst { peer: receiver });
        b.add_node(Collect { got: got.clone() });
        let net = b.start().unwrap();
        net.inject(sender, sender, B::Go);
        let g = got.clone();
        wait_until("blobs did not all arrive", || {
            g.lock().len() >= payloads().len()
        });
        net.shutdown();
        assert_eq!(*got.lock(), payloads());
    }

    /// Builds a two-node outbound by hand so tests can hold the link's
    /// writer lock and force the contended paths deterministically. The
    /// returned reader keeps the socket pair alive.
    fn hand_built_outbound<W: Wire + Encode>() -> (TcpOutbound<W>, TcpStream) {
        let (writer, reader) = connect_pair().unwrap();
        let links = Arc::new(LinkTable::new(2));
        *links.slot(0, 1).writer.lock() = Some(Link {
            stream: writer,
            scratch: Vec::new(),
        });
        let (tx0, _rx0) = unbounded();
        let (tx1, _rx1) = unbounded();
        let out = TcpOutbound {
            links,
            loopback: vec![tx0, tx1],
            metrics: Arc::new(Mutex::new(Metrics::new())),
            faults: Arc::new(FaultState::new(2)),
            hook: None,
            flights: Arc::new(FlightTable::new(2, Vec::new())),
            epoch: Instant::now(),
            chaos: Arc::new(ChaosState::new(0)),
            pump: DelayPump::start(),
            pump_seq: Arc::new(AtomicU64::new(0)),
        };
        (out, reader)
    }

    #[derive(Clone, Debug)]
    struct Pulse;
    impl Wire for Pulse {
        fn wire_size(&self) -> usize {
            self.encoded_len()
        }
        fn kind(&self) -> &'static str {
            "pulse-report"
        }
        fn is_telemetry(&self) -> bool {
            true
        }
    }
    impl Encode for Pulse {
        fn encode_into(&self, out: &mut Vec<u8>) {
            out.push(7);
        }
    }

    #[test]
    fn telemetry_queues_on_contention_and_sheds_when_queue_fills() {
        let (out, _reader) = hand_built_outbound::<Pulse>();
        let from = NodeId::from_index(0);
        let to = NodeId::from_index(1);

        // Uncontended: the telemetry frame goes out on the socket.
        out.send(from, to, Pulse);
        {
            let m = out.metrics.lock().snapshot();
            assert_eq!(m.sent_of_kind("pulse-report"), 1);
            assert_eq!(m.lost, 0);
        }

        // Contended with queue space: frames park in the link's outbound
        // queue instead of shedding, and send() never blocks.
        let guard = out.links.slot(0, 1).writer.lock();
        for _ in 0..LINK_QUEUE_CAP {
            out.send(from, to, Pulse);
        }
        {
            let m = out.metrics.lock().snapshot();
            assert_eq!(m.sent_of_kind("pulse-report"), 1 + LINK_QUEUE_CAP as u64);
            assert_eq!(m.lost, 0, "queued telemetry must not count as shed");
        }

        // Queue full: the frame is shed — counted as sent then lost, the
        // same accounting as the pre-batching try_lock shed path.
        out.send(from, to, Pulse);
        {
            let m = out.metrics.lock().snapshot();
            assert_eq!(m.sent_of_kind("pulse-report"), 2 + LINK_QUEUE_CAP as u64);
            assert_eq!(m.lost, 1);
        }
        drop(guard);

        // The next direct send drains the backlog ahead of itself in one
        // vectored write.
        out.send(from, to, Pulse);
        let m = out.metrics.lock().snapshot();
        assert_eq!(m.batch_flushes, 1);
        assert_eq!(m.frames_coalesced, LINK_QUEUE_CAP as u64);
        assert_eq!(m.lost, 1);
    }

    #[test]
    fn contended_frames_flush_in_link_order() {
        let (out, mut reader) = hand_built_outbound::<M>();
        let from = NodeId::from_index(0);
        let to = NodeId::from_index(1);

        // Park three protocol frames behind a held writer lock — none may
        // block or shed — then release and send a fourth directly.
        let guard = out.links.slot(0, 1).writer.lock();
        for n in 0..3 {
            out.send(from, to, M::Ping(n));
        }
        {
            let m = out.metrics.lock().snapshot();
            assert_eq!(m.sent_of_kind("ping"), 3);
            assert_eq!(m.lost, 0);
            assert_eq!(m.backpressure_waits, 0);
        }
        drop(guard);
        out.send(from, to, M::Ping(3));

        // The wire carries the queued frames first, then the direct one:
        // link FIFO survives batching.
        let mut payload = Vec::new();
        for expect in 0..4u32 {
            assert!(read_frame_into(&mut reader, &mut payload).unwrap());
            let (msg, _) = decode_clocked::<M>(&payload).unwrap();
            assert_eq!(msg, M::Ping(expect));
        }
        let m = out.metrics.lock().snapshot();
        assert_eq!(m.batch_flushes, 1);
        assert_eq!(m.frames_coalesced, 3);
    }

    #[test]
    fn full_queue_applies_backpressure_to_protocol_traffic_without_loss() {
        let (out, mut reader) = hand_built_outbound::<M>();
        let out = Arc::new(out);
        let from = NodeId::from_index(0);
        let to = NodeId::from_index(1);

        let guard = out.links.slot(0, 1).writer.lock();
        for n in 0..LINK_QUEUE_CAP as u32 {
            out.send(from, to, M::Ping(n));
        }
        // One more protocol frame from another thread: the queue is full,
        // so that sender must wait for the writer rather than shed. Only
        // release the lock once it has registered the backpressure wait,
        // so the blocking path is exercised deterministically.
        let o2 = Arc::clone(&out);
        let blocked = std::thread::spawn(move || {
            o2.send(from, to, M::Ping(LINK_QUEUE_CAP as u32));
        });
        let o3 = Arc::clone(&out);
        wait_until("sender never hit the full-queue backpressure path", || {
            o3.metrics.lock().snapshot().backpressure_waits == 1
        });
        drop(guard);
        blocked.join().unwrap();

        let mut payload = Vec::new();
        for expect in 0..=LINK_QUEUE_CAP as u32 {
            assert!(read_frame_into(&mut reader, &mut payload).unwrap());
            let (msg, _) = decode_clocked::<M>(&payload).unwrap();
            assert_eq!(msg, M::Ping(expect));
        }
        let m = out.metrics.lock().snapshot();
        assert_eq!(m.lost, 0, "protocol traffic must never shed");
        assert_eq!(m.backpressure_waits, 1);
        assert_eq!(m.sent_of_kind("ping"), LINK_QUEUE_CAP as u64 + 1);
    }

    #[test]
    fn shutdown_joins_everything_and_returns_actors() {
        let mut b = TcpNetBuilder::new();
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        let net = b.start().unwrap();
        assert_eq!(net.node_count(), 3);
        let actors = net.shutdown();
        assert_eq!(actors.len(), 3);
        assert!(actors[0].downcast_ref::<Echo>().is_some());
    }

    #[test]
    fn kill_then_restart_re_dials_sockets() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start().unwrap();

        // Round trip while healthy.
        net.inject(na, nb, M::Ping(1));
        let (a, bb) = (a_hits.clone(), b_hits.clone());
        wait_until("healthy ping-pong did not complete", || {
            a.load(Ordering::SeqCst) + bb.load(Ordering::SeqCst) >= 2
        });

        // Kill b: traffic to it drops sender-side instead of blocking.
        net.kill_node(nb);
        std::thread::sleep(Duration::from_millis(20));
        let before = b_hits.load(Ordering::SeqCst);
        net.inject(na, na, M::Ping(0)); // keep a alive; a's reply path is gone
        let mn = net.metrics_snapshot();
        assert!(mn.sent >= 3);

        // Restart b: fresh sockets, on_restart fires, traffic flows again
        // over the re-dialed links (inject to a, which pings b via socket).
        net.restart_node(nb);
        std::thread::sleep(Duration::from_millis(20));
        net.inject(nb, na, M::Ping(1)); // a replies to b over the new link
        let bb = b_hits.clone();
        wait_until("restarted node never heard socket traffic", || {
            bb.load(Ordering::SeqCst) > before
        });
        net.shutdown();
    }

    #[test]
    fn killing_receiver_unblocks_stuck_writer() {
        // Wedge a writer for real: a garbage frame makes node 1's reader
        // park its socket (decode error), then a flood of frames fills the
        // kernel buffers until the write blocks while holding the link's
        // writer lock — the worst case for a kill, which must take that
        // same lock. Shutting the read half first is what breaks the
        // blocked write; without it this test hangs.
        let mut b = TcpNetBuilder::new();
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        let net = b.start().unwrap();
        let links = Arc::clone(&net.ctl.links);
        let done = Arc::new(AtomicU32::new(0));
        let d = done.clone();
        let writer_thread = std::thread::spawn(move || {
            let mut slot = links.slot(0, 1).writer.lock();
            if let Some(Link { stream, .. }) = slot.as_mut() {
                // 64 KiB of junk per frame: the first one kills the
                // reader's decode loop, the rest pile into the socket
                // until a write blocks, then errors when the kill shuts
                // the connection down.
                let junk = vec![0xFFu8; 64 * 1024];
                while write_frame_vectored(stream, &junk).is_ok() {}
            }
            drop(slot);
            d.fetch_add(1, Ordering::SeqCst);
        });
        // Let the writer wedge against full buffers, then kill the
        // receiver; the blocked write must error out promptly.
        std::thread::sleep(Duration::from_millis(100));
        net.kill_node(NodeId::from_index(1));
        let d = done.clone();
        wait_until("writer stayed blocked after receiver was killed", || {
            d.load(Ordering::SeqCst) >= 1
        });
        writer_thread.join().unwrap();
        net.shutdown();
    }
}
