//! Real TCP loopback transport for the same [`Actor`] objects.
//!
//! [`TcpNet`] runs each actor on its own thread exactly like
//! [`ThreadNet`](crate::threadnet::ThreadNet) — same node loop, same
//! timers — but every inter-node message crosses a real TCP socket on
//! `127.0.0.1`: the sender encodes to bytes with
//! [`whisper_wire::Encode`], writes a length-prefixed frame, and a
//! per-link reader thread decodes the frame back into a message for the
//! destination actor. Kernel socket buffers, syscalls, and the codec are
//! all on the hot path, which is what makes the measured RTT comparable to
//! the paper's LAN numbers rather than a channel-hop artifact.
//!
//! Topology is a full mesh: one TCP connection per ordered node pair,
//! established up front in [`TcpNetBuilder::start`]. Self-sends and control
//! messages (injection, shutdown) use the node's in-process channel — they
//! are a driver convenience, not part of the measured message plane.
//!
//! Decoding is hardened end to end: a frame that is oversized, truncated,
//! or fails to parse terminates that link's reader (the TCP analogue of a
//! broken peer) without panicking the node.

use crate::engine::{Actor, NetHook, NodeId};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::threadnet::{Ctl, Holder, Outbound, Shared, Spawnable};
use crate::time::SimTime;
use crate::Wire;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use whisper_wire::{read_frame_into, write_frame_vectored, Decode, Encode};

/// The shared, thread-safe form of an installed [`NetHook`].
type SharedHook = Arc<Mutex<Box<dyn NetHook + Send>>>;

/// One outgoing link: the socket's write half plus a reusable encode
/// scratch buffer, bundled behind a single mutex so a steady-state send
/// takes one lock, encodes into the warm buffer, and writes the frame
/// with zero transient allocations.
struct Link {
    stream: TcpStream,
    scratch: Vec<u8>,
}

/// TCP-backed transport: encode, frame, write to the link's socket.
struct TcpOutbound<M> {
    n: usize,
    /// Outgoing links, indexed `from * n + to`; `None` on the diagonal.
    writers: Vec<Option<Mutex<Link>>>,
    /// In-process channels for self-sends (no socket to ourselves).
    loopback: Vec<Sender<Ctl<M>>>,
    metrics: Arc<Mutex<Metrics>>,
    hook: Option<SharedHook>,
    /// Wall-clock origin shared with the node loops, so hook timestamps
    /// line up with actor-visible [`SimTime`]s.
    epoch: Instant,
}

impl<M> TcpOutbound<M> {
    fn notify_hook(&self, from: NodeId, to: NodeId, kind: &'static str, bytes: usize) {
        if let Some(hook) = &self.hook {
            let now = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
            hook.lock().on_send(now, from, to, kind, bytes);
        }
    }

    fn notify_drop(&self, from: NodeId, to: NodeId, kind: &'static str) {
        if let Some(hook) = &self.hook {
            let now = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
            hook.lock()
                .on_drop(now, from, to, kind, crate::TraceOutcome::Lost);
        }
    }
}

impl<M: Wire + Encode> Outbound<M> for TcpOutbound<M> {
    fn send(&self, from: NodeId, to: NodeId, msg: M) {
        if from == to {
            self.metrics.lock().on_send(msg.kind(), msg.wire_size());
            self.notify_hook(from, to, msg.kind(), msg.wire_size());
            if let Some(tx) = self.loopback.get(to.index()) {
                if tx.send(Ctl::Msg(from, msg)).is_ok() {
                    self.metrics.lock().on_deliver();
                }
            }
            return;
        }
        let idx = from.index() * self.n + to.index();
        if let Some(link) = self.writers.get(idx).and_then(Option::as_ref) {
            // Telemetry never head-of-line blocks protocol traffic: if the
            // link is busy (another thread mid-write), shed the frame and
            // account it as lost. Pulse deltas are cumulative per emitter,
            // so a shed frame costs resolution, not correctness.
            let mut link = if msg.is_telemetry() {
                match link.try_lock() {
                    Some(guard) => guard,
                    None => {
                        // Same accounting as the engine's loss model: the
                        // send is counted, then the drop.
                        let size = msg.wire_size();
                        {
                            let mut m = self.metrics.lock();
                            m.on_send(msg.kind(), size);
                            m.on_lost();
                        }
                        self.notify_hook(from, to, msg.kind(), size);
                        self.notify_drop(from, to, msg.kind());
                        return;
                    }
                }
            } else {
                link.lock()
            };
            let Link { stream, scratch } = &mut *link;
            scratch.clear();
            msg.encode_into(scratch);
            self.metrics.lock().on_send(msg.kind(), scratch.len());
            self.notify_hook(from, to, msg.kind(), scratch.len());
            // A write error means the peer's link is gone (e.g. during
            // shutdown); the message is simply lost, like on a real LAN.
            let _ = write_frame_vectored(stream, scratch);
        } else {
            // No link (unknown destination): the message is lost but still
            // accounted, matching the loopback/metrics behavior above.
            self.metrics.lock().on_send(msg.kind(), msg.wire_size());
            self.notify_hook(from, to, msg.kind(), msg.wire_size());
        }
    }
}

/// One established ordered link: the write half (sender side) and the read
/// half (receiver side) of the same TCP connection.
struct LinkPair {
    from: usize,
    to: usize,
    writer: TcpStream,
    reader: TcpStream,
}

/// Connects one TCP socket pair on loopback.
///
/// Binding to port 0 and connecting to the assigned address completes
/// synchronously on loopback (the listener's backlog holds the connection
/// until `accept`), so no handshake threads are needed.
fn connect_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let writer = TcpStream::connect(addr)?;
    let (reader, _) = listener.accept()?;
    writer.set_nodelay(true)?;
    reader.set_nodelay(true)?;
    Ok((writer, reader))
}

/// Collects actors before opening sockets and spawning threads.
///
/// Node ids are assigned in registration order, matching
/// [`SimNet::add_node`](crate::SimNet::add_node) and
/// [`ThreadNetBuilder::add_node`](crate::threadnet::ThreadNetBuilder::add_node),
/// so the same wiring code can target any of the three runtimes.
pub struct TcpNetBuilder<M: Wire + Encode + Decode> {
    actors: Vec<Box<dyn Spawnable<M>>>,
    hook: Option<Box<dyn NetHook + Send>>,
}

impl<M: Wire + Encode + Decode> Default for TcpNetBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire + Encode + Decode> TcpNetBuilder<M> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TcpNetBuilder {
            actors: Vec::new(),
            hook: None,
        }
    }

    /// Installs a network hook observing every send on the transport —
    /// socket writes and loopback self-sends alike — with the same
    /// callback the in-process engine uses, so per-kind message/byte
    /// accounting (e.g. an obs recorder) works identically over TCP.
    ///
    /// The hook is shared across sender threads behind a mutex; keep its
    /// callbacks cheap.
    pub fn set_net_hook(&mut self, hook: Box<dyn NetHook + Send>) {
        self.hook = Some(hook);
    }

    /// Registers an actor and returns its future node id.
    pub fn add_node(&mut self, actor: impl Actor<M> + Any + 'static) -> NodeId {
        let id = NodeId::from_index(self.actors.len());
        self.actors.push(Box::new(Holder(actor)));
        id
    }

    /// Opens the full mesh of loopback sockets, spawns one thread per actor
    /// plus one reader thread per incoming link, and returns the running
    /// network.
    ///
    /// # Errors
    ///
    /// Any socket error while binding/connecting the mesh; no threads have
    /// been spawned when an error is returned.
    pub fn start(self) -> io::Result<TcpNet<M>> {
        let n = self.actors.len();
        let metrics = Arc::new(Mutex::new(Metrics::new()));

        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        // Establish every ordered link before spawning anything, so a
        // socket failure leaves no threads behind.
        let mut links = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    let (writer, reader) = connect_pair()?;
                    links.push(LinkPair {
                        from,
                        to,
                        writer,
                        reader,
                    });
                }
            }
        }

        let mut writers: Vec<Option<Mutex<Link>>> = Vec::with_capacity(n * n);
        writers.resize_with(n * n, || None);
        let mut reader_handles = Vec::with_capacity(links.len());
        let mut reader_sockets = Vec::with_capacity(links.len());
        for link in links {
            writers[link.from * n + link.to] = Some(Mutex::new(Link {
                stream: link.writer,
                scratch: Vec::new(),
            }));
            reader_sockets.push(link.reader.try_clone()?);
            let tx = senders[link.to].clone();
            let from = NodeId::from_index(link.from);
            let link_metrics = Arc::clone(&metrics);
            let mut stream = link.reader;
            reader_handles.push(std::thread::spawn(move || {
                // One payload buffer per link, reused across frames.
                let mut payload = Vec::new();
                // Clean EOF or any I/O error ends the loop: the link is down.
                while let Ok(true) = read_frame_into(&mut stream, &mut payload) {
                    let msg = match M::decode(&payload) {
                        Ok(msg) => msg,
                        // Garbage on the wire kills the link, never the node.
                        Err(_) => break,
                    };
                    if tx.send(Ctl::Msg(from, msg)).is_err() {
                        break;
                    }
                    link_metrics.lock().on_deliver();
                }
            }));
        }

        let epoch = Instant::now();
        let hook: Option<SharedHook> = self.hook.map(|h| Arc::new(Mutex::new(h)));
        let outbound = TcpOutbound {
            n,
            writers,
            loopback: senders.clone(),
            metrics: Arc::clone(&metrics),
            hook: hook.clone(),
            epoch,
        };
        let shared = Shared {
            outbound: Arc::new(outbound) as Arc<dyn Outbound<M>>,
            epoch,
        };
        let handles = self
            .actors
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(i, (a, rx))| a.spawn(NodeId::from_index(i), rx, shared.clone()))
            .collect();
        Ok(TcpNet {
            senders,
            handles,
            reader_handles,
            reader_sockets,
            metrics,
            hook,
            epoch,
        })
    }
}

/// A running network of actors connected by real TCP loopback sockets.
///
/// # Examples
///
/// ```
/// use whisper_simnet::tcpnet::TcpNetBuilder;
/// use whisper_simnet::{Actor, Context, NodeId, Wire};
/// use whisper_wire::{Decode, Encode, Reader, WireError};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// #[derive(Clone, Debug, PartialEq)]
/// struct Hit(u64);
/// impl Wire for Hit {
///     fn wire_size(&self) -> usize { self.encoded_len() }
/// }
/// impl Encode for Hit {
///     fn encode_into(&self, out: &mut Vec<u8>) { self.0.encode_into(out) }
/// }
/// impl Decode for Hit {
///     fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
///         Ok(Hit(u64::decode_from(r)?))
///     }
/// }
///
/// struct Forward { next: NodeId, hits: Arc<AtomicU32> }
/// impl Actor<Hit> for Forward {
///     fn on_message(&mut self, ctx: &mut Context<'_, Hit>, _: NodeId, msg: Hit) {
///         self.hits.fetch_add(1, Ordering::SeqCst);
///         if msg.0 > 0 { ctx.send(self.next, Hit(msg.0 - 1)); }
///     }
/// }
///
/// let hits = Arc::new(AtomicU32::new(0));
/// let mut b = TcpNetBuilder::new();
/// let a = b.add_node(Forward { next: NodeId::from_index(1), hits: hits.clone() });
/// let z = b.add_node(Forward { next: NodeId::from_index(0), hits: hits.clone() });
/// let net = b.start().unwrap();
/// net.inject(a, z, Hit(3)); // bounces over real sockets until the count hits 0
/// while hits.load(Ordering::SeqCst) < 4 { std::thread::yield_now(); }
/// net.shutdown();
/// ```
pub struct TcpNet<M: Wire> {
    senders: Vec<Sender<Ctl<M>>>,
    handles: Vec<JoinHandle<Box<dyn Any + Send>>>,
    reader_handles: Vec<JoinHandle<()>>,
    reader_sockets: Vec<TcpStream>,
    metrics: Arc<Mutex<Metrics>>,
    hook: Option<SharedHook>,
    epoch: Instant,
}

impl<M: Wire> TcpNet<M> {
    /// Sends `msg` to `to` as if it came from `from`, via the control-plane
    /// channel (driver injection, not a measured socket hop).
    pub fn inject(&self, from: NodeId, to: NodeId, msg: M) {
        self.metrics.lock().on_send(msg.kind(), msg.wire_size());
        if let Some(hook) = &self.hook {
            let now = SimTime::from_micros(self.epoch.elapsed().as_micros() as u64);
            hook.lock()
                .on_send(now, from, to, msg.kind(), msg.wire_size());
        }
        if let Some(tx) = self.senders.get(to.index()) {
            if tx.send(Ctl::Msg(from, msg)).is_ok() {
                self.metrics.lock().on_deliver();
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.senders.len()
    }

    /// A detached snapshot of the transport metrics so far (a plain-data
    /// copy, not a clone of the live registry).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.lock().snapshot()
    }

    /// Kills one node, as a crash: its thread drains already-queued
    /// messages and exits, its timers die with it, and traffic addressed
    /// to it from then on is silently lost — exactly how a crashed peer
    /// looks to the rest of the cluster. The node cannot be restarted;
    /// [`TcpNet::shutdown`] still joins its thread cleanly.
    pub fn stop_node(&self, node: NodeId) {
        if let Some(tx) = self.senders.get(node.index()) {
            let _ = tx.send(Ctl::Stop);
        }
    }

    /// Stops all node threads (draining queued messages first), closes every
    /// link, joins the reader threads, and returns each actor in node order
    /// for inspection via `Box<dyn Any>`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any node or reader thread.
    pub fn shutdown(self) -> Vec<Box<dyn Any + Send>> {
        for tx in &self.senders {
            let _ = tx.send(Ctl::Stop);
        }
        let actors: Vec<_> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        // Nodes are gone; close the read halves so reader threads see EOF
        // even if their peer's write half is still open somewhere.
        for socket in &self.reader_sockets {
            let _ = socket.shutdown(Shutdown::Both);
        }
        for h in self.reader_handles {
            h.join().expect("link reader thread panicked");
        }
        actors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;
    use crate::SimDuration;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    #[derive(Clone, Debug, PartialEq)]
    enum M {
        Ping(u32),
    }
    impl Wire for M {
        fn wire_size(&self) -> usize {
            self.encoded_len()
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }
    impl Encode for M {
        fn encode_into(&self, out: &mut Vec<u8>) {
            let M::Ping(n) = self;
            n.encode_into(out);
        }
    }
    impl Decode for M {
        fn decode_from(r: &mut whisper_wire::Reader<'_>) -> Result<Self, whisper_wire::WireError> {
            Ok(M::Ping(u32::decode_from(r)?))
        }
    }

    struct Echo {
        bounces: Arc<AtomicU32>,
    }
    impl Actor<M> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
            let M::Ping(n) = msg;
            self.bounces.fetch_add(1, Ordering::SeqCst);
            if n > 0 {
                ctx.send(from, M::Ping(n - 1));
            }
        }
    }

    fn wait_until(deadline_msg: &str, cond: impl Fn() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "{deadline_msg}");
            std::thread::yield_now();
        }
    }

    #[test]
    fn ping_pong_over_real_sockets() {
        let a_hits = Arc::new(AtomicU32::new(0));
        let b_hits = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        let na = b.add_node(Echo {
            bounces: a_hits.clone(),
        });
        let nb = b.add_node(Echo {
            bounces: b_hits.clone(),
        });
        let net = b.start().unwrap();
        net.inject(na, nb, M::Ping(9));
        let (a, bb) = (a_hits.clone(), b_hits.clone());
        wait_until("ping-pong did not complete", || {
            a.load(Ordering::SeqCst) + bb.load(Ordering::SeqCst) >= 10
        });
        let m = net.metrics_snapshot();
        net.shutdown();
        assert_eq!(m.sent_of_kind("ping"), 10);
        // Byte accounting is the real encoded size: 1 varint byte per ping
        // here, not a hand-estimated constant.
        assert_eq!(m.bytes_sent(), 10);
    }

    #[test]
    fn three_node_relay_chain() {
        struct Relay {
            next: NodeId,
            seen: Arc<AtomicU32>,
        }
        impl Actor<M> for Relay {
            fn on_message(&mut self, ctx: &mut Context<'_, M>, _: NodeId, msg: M) {
                self.seen.fetch_add(1, Ordering::SeqCst);
                let M::Ping(n) = msg;
                if n > 0 {
                    ctx.send(self.next, M::Ping(n - 1));
                }
            }
        }
        let seen = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        let n0 = b.add_node(Relay {
            next: NodeId::from_index(1),
            seen: seen.clone(),
        });
        let _n1 = b.add_node(Relay {
            next: NodeId::from_index(2),
            seen: seen.clone(),
        });
        let _n2 = b.add_node(Relay {
            next: NodeId::from_index(0),
            seen: seen.clone(),
        });
        let net = b.start().unwrap();
        net.inject(n0, n0, M::Ping(8));
        let s = seen.clone();
        wait_until("relay chain did not complete", || {
            s.load(Ordering::SeqCst) >= 9
        });
        net.shutdown();
        assert_eq!(seen.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn timers_fire_on_tcp_runtime_too() {
        struct Beeper {
            beeps: Arc<AtomicU32>,
        }
        impl Actor<M> for Beeper {
            fn on_start(&mut self, ctx: &mut Context<'_, M>) {
                ctx.set_timer(SimDuration::from_millis(5), 3);
            }
            fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {}
            fn on_timer(&mut self, _: &mut Context<'_, M>, token: u64) {
                assert_eq!(token, 3);
                self.beeps.fetch_add(1, Ordering::SeqCst);
            }
        }
        let beeps = Arc::new(AtomicU32::new(0));
        let mut b = TcpNetBuilder::new();
        b.add_node(Beeper {
            beeps: beeps.clone(),
        });
        let net = b.start().unwrap();
        let bp = beeps.clone();
        wait_until("timer did not fire", || bp.load(Ordering::SeqCst) >= 1);
        net.shutdown();
    }

    #[test]
    fn scratch_buffer_reuse_has_no_cross_frame_bleed() {
        // Frames of wildly different sizes on the same link: the per-link
        // encode scratch and the reader's reused payload buffer must not
        // leak bytes from a long frame into a following short one.
        #[derive(Clone, Debug, PartialEq)]
        enum B {
            Go,
            Blob(Vec<u8>),
        }
        impl Wire for B {
            fn wire_size(&self) -> usize {
                self.encoded_len()
            }
            fn kind(&self) -> &'static str {
                "blob"
            }
        }
        impl Encode for B {
            fn encode_into(&self, out: &mut Vec<u8>) {
                match self {
                    B::Go => out.push(0),
                    B::Blob(data) => {
                        out.push(1);
                        data.encode_into(out);
                    }
                }
            }
        }
        impl Decode for B {
            fn decode_from(
                r: &mut whisper_wire::Reader<'_>,
            ) -> Result<Self, whisper_wire::WireError> {
                match r.u8()? {
                    0 => Ok(B::Go),
                    _ => Ok(B::Blob(Vec::<u8>::decode_from(r)?)),
                }
            }
        }

        fn payloads() -> Vec<Vec<u8>> {
            vec![
                vec![0xAA; 4096],
                vec![0xBB; 7],
                Vec::new(),
                vec![0xCC; 1024],
                vec![0xDD],
            ]
        }

        struct Burst {
            peer: NodeId,
        }
        impl Actor<B> for Burst {
            fn on_message(&mut self, ctx: &mut Context<'_, B>, _: NodeId, msg: B) {
                if msg == B::Go {
                    for p in payloads() {
                        ctx.send(self.peer, B::Blob(p));
                    }
                }
            }
        }
        struct Collect {
            got: Arc<Mutex<Vec<Vec<u8>>>>,
        }
        impl Actor<B> for Collect {
            fn on_message(&mut self, _: &mut Context<'_, B>, _: NodeId, msg: B) {
                if let B::Blob(data) = msg {
                    self.got.lock().push(data);
                }
            }
        }

        let got = Arc::new(Mutex::new(Vec::new()));
        let mut b = TcpNetBuilder::new();
        let receiver = NodeId::from_index(1);
        let sender = b.add_node(Burst { peer: receiver });
        b.add_node(Collect { got: got.clone() });
        let net = b.start().unwrap();
        net.inject(sender, sender, B::Go);
        let g = got.clone();
        wait_until("blobs did not all arrive", || {
            g.lock().len() >= payloads().len()
        });
        net.shutdown();
        assert_eq!(*got.lock(), payloads());
    }

    #[test]
    fn telemetry_sheds_on_contended_link_instead_of_blocking() {
        #[derive(Clone, Debug)]
        struct Pulse;
        impl Wire for Pulse {
            fn wire_size(&self) -> usize {
                self.encoded_len()
            }
            fn kind(&self) -> &'static str {
                "pulse-report"
            }
            fn is_telemetry(&self) -> bool {
                true
            }
        }
        impl Encode for Pulse {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.push(7);
            }
        }

        // Build the outbound by hand so the test can hold the link's lock
        // and force the contended path deterministically.
        let (writer, _reader) = connect_pair().unwrap();
        let mut writers: Vec<Option<Mutex<Link>>> = Vec::new();
        writers.resize_with(4, || None);
        writers[1] = Some(Mutex::new(Link {
            stream: writer,
            scratch: Vec::new(),
        }));
        let (tx0, _rx0) = unbounded();
        let (tx1, _rx1) = unbounded();
        let out = TcpOutbound {
            n: 2,
            writers,
            loopback: vec![tx0, tx1],
            metrics: Arc::new(Mutex::new(Metrics::new())),
            hook: None,
            epoch: Instant::now(),
        };
        let from = NodeId::from_index(0);
        let to = NodeId::from_index(1);

        // Uncontended: the telemetry frame goes out on the socket.
        out.send(from, to, Pulse);
        {
            let m = out.metrics.lock().snapshot();
            assert_eq!(m.sent_of_kind("pulse-report"), 1);
            assert_eq!(m.lost, 0);
        }

        // Contended: another sender is mid-write on this link, so the
        // frame is shed — counted as sent then lost — and send() returns
        // without blocking.
        let guard = out.writers[1].as_ref().unwrap().lock();
        out.send(from, to, Pulse);
        drop(guard);
        let m = out.metrics.lock().snapshot();
        assert_eq!(m.sent_of_kind("pulse-report"), 2);
        assert_eq!(m.lost, 1);
    }

    #[test]
    fn shutdown_joins_everything_and_returns_actors() {
        let mut b = TcpNetBuilder::new();
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        b.add_node(Echo {
            bounces: Arc::new(AtomicU32::new(0)),
        });
        let net = b.start().unwrap();
        assert_eq!(net.node_count(), 3);
        let actors = net.shutdown();
        assert_eq!(actors.len(), 3);
        assert!(actors[0].downcast_ref::<Echo>().is_some());
    }
}
