//! Property-based tests of the discrete-event engine: causality, clock
//! monotonicity, message conservation and bit-for-bit determinism under
//! arbitrary workloads and fault schedules.

use proptest::prelude::*;
use whisper_simnet::{
    Actor, Context, FaultPlan, NodeId, PerfectLink, SimDuration, SimNet, SimTime, SwitchedLan, Wire,
};

#[derive(Debug, Clone)]
struct Msg {
    hops_left: u8,
    payload: u32,
}

impl Wire for Msg {
    fn wire_size(&self) -> usize {
        64 + self.payload as usize % 512
    }
    fn kind(&self) -> &'static str {
        "msg"
    }
}

/// Forwards messages around a ring until their hop budget runs out,
/// recording receive timestamps.
struct RingHopper {
    next: NodeId,
    received_at: Vec<SimTime>,
}

impl Actor<Msg> for RingHopper {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        self.received_at.push(ctx.now());
        if msg.hops_left > 0 {
            ctx.send(
                self.next,
                Msg {
                    hops_left: msg.hops_left - 1,
                    ..msg
                },
            );
        }
    }
}

fn build_ring(n: usize, seed: u64, lossy: bool) -> (SimNet<Msg>, Vec<NodeId>) {
    let mut net = if lossy {
        SimNet::with_link(seed, SwitchedLan::lossy(0.1))
    } else {
        SimNet::with_link(seed, SwitchedLan::paper_testbed())
    };
    let ids: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    for i in 0..n {
        let added = net.add_node(RingHopper {
            next: ids[(i + 1) % n],
            received_at: Vec::new(),
        });
        assert_eq!(added, ids[i]);
    }
    (net, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-node receive timestamps never decrease, and the global clock at
    /// quiescence bounds them all.
    #[test]
    fn clocks_are_monotone(
        n in 2usize..6,
        script in proptest::collection::vec((0usize..6, 0usize..6, 0u8..12, any::<u32>()), 1..12),
        seed in any::<u64>(),
    ) {
        let (mut net, ids) = build_ring(n, seed, false);
        for &(s, d, hops, payload) in &script {
            net.inject(ids[s % n], ids[d % n], Msg { hops_left: hops, payload });
        }
        let end = net.run_until_quiescent();
        for &id in &ids {
            let ts = &net.node::<RingHopper>(id).received_at;
            prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps decrease: {ts:?}");
            prop_assert!(ts.iter().all(|&t| t <= end));
        }
    }

    /// sent = delivered + lost + to-down + partitioned, with every message
    /// accounted for exactly once.
    #[test]
    fn message_conservation_holds(
        n in 2usize..6,
        script in proptest::collection::vec((0usize..6, 0usize..6, 0u8..12, any::<u32>()), 1..12),
        seed in any::<u64>(),
        lossy in any::<bool>(),
    ) {
        let (mut net, ids) = build_ring(n, seed, lossy);
        for &(s, d, hops, payload) in &script {
            net.inject(ids[s % n], ids[d % n], Msg { hops_left: hops, payload });
        }
        net.run_until_quiescent();
        let m = net.metrics();
        prop_assert_eq!(
            m.messages_sent(),
            m.messages_delivered()
                + m.messages_lost()
                + m.messages_to_down_nodes()
                + m.messages_partitioned()
        );
        prop_assert!(m.bytes_sent() >= m.messages_sent() * 64);
    }

    /// The same seed and workload replay to identical metrics and final
    /// clock; the hop chain length is deterministic even under loss.
    #[test]
    fn replay_is_bit_for_bit(
        n in 2usize..5,
        script in proptest::collection::vec((0usize..5, 0usize..5, 0u8..8, any::<u32>()), 1..8),
        seed in any::<u64>(),
        lossy in any::<bool>(),
    ) {
        let run = || {
            let (mut net, ids) = build_ring(n, seed, lossy);
            for &(s, d, hops, payload) in &script {
                net.inject(ids[s % n], ids[d % n], Msg { hops_left: hops, payload });
            }
            let end = net.run_until_quiescent();
            let stamps: Vec<Vec<SimTime>> = ids
                .iter()
                .map(|&id| net.node::<RingHopper>(id).received_at.clone())
                .collect();
            (end, net.metrics().messages_sent(), net.metrics().bytes_sent(), stamps)
        };
        prop_assert_eq!(run(), run());
    }

    /// Crashing a node never deadlocks the run, and messages to it while
    /// down are counted as drops, not deliveries.
    #[test]
    fn crashes_account_for_drops(
        script in proptest::collection::vec((0usize..3, 0usize..3, 0u8..6, any::<u32>()), 1..8),
        seed in any::<u64>(),
        crash_victim in 0usize..3,
        crash_at_us in 0u64..5_000,
    ) {
        let (mut net, ids) = build_ring(3, seed, false);
        let mut plan = FaultPlan::new();
        plan.crash_at(ids[crash_victim], SimTime::from_micros(crash_at_us));
        net.apply_faults(&plan);
        for &(s, d, hops, payload) in &script {
            net.inject(ids[s % 3], ids[d % 3], Msg { hops_left: hops, payload });
        }
        net.run_until_quiescent();
        let m = net.metrics();
        prop_assert_eq!(
            m.messages_sent(),
            m.messages_delivered() + m.messages_to_down_nodes() + m.messages_lost()
                + m.messages_partitioned()
        );
        prop_assert!(!net.is_up(ids[crash_victim]));
    }
}

/// Timers armed with equal deadlines fire in arming order; cancellation is
/// exact.
#[test]
fn timer_order_and_cancellation_are_exact() {
    struct TimerScript {
        fired: Vec<u64>,
    }
    impl Actor<Msg> for TimerScript {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let d = SimDuration::from_millis(1);
            let _t1 = ctx.set_timer(d, 1);
            let t2 = ctx.set_timer(d, 2);
            let _t3 = ctx.set_timer(d, 3);
            ctx.cancel_timer(t2);
        }
        fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
        fn on_timer(&mut self, _: &mut Context<'_, Msg>, token: u64) {
            self.fired.push(token);
        }
    }
    let mut net: SimNet<Msg> = SimNet::with_link(1, PerfectLink);
    let n = net.add_node(TimerScript { fired: Vec::new() });
    net.run_until_quiescent();
    assert_eq!(net.node::<TimerScript>(n).fired, vec![1, 3]);
}

/// The same actor wiring must exchange the same number of messages on the
/// deterministic simulator and the real threaded runtime — the property
/// that makes wall-clock Criterion numbers comparable to simulated runs.
#[test]
fn simnet_and_threadnet_agree_on_message_counts() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct Bouncer {
        seen: Arc<AtomicU64>,
    }
    impl Actor<Msg> for Bouncer {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            self.seen.fetch_add(1, Ordering::SeqCst);
            if msg.hops_left > 0 {
                ctx.send(
                    from,
                    Msg {
                        hops_left: msg.hops_left - 1,
                        ..msg
                    },
                );
            }
        }
    }

    const HOPS: u8 = 11;

    // Simulated run.
    let sim_seen = Arc::new(AtomicU64::new(0));
    let mut sim: SimNet<Msg> = SimNet::new(3);
    let a = sim.add_node(Bouncer {
        seen: sim_seen.clone(),
    });
    let b = sim.add_node(Bouncer {
        seen: sim_seen.clone(),
    });
    sim.inject(
        a,
        b,
        Msg {
            hops_left: HOPS,
            payload: 1,
        },
    );
    sim.run_until_quiescent();
    let sim_sent = sim.metrics().messages_sent();

    // Threaded run of the identical actors.
    let thr_seen = Arc::new(AtomicU64::new(0));
    let mut builder = whisper_simnet::threadnet::ThreadNetBuilder::new();
    let ta = builder.add_node(Bouncer {
        seen: thr_seen.clone(),
    });
    let tb = builder.add_node(Bouncer {
        seen: thr_seen.clone(),
    });
    let net = builder.start();
    net.inject(
        ta,
        tb,
        Msg {
            hops_left: HOPS,
            payload: 1,
        },
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while thr_seen.load(Ordering::SeqCst) < (HOPS as u64 + 1) {
        assert!(
            std::time::Instant::now() < deadline,
            "threadnet volley stalled"
        );
        std::thread::yield_now();
    }
    let thr_sent = net.metrics_snapshot().messages_sent();
    net.shutdown();

    assert_eq!(
        sim_seen.load(Ordering::SeqCst),
        thr_seen.load(Ordering::SeqCst)
    );
    assert_eq!(sim_sent, thr_sent);
}
