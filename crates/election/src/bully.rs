//! The Bully election algorithm (Garcia-Molina 1982).

use crate::msg::{ElectionEvent, ElectionMsg, Output, TimerRequest};
use crate::ElectionProtocol;
use std::collections::BTreeSet;
use whisper_obs::{Recorder, RequestId, SpanId};
use whisper_p2p::PeerId;
use whisper_simnet::{SimDuration, SimTime};

/// Timeouts of the Bully algorithm.
///
/// `answer_timeout` bounds how long an initiator waits for an `Answer`
/// from a higher peer before declaring victory; `coordinator_timeout`
/// bounds how long a suppressed initiator waits for the eventual
/// `Coordinator` announcement before re-starting the election. These two
/// timeouts are exactly the "considerably high" re-election delay the paper
/// blames for multi-second worst-case RTTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BullyConfig {
    /// Wait for `Answer` after sending `Election`.
    pub answer_timeout: SimDuration,
    /// Wait for `Coordinator` after receiving an `Answer`.
    pub coordinator_timeout: SimDuration,
    /// Suppress fresh elections for this long after one concluded (and a
    /// coordinator is known). Without it, stray in-flight `Election`
    /// messages re-trigger full elections at every idle node and a
    /// simultaneous boot turns into a message storm; JXTA-era deployments
    /// rate-limited elections the same way.
    pub cooldown: SimDuration,
}

impl Default for BullyConfig {
    /// JXTA-era defaults: 1 s answer wait, 2 s coordinator wait.
    fn default() -> Self {
        BullyConfig {
            answer_timeout: SimDuration::from_secs(1),
            coordinator_timeout: SimDuration::from_secs(2),
            cooldown: SimDuration::from_millis(500),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    AwaitingAnswers,
    AwaitingCoordinator,
}

const KIND_ANSWER_WAIT: u64 = 0;
const KIND_COORD_WAIT: u64 = 1;

fn encode_token(epoch: u64, kind: u64) -> u64 {
    epoch << 1 | kind
}

fn decode_token(token: u64) -> (u64, u64) {
    (token >> 1, token & 1)
}

/// Per-peer state of the Bully algorithm.
///
/// The peer with the highest [`PeerId`] among live members always wins; any
/// peer that suspects the coordinator starts an election. See the crate
/// docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct BullyNode {
    me: PeerId,
    members: BTreeSet<PeerId>,
    coordinator: Option<PeerId>,
    phase: Phase,
    /// Incremented whenever outstanding timers become stale.
    epoch: u64,
    config: BullyConfig,
    /// Statistics: how many elections this node started.
    elections_started: u64,
    /// When the last election this node observed concluded.
    last_concluded: Option<SimTime>,
    /// Optional observability recorder; `None` costs nothing.
    obs: Option<Recorder>,
    /// The election run currently traced by this node, if any:
    /// `(pseudo-request, span, start)`. One run may cover several retries.
    obs_run: Option<(RequestId, SpanId, SimTime)>,
}

impl BullyNode {
    /// Creates a node for `me` within `members` (which should include
    /// `me`; it is inserted if missing).
    pub fn new(me: PeerId, members: impl IntoIterator<Item = PeerId>, config: BullyConfig) -> Self {
        let mut members: BTreeSet<PeerId> = members.into_iter().collect();
        members.insert(me);
        BullyNode {
            me,
            members,
            coordinator: None,
            phase: Phase::Idle,
            epoch: 0,
            config,
            elections_started: 0,
            last_concluded: None,
            obs: None,
            obs_run: None,
        }
    }

    /// Installs an observability recorder. Elections this node initiates
    /// are traced as `election.run` spans under a pseudo-request, and
    /// election counters/durations land in the recorder's registry.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs = Some(rec);
    }

    /// Opens (or continues) the traced election run for this node.
    fn obs_begin(&mut self, now: SimTime) {
        if let Some(rec) = &self.obs {
            rec.incr("election.started", 1);
            if self.obs_run.is_none() {
                let req = rec.begin_request(format!("election by {}", self.me), now);
                let span = rec.start_span("election.run", req, now);
                rec.set_attr(span, "initiator", self.me.value());
                rec.set_attr(span, "epoch", self.epoch + 1);
                self.obs_run = Some((req, span, now));
            }
        }
    }

    /// Closes the traced run (if any) with the elected coordinator.
    fn obs_conclude(&mut self, winner: PeerId, now: SimTime) {
        if let Some(rec) = &self.obs {
            rec.incr("election.concluded", 1);
            if let Some((_, span, started)) = self.obs_run.take() {
                rec.set_attr(span, "winner", winner.value());
                rec.end_span(span, now);
                rec.record_duration("election.duration", now.since(started));
            }
        }
    }

    /// Current group membership, in id order.
    pub fn members(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.members.iter().copied()
    }

    /// How many elections this node has initiated.
    pub fn elections_started(&self) -> u64 {
        self.elections_started
    }

    /// Whether this node currently believes it is the coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.coordinator == Some(self.me)
    }

    /// The election term: monotone, incremented on every state transition
    /// (election start, retry, victory, coordinator announcement), so two
    /// snapshots of the same node are ordered by it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The protocol phase as a static label, for introspection snapshots:
    /// `idle`, `awaiting-answers`, or `awaiting-coordinator`.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Idle => "idle",
            Phase::AwaitingAnswers => "awaiting-answers",
            Phase::AwaitingCoordinator => "awaiting-coordinator",
        }
    }

    fn higher_members(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .copied()
            .filter(|&p| p > self.me)
            .collect()
    }

    fn other_members(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .copied()
            .filter(|&p| p != self.me)
            .collect()
    }

    fn declare_victory(&mut self, now: SimTime) -> Output {
        self.obs_conclude(self.me, now);
        self.coordinator = Some(self.me);
        self.phase = Phase::Idle;
        self.epoch += 1;
        self.last_concluded = Some(now);
        Output {
            sends: self
                .other_members()
                .into_iter()
                .map(|p| (p, ElectionMsg::Coordinator { from: self.me }))
                .collect(),
            timers: Vec::new(),
            events: vec![ElectionEvent::CoordinatorElected(self.me)],
        }
    }
}

impl ElectionProtocol for BullyNode {
    fn me(&self) -> PeerId {
        self.me
    }

    fn coordinator(&self) -> Option<PeerId> {
        self.coordinator
    }

    fn start_election(&mut self, now: SimTime) -> Output {
        if self.phase != Phase::Idle {
            // an election is already in flight; let it finish
            return Output::none();
        }
        if let (Some(concluded), Some(_)) = (self.last_concluded, self.coordinator) {
            if concluded <= now && now.since(concluded) < self.config.cooldown {
                // an election just settled on a coordinator; don't storm
                return Output::none();
            }
        }
        self.elections_started += 1;
        self.obs_begin(now);
        let higher = self.higher_members();
        if higher.is_empty() {
            return self.declare_victory(now);
        }
        self.phase = Phase::AwaitingAnswers;
        self.epoch += 1;
        Output {
            sends: higher
                .into_iter()
                .map(|p| (p, ElectionMsg::Election { from: self.me }))
                .collect(),
            timers: vec![TimerRequest {
                token: encode_token(self.epoch, KIND_ANSWER_WAIT),
                delay: self.config.answer_timeout,
            }],
            events: Vec::new(),
        }
    }

    fn on_message(&mut self, from: PeerId, msg: ElectionMsg, now: SimTime) -> Output {
        match msg {
            ElectionMsg::Election { from: initiator } => {
                debug_assert_eq!(from, initiator);
                let mut out = Output::none();
                if initiator < self.me {
                    // bully the lower peer, then make sure an election that
                    // includes us is running (rate-limited by the cooldown)
                    out.sends
                        .push((initiator, ElectionMsg::Answer { from: self.me }));
                    if self.coordinator == Some(self.me) {
                        // re-assert instead of re-electing
                        out.sends
                            .push((initiator, ElectionMsg::Coordinator { from: self.me }));
                    } else {
                        out.merge(self.start_election(now));
                    }
                }
                out
            }
            ElectionMsg::Answer { .. } => {
                if self.phase == Phase::AwaitingAnswers {
                    self.phase = Phase::AwaitingCoordinator;
                    self.epoch += 1;
                    Output {
                        sends: Vec::new(),
                        timers: vec![TimerRequest {
                            token: encode_token(self.epoch, KIND_COORD_WAIT),
                            delay: self.config.coordinator_timeout,
                        }],
                        events: Vec::new(),
                    }
                } else {
                    Output::none()
                }
            }
            ElectionMsg::Coordinator { from: coord } => {
                self.obs_conclude(coord, now);
                self.coordinator = Some(coord);
                self.phase = Phase::Idle;
                self.epoch += 1;
                self.last_concluded = Some(now);
                Output {
                    sends: Vec::new(),
                    timers: Vec::new(),
                    events: vec![ElectionEvent::CoordinatorElected(coord)],
                }
            }
            // Ring messages are not ours; ignore gracefully.
            ElectionMsg::RingElection { .. } | ElectionMsg::RingCoordinator { .. } => {
                Output::none()
            }
        }
    }

    fn on_timer(&mut self, token: u64, now: SimTime) -> Output {
        let (epoch, kind) = decode_token(token);
        if epoch != self.epoch {
            return Output::none(); // stale timer
        }
        match (kind, self.phase) {
            (KIND_ANSWER_WAIT, Phase::AwaitingAnswers) => {
                // nobody higher answered: we win
                self.declare_victory(now)
            }
            (KIND_COORD_WAIT, Phase::AwaitingCoordinator) => {
                // the higher peer that answered died before announcing;
                // clear the stale conclusion so the retry is not suppressed
                self.phase = Phase::Idle;
                self.epoch += 1;
                self.last_concluded = None;
                self.start_election(now)
            }
            _ => Output::none(),
        }
    }

    fn set_members(&mut self, members: &[PeerId]) {
        self.members = members.iter().copied().collect();
        self.members.insert(self.me);
    }

    fn remove_member(&mut self, peer: PeerId) {
        if peer != self.me {
            self.members.remove(&peer);
            if self.coordinator == Some(peer) {
                self.coordinator = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn ids(ns: &[u64]) -> Vec<PeerId> {
        ns.iter().map(|&n| PeerId::new(n)).collect()
    }

    fn node(me: u64, members: &[u64]) -> BullyNode {
        BullyNode::new(PeerId::new(me), ids(members), BullyConfig::default())
    }

    #[test]
    fn highest_wins_immediately() {
        let mut n = node(3, &[1, 2, 3]);
        let out = n.start_election(t0());
        assert_eq!(out.sends.len(), 2);
        assert!(out.sends.iter().all(
            |(_, m)| matches!(m, ElectionMsg::Coordinator { from } if *from == PeerId::new(3))
        ));
        assert!(n.is_coordinator());
        assert_eq!(n.elections_started(), 1);
    }

    #[test]
    fn lower_peer_queries_higher_and_wins_on_silence() {
        let mut n = node(1, &[1, 2, 3]);
        let out = n.start_election(t0());
        // elections go to 2 and 3 only
        assert_eq!(out.sends.len(), 2);
        assert!(out
            .sends
            .iter()
            .all(|(to, m)| { *to > PeerId::new(1) && matches!(m, ElectionMsg::Election { .. }) }));
        assert_eq!(out.timers.len(), 1);
        // silence: the answer timer fires
        let out2 = n.on_timer(out.timers[0].token, t0());
        assert!(n.is_coordinator());
        assert_eq!(
            out2.events,
            vec![ElectionEvent::CoordinatorElected(PeerId::new(1))]
        );
        // Coordinator goes to everyone else
        assert_eq!(out2.sends.len(), 2);
    }

    #[test]
    fn answer_suppresses_then_coordinator_arrives() {
        let mut n = node(1, &[1, 2, 3]);
        let out = n.start_election(t0());
        let answer_token = out.timers[0].token;
        let out = n.on_message(
            PeerId::new(3),
            ElectionMsg::Answer {
                from: PeerId::new(3),
            },
            t0(),
        );
        assert_eq!(out.timers.len(), 1);
        let coord_token = out.timers[0].token;
        // stale answer timer is ignored
        assert_eq!(n.on_timer(answer_token, t0()), Output::none());
        // the higher peer announces
        let out = n.on_message(
            PeerId::new(3),
            ElectionMsg::Coordinator {
                from: PeerId::new(3),
            },
            t0(),
        );
        assert_eq!(
            out.events,
            vec![ElectionEvent::CoordinatorElected(PeerId::new(3))]
        );
        assert_eq!(n.coordinator(), Some(PeerId::new(3)));
        // stale coordinator timer is ignored
        assert_eq!(n.on_timer(coord_token, t0()), Output::none());
    }

    #[test]
    fn coordinator_silence_restarts_election() {
        let mut n = node(1, &[1, 2]);
        let _ = n.start_election(t0());
        let out = n.on_message(
            PeerId::new(2),
            ElectionMsg::Answer {
                from: PeerId::new(2),
            },
            t0(),
        );
        let coord_token = out.timers[0].token;
        // peer 2 never announces; the coordinator-wait timer fires
        let out = n.on_timer(coord_token, t0());
        // a fresh election to peer 2 starts
        assert_eq!(out.sends.len(), 1);
        assert!(matches!(out.sends[0].1, ElectionMsg::Election { .. }));
        assert_eq!(n.elections_started(), 2);
    }

    #[test]
    fn election_from_lower_peer_is_bullied() {
        let mut n = node(2, &[1, 2, 3]);
        let out = n.on_message(
            PeerId::new(1),
            ElectionMsg::Election {
                from: PeerId::new(1),
            },
            t0(),
        );
        // answers the lower peer AND forwards the election upward
        assert!(out
            .sends
            .iter()
            .any(|(to, m)| *to == PeerId::new(1) && matches!(m, ElectionMsg::Answer { .. })));
        assert!(out
            .sends
            .iter()
            .any(|(to, m)| *to == PeerId::new(3) && matches!(m, ElectionMsg::Election { .. })));
    }

    #[test]
    fn duplicate_start_while_electing_is_noop() {
        let mut n = node(1, &[1, 2]);
        let first = n.start_election(t0());
        assert!(!first.sends.is_empty());
        assert_eq!(n.start_election(t0()), Output::none());
        assert_eq!(n.elections_started(), 1);
    }

    #[test]
    fn membership_updates_affect_victory() {
        let mut n = node(2, &[1, 2, 3]);
        n.remove_member(PeerId::new(3));
        let out = n.start_election(t0());
        // 2 is now the highest: immediate victory, announcement to 1 only
        assert!(n.is_coordinator());
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].0, PeerId::new(1));
    }

    #[test]
    fn removing_dead_coordinator_clears_belief() {
        let mut n = node(1, &[1, 2]);
        let _ = n.on_message(
            PeerId::new(2),
            ElectionMsg::Coordinator {
                from: PeerId::new(2),
            },
            t0(),
        );
        assert_eq!(n.coordinator(), Some(PeerId::new(2)));
        n.remove_member(PeerId::new(2));
        assert_eq!(n.coordinator(), None);
    }

    #[test]
    fn set_members_always_includes_self() {
        let mut n = node(5, &[5]);
        n.set_members(&ids(&[1, 2]));
        assert_eq!(n.members().collect::<Vec<_>>(), ids(&[1, 2, 5]));
    }

    #[test]
    fn recorder_traces_election_runs() {
        let rec = Recorder::new();
        let mut n = node(1, &[1, 2]);
        n.set_recorder(rec.clone());
        let out = n.start_election(t0());
        assert_eq!(rec.open_span_count(), 1, "run open while awaiting answers");
        let _ = n.on_timer(out.timers[0].token, SimTime::from_micros(1_000_000));
        assert!(n.is_coordinator());
        assert_eq!(rec.open_span_count(), 0);
        assert_eq!(rec.counter("election.started"), 1);
        assert_eq!(rec.counter("election.concluded"), 1);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "election.run");
        assert_eq!(spans[0].duration(), Some(SimDuration::from_secs(1)));
        // the paper's re-election delay lands in the duration histogram
        let h = rec.duration_histogram("election.duration").unwrap();
        assert_eq!(h.max(), Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn ring_messages_ignored() {
        let mut n = node(1, &[1, 2]);
        let out = n.on_message(
            PeerId::new(2),
            ElectionMsg::RingCoordinator {
                origin: PeerId::new(2),
                coordinator: PeerId::new(2),
            },
            t0(),
        );
        assert_eq!(out, Output::none());
    }
}
