//! A Chang–Roberts-style ring election, the ablation baseline.
//!
//! Members are arranged in a logical ring in ascending id order. The
//! election token circulates once collecting candidate ids; the initiator
//! then announces `max(candidates)` with a second circulation. Message cost
//! is Θ(2n) per election regardless of who initiates — contrast with
//! Bully's O(n²) worst case but O(n) best case when the highest peer
//! detects the failure.

use crate::msg::{ElectionEvent, ElectionMsg, Output};
use crate::ElectionProtocol;
use std::collections::BTreeSet;
use whisper_p2p::PeerId;
use whisper_simnet::SimTime;

/// Per-peer state of the ring election.
#[derive(Debug, Clone)]
pub struct RingNode {
    me: PeerId,
    members: BTreeSet<PeerId>,
    coordinator: Option<PeerId>,
    electing: bool,
}

impl RingNode {
    /// Creates a node for `me` within `members` (self inserted if missing).
    pub fn new(me: PeerId, members: impl IntoIterator<Item = PeerId>) -> Self {
        let mut members: BTreeSet<PeerId> = members.into_iter().collect();
        members.insert(me);
        RingNode {
            me,
            members,
            coordinator: None,
            electing: false,
        }
    }

    /// The next member after `self.me` in ascending-id ring order.
    fn successor(&self) -> Option<PeerId> {
        self.members
            .iter()
            .copied()
            .find(|&p| p > self.me)
            .or_else(|| self.members.iter().copied().find(|&p| p != self.me))
    }

    /// Whether this node believes it is the coordinator.
    pub fn is_coordinator(&self) -> bool {
        self.coordinator == Some(self.me)
    }
}

impl ElectionProtocol for RingNode {
    fn me(&self) -> PeerId {
        self.me
    }

    fn coordinator(&self) -> Option<PeerId> {
        self.coordinator
    }

    fn start_election(&mut self, _now: SimTime) -> Output {
        if self.electing {
            return Output::none();
        }
        let Some(succ) = self.successor() else {
            // alone in the ring
            self.coordinator = Some(self.me);
            return Output {
                events: vec![ElectionEvent::CoordinatorElected(self.me)],
                ..Output::none()
            };
        };
        self.electing = true;
        Output {
            sends: vec![(
                succ,
                ElectionMsg::RingElection {
                    origin: self.me,
                    candidates: vec![self.me],
                },
            )],
            ..Output::none()
        }
    }

    fn on_message(&mut self, _from: PeerId, msg: ElectionMsg, _now: SimTime) -> Output {
        match msg {
            ElectionMsg::RingElection {
                origin,
                mut candidates,
            } => {
                let Some(succ) = self.successor() else {
                    return Output::none();
                };
                if origin == self.me {
                    // the token came home: decide and announce
                    let coordinator = candidates.iter().copied().max().unwrap_or(self.me);
                    self.coordinator = Some(coordinator);
                    self.electing = false;
                    return Output {
                        sends: vec![(
                            succ,
                            ElectionMsg::RingCoordinator {
                                origin: self.me,
                                coordinator,
                            },
                        )],
                        timers: Vec::new(),
                        events: vec![ElectionEvent::CoordinatorElected(coordinator)],
                    };
                }
                candidates.push(self.me);
                Output {
                    sends: vec![(succ, ElectionMsg::RingElection { origin, candidates })],
                    ..Output::none()
                }
            }
            ElectionMsg::RingCoordinator {
                origin,
                coordinator,
            } => {
                if origin == self.me {
                    // announcement completed the circle
                    return Output::none();
                }
                self.coordinator = Some(coordinator);
                self.electing = false;
                let mut out = Output {
                    events: vec![ElectionEvent::CoordinatorElected(coordinator)],
                    ..Output::none()
                };
                if let Some(succ) = self.successor() {
                    out.sends.push((
                        succ,
                        ElectionMsg::RingCoordinator {
                            origin,
                            coordinator,
                        },
                    ));
                }
                out
            }
            // Bully messages are not ours; ignore gracefully.
            _ => Output::none(),
        }
    }

    fn on_timer(&mut self, _token: u64, _now: SimTime) -> Output {
        Output::none()
    }

    fn set_members(&mut self, members: &[PeerId]) {
        self.members = members.iter().copied().collect();
        self.members.insert(self.me);
    }

    fn remove_member(&mut self, peer: PeerId) {
        if peer != self.me {
            self.members.remove(&peer);
            if self.coordinator == Some(peer) {
                self.coordinator = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring(ids: &[u64]) -> HashMap<PeerId, RingNode> {
        let members: Vec<PeerId> = ids.iter().map(|&n| PeerId::new(n)).collect();
        members
            .iter()
            .map(|&m| (m, RingNode::new(m, members.clone())))
            .collect()
    }

    /// Runs messages to fixpoint, returning the total message count.
    fn pump(
        nodes: &mut HashMap<PeerId, RingNode>,
        mut inbox: Vec<(PeerId, PeerId, ElectionMsg)>,
    ) -> usize {
        let mut count = inbox.len();
        while let Some((from, to, msg)) = inbox.pop() {
            let out = nodes
                .get_mut(&to)
                .expect("member")
                .on_message(from, msg, SimTime::ZERO);
            for (dest, m) in out.sends {
                count += 1;
                inbox.push((to, dest, m));
            }
        }
        count
    }

    #[test]
    fn ring_elects_the_maximum() {
        let mut nodes = ring(&[1, 2, 3, 4]);
        let initiator = PeerId::new(2);
        let out = nodes
            .get_mut(&initiator)
            .unwrap()
            .start_election(SimTime::ZERO);
        let inbox: Vec<_> = out
            .sends
            .into_iter()
            .map(|(to, m)| (initiator, to, m))
            .collect();
        pump(&mut nodes, inbox);
        for (_, n) in nodes {
            assert_eq!(n.coordinator(), Some(PeerId::new(4)));
        }
    }

    #[test]
    fn ring_cost_is_about_two_n() {
        let mut nodes = ring(&[1, 2, 3, 4, 5, 6]);
        let initiator = PeerId::new(1);
        let out = nodes
            .get_mut(&initiator)
            .unwrap()
            .start_election(SimTime::ZERO);
        let inbox: Vec<_> = out
            .sends
            .into_iter()
            .map(|(to, m)| (initiator, to, m))
            .collect();
        let total = pump(&mut nodes, inbox);
        // n election hops + n announcement hops
        assert_eq!(total, 12);
    }

    #[test]
    fn successor_wraps_around() {
        let nodes = ring(&[1, 5, 9]);
        assert_eq!(nodes[&PeerId::new(9)].successor(), Some(PeerId::new(1)));
        assert_eq!(nodes[&PeerId::new(1)].successor(), Some(PeerId::new(5)));
    }

    #[test]
    fn singleton_ring_self_elects() {
        let mut n = RingNode::new(PeerId::new(7), []);
        let out = n.start_election(SimTime::ZERO);
        assert!(out.sends.is_empty());
        assert_eq!(
            out.events,
            vec![ElectionEvent::CoordinatorElected(PeerId::new(7))]
        );
        assert!(n.is_coordinator());
    }

    #[test]
    fn election_with_removed_member_skips_it() {
        let mut nodes = ring(&[1, 2, 3]);
        // every node learns that 3 died
        for n in nodes.values_mut() {
            n.remove_member(PeerId::new(3));
        }
        nodes.remove(&PeerId::new(3));
        let initiator = PeerId::new(1);
        let out = nodes
            .get_mut(&initiator)
            .unwrap()
            .start_election(SimTime::ZERO);
        let inbox: Vec<_> = out
            .sends
            .into_iter()
            .map(|(to, m)| (initiator, to, m))
            .collect();
        pump(&mut nodes, inbox);
        for (_, n) in nodes {
            assert_eq!(n.coordinator(), Some(PeerId::new(2)));
        }
    }

    #[test]
    fn duplicate_start_is_noop_and_bully_msgs_ignored() {
        let mut n = RingNode::new(PeerId::new(1), [PeerId::new(2)]);
        let first = n.start_election(SimTime::ZERO);
        assert_eq!(first.sends.len(), 1);
        assert_eq!(n.start_election(SimTime::ZERO), Output::none());
        assert_eq!(
            n.on_message(
                PeerId::new(2),
                ElectionMsg::Answer {
                    from: PeerId::new(2)
                },
                SimTime::ZERO
            ),
            Output::none()
        );
    }
}
