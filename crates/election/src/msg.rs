//! Election wire messages, timer requests and surfaced events.

use whisper_p2p::PeerId;
use whisper_simnet::SimDuration;
use whisper_wire::{Decode, Encode, Reader, WireError};

/// A message of either election protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionMsg {
    /// Bully: "I am holding an election" — sent to higher-id peers.
    Election {
        /// The initiating peer.
        from: PeerId,
    },
    /// Bully: "I am alive and outrank you; stand down."
    Answer {
        /// The answering (higher-id) peer.
        from: PeerId,
    },
    /// Bully: victory announcement.
    Coordinator {
        /// The new coordinator.
        from: PeerId,
    },
    /// Ring: the election token accumulating candidate ids.
    RingElection {
        /// The peer that started this circulation.
        origin: PeerId,
        /// Ids collected so far.
        candidates: Vec<PeerId>,
    },
    /// Ring: the result announcement circulating once around the ring.
    RingCoordinator {
        /// The peer announcing the result.
        origin: PeerId,
        /// The elected coordinator.
        coordinator: PeerId,
    },
}

impl ElectionMsg {
    /// Exact serialized size in bytes: `self.encode().len()`.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }

    /// Metric label.
    pub fn kind(&self) -> &'static str {
        match self {
            ElectionMsg::Election { .. } => "election",
            ElectionMsg::Answer { .. } => "election-answer",
            ElectionMsg::Coordinator { .. } => "coordinator",
            ElectionMsg::RingElection { .. } => "ring-election",
            ElectionMsg::RingCoordinator { .. } => "ring-coordinator",
        }
    }
}

impl Encode for ElectionMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ElectionMsg::Election { from } => {
                out.push(0);
                from.encode_into(out);
            }
            ElectionMsg::Answer { from } => {
                out.push(1);
                from.encode_into(out);
            }
            ElectionMsg::Coordinator { from } => {
                out.push(2);
                from.encode_into(out);
            }
            ElectionMsg::RingElection { origin, candidates } => {
                out.push(3);
                origin.encode_into(out);
                candidates.encode_into(out);
            }
            ElectionMsg::RingCoordinator {
                origin,
                coordinator,
            } => {
                out.push(4);
                origin.encode_into(out);
                coordinator.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ElectionMsg::Election { from }
            | ElectionMsg::Answer { from }
            | ElectionMsg::Coordinator { from } => from.encoded_len(),
            ElectionMsg::RingElection { origin, candidates } => {
                origin.encoded_len() + candidates.encoded_len()
            }
            ElectionMsg::RingCoordinator {
                origin,
                coordinator,
            } => origin.encoded_len() + coordinator.encoded_len(),
        }
    }
}

impl Decode for ElectionMsg {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ElectionMsg::Election {
                from: PeerId::decode_from(r)?,
            }),
            1 => Ok(ElectionMsg::Answer {
                from: PeerId::decode_from(r)?,
            }),
            2 => Ok(ElectionMsg::Coordinator {
                from: PeerId::decode_from(r)?,
            }),
            3 => Ok(ElectionMsg::RingElection {
                origin: PeerId::decode_from(r)?,
                candidates: Vec::decode_from(r)?,
            }),
            4 => Ok(ElectionMsg::RingCoordinator {
                origin: PeerId::decode_from(r)?,
                coordinator: PeerId::decode_from(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "ElectionMsg",
                tag,
            }),
        }
    }
}

/// A timer the hosting actor must arm on behalf of the state machine.
///
/// The token must be passed back verbatim via
/// [`ElectionProtocol::on_timer`](crate::ElectionProtocol::on_timer);
/// superseded timers are ignored internally, so the host never needs to
/// cancel anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRequest {
    /// Opaque token encoding the protocol phase and its epoch.
    pub token: u64,
    /// Delay after which the timer should fire.
    pub delay: SimDuration,
}

/// An event surfaced to the hosting actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionEvent {
    /// A coordinator was agreed on (possibly this node itself).
    CoordinatorElected(PeerId),
}

/// Everything an election call wants the host to do.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Output {
    /// Messages to transmit.
    pub sends: Vec<(PeerId, ElectionMsg)>,
    /// Timers to arm.
    pub timers: Vec<TimerRequest>,
    /// Events to surface.
    pub events: Vec<ElectionEvent>,
}

impl Output {
    /// An empty output.
    pub fn none() -> Self {
        Output::default()
    }

    /// Merges another output into this one, preserving order.
    pub fn merge(&mut self, other: Output) {
        self.sends.extend(other.sends);
        self.timers.extend(other.timers);
        self.events.extend(other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_kinds() {
        let e = ElectionMsg::Election {
            from: PeerId::new(1),
        };
        assert_eq!(e.kind(), "election");
        let ring = ElectionMsg::RingElection {
            origin: PeerId::new(1),
            candidates: vec![PeerId::new(1), PeerId::new(2)],
        };
        assert!(ring.wire_size() > e.wire_size());
        assert_eq!(ring.kind(), "ring-election");
    }

    #[test]
    fn wire_size_is_exact_and_messages_round_trip() {
        let msgs = [
            ElectionMsg::Election {
                from: PeerId::new(1),
            },
            ElectionMsg::Answer {
                from: PeerId::new(2),
            },
            ElectionMsg::Coordinator {
                from: PeerId::new(u64::MAX),
            },
            ElectionMsg::RingElection {
                origin: PeerId::new(1),
                candidates: vec![PeerId::new(1), PeerId::new(200), PeerId::new(3)],
            },
            ElectionMsg::RingCoordinator {
                origin: PeerId::new(1),
                coordinator: PeerId::new(9),
            },
        ];
        for m in msgs {
            assert_eq!(m.wire_size(), m.encode().len());
            assert_eq!(ElectionMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn truncated_election_bytes_error() {
        let bytes = ElectionMsg::RingElection {
            origin: PeerId::new(300),
            candidates: vec![PeerId::new(1)],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(ElectionMsg::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Output::none();
        a.sends.push((
            PeerId::new(1),
            ElectionMsg::Answer {
                from: PeerId::new(2),
            },
        ));
        let mut b = Output::none();
        b.events
            .push(ElectionEvent::CoordinatorElected(PeerId::new(2)));
        b.timers.push(TimerRequest {
            token: 9,
            delay: SimDuration::from_millis(1),
        });
        a.merge(b);
        assert_eq!(a.sends.len(), 1);
        assert_eq!(a.timers.len(), 1);
        assert_eq!(a.events.len(), 1);
    }
}
