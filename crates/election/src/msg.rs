//! Election wire messages, timer requests and surfaced events.

use whisper_p2p::PeerId;
use whisper_simnet::SimDuration;

/// A message of either election protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionMsg {
    /// Bully: "I am holding an election" — sent to higher-id peers.
    Election {
        /// The initiating peer.
        from: PeerId,
    },
    /// Bully: "I am alive and outrank you; stand down."
    Answer {
        /// The answering (higher-id) peer.
        from: PeerId,
    },
    /// Bully: victory announcement.
    Coordinator {
        /// The new coordinator.
        from: PeerId,
    },
    /// Ring: the election token accumulating candidate ids.
    RingElection {
        /// The peer that started this circulation.
        origin: PeerId,
        /// Ids collected so far.
        candidates: Vec<PeerId>,
    },
    /// Ring: the result announcement circulating once around the ring.
    RingCoordinator {
        /// The peer announcing the result.
        origin: PeerId,
        /// The elected coordinator.
        coordinator: PeerId,
    },
}

impl ElectionMsg {
    /// Approximate serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            ElectionMsg::Election { .. }
            | ElectionMsg::Answer { .. }
            | ElectionMsg::Coordinator { .. } => 128,
            ElectionMsg::RingElection { candidates, .. } => 128 + candidates.len() * 24,
            ElectionMsg::RingCoordinator { .. } => 144,
        }
    }

    /// Metric label.
    pub fn kind(&self) -> &'static str {
        match self {
            ElectionMsg::Election { .. } => "election",
            ElectionMsg::Answer { .. } => "election-answer",
            ElectionMsg::Coordinator { .. } => "coordinator",
            ElectionMsg::RingElection { .. } => "ring-election",
            ElectionMsg::RingCoordinator { .. } => "ring-coordinator",
        }
    }
}

/// A timer the hosting actor must arm on behalf of the state machine.
///
/// The token must be passed back verbatim via
/// [`ElectionProtocol::on_timer`](crate::ElectionProtocol::on_timer);
/// superseded timers are ignored internally, so the host never needs to
/// cancel anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRequest {
    /// Opaque token encoding the protocol phase and its epoch.
    pub token: u64,
    /// Delay after which the timer should fire.
    pub delay: SimDuration,
}

/// An event surfaced to the hosting actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionEvent {
    /// A coordinator was agreed on (possibly this node itself).
    CoordinatorElected(PeerId),
}

/// Everything an election call wants the host to do.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Output {
    /// Messages to transmit.
    pub sends: Vec<(PeerId, ElectionMsg)>,
    /// Timers to arm.
    pub timers: Vec<TimerRequest>,
    /// Events to surface.
    pub events: Vec<ElectionEvent>,
}

impl Output {
    /// An empty output.
    pub fn none() -> Self {
        Output::default()
    }

    /// Merges another output into this one, preserving order.
    pub fn merge(&mut self, other: Output) {
        self.sends.extend(other.sends);
        self.timers.extend(other.timers);
        self.events.extend(other.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_kinds() {
        let e = ElectionMsg::Election {
            from: PeerId::new(1),
        };
        assert_eq!(e.kind(), "election");
        let ring = ElectionMsg::RingElection {
            origin: PeerId::new(1),
            candidates: vec![PeerId::new(1), PeerId::new(2)],
        };
        assert!(ring.wire_size() > e.wire_size());
        assert_eq!(ring.kind(), "ring-election");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Output::none();
        a.sends.push((
            PeerId::new(1),
            ElectionMsg::Answer {
                from: PeerId::new(2),
            },
        ));
        let mut b = Output::none();
        b.events
            .push(ElectionEvent::CoordinatorElected(PeerId::new(2)));
        b.timers.push(TimerRequest {
            token: 9,
            delay: SimDuration::from_millis(1),
        });
        a.merge(b);
        assert_eq!(a.sends.len(), 1);
        assert_eq!(a.timers.len(), 1);
        assert_eq!(a.events.len(), 1);
    }
}
