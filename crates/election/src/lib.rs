//! # whisper-election
//!
//! Coordinator election for b-peer groups.
//!
//! The paper's b-peers "implement the Bully algorithm to provide a
//! fundamental mechanism to enable a good fault-tolerance" (section 4.2):
//! within each semantic b-peer group all replicas are active, the group
//! coordinator processes requests, and when it fails a new coordinator is
//! elected and used "immediately with little impact on response time".
//!
//! This crate provides two election protocols behind one interface:
//!
//! * [`BullyNode`] — the classic Bully algorithm (Garcia-Molina 1982):
//!   the highest-id live peer wins; detection of a dead coordinator
//!   triggers `Election` messages to higher ids, `Answer` suppresses
//!   self-promotion, `Coordinator` announces victory.
//! * [`RingNode`] — a Chang–Roberts-style ring election used as the
//!   baseline in the election-cost ablation.
//!
//! Both are *sans-io* state machines: every call returns an [`Output`]
//! listing messages to send, timers to arm and events to surface, and the
//! hosting actor performs the IO. The state machines are therefore directly
//! testable and run identically on the simulator and the threaded runtime.
//!
//! # Examples
//!
//! A three-peer group where the highest peer wins instantly:
//!
//! ```
//! use whisper_election::{BullyConfig, BullyNode, ElectionEvent, ElectionProtocol};
//! use whisper_p2p::PeerId;
//!
//! use whisper_simnet::SimTime;
//!
//! let members = [PeerId::new(1), PeerId::new(2), PeerId::new(3)];
//! let mut top = BullyNode::new(PeerId::new(3), members, BullyConfig::default());
//! let out = top.start_election(SimTime::ZERO);
//! // The highest id declares victory immediately: one Coordinator message
//! // to each other member.
//! assert_eq!(out.sends.len(), 2);
//! assert_eq!(out.events, vec![ElectionEvent::CoordinatorElected(PeerId::new(3))]);
//! assert_eq!(top.coordinator(), Some(PeerId::new(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bully;
mod msg;
mod ring;

pub use bully::{BullyConfig, BullyNode};
pub use msg::{ElectionEvent, ElectionMsg, Output, TimerRequest};
pub use ring::RingNode;

use whisper_p2p::PeerId;
use whisper_simnet::SimTime;

/// Common interface of the election protocols, letting the benchmark
/// harness swap Bully for the ring baseline.
///
/// Calls carry the current time so implementations can rate-limit
/// (see [`BullyConfig::cooldown`]); state machines never read a clock
/// themselves.
pub trait ElectionProtocol {
    /// This node's peer id.
    fn me(&self) -> PeerId;

    /// The coordinator this node currently believes in.
    fn coordinator(&self) -> Option<PeerId>;

    /// Begins an election (e.g. after the failure detector suspected the
    /// coordinator).
    fn start_election(&mut self, now: SimTime) -> Output;

    /// Feeds an incoming election message.
    fn on_message(&mut self, from: PeerId, msg: ElectionMsg, now: SimTime) -> Output;

    /// Feeds a timer armed by an earlier [`Output::timers`] entry.
    fn on_timer(&mut self, token: u64, now: SimTime) -> Output;

    /// Replaces the group membership (the node's own id must be included).
    fn set_members(&mut self, members: &[PeerId]);

    /// Removes a peer from the membership (declared dead).
    fn remove_member(&mut self, peer: PeerId);
}
