//! Microbenchmark of discovery-cache lookups over a populated cache: the
//! owned (cloning) lookup the proxy used to run on every request, against
//! the borrow-based zero-copy iterator it runs now.

use criterion::{black_box, criterion_group, Criterion};
use whisper_bench::{time_mean_us, BenchSummary};
use whisper_ontology::samples::UNIVERSITY_NS;
use whisper_p2p::{
    AdvFilter, AdvKind, Advertisement, DiscoveryCache, GroupAdv, GroupId, PeerAdv, PeerId,
    SemanticAdv,
};
use whisper_simnet::SimTime;
use whisper_xml::QName;

const N_ADS: u64 = 1_000;

/// A cache with 1k advertisements: half peer advs, a quarter group advs, a
/// quarter semantic advs — roughly the shape a rendezvous peer accretes.
fn populated_cache() -> DiscoveryCache {
    let q = |l: &str| QName::with_ns(UNIVERSITY_NS, l);
    let mut cache = DiscoveryCache::new();
    for i in 0..N_ADS {
        let adv = match i % 4 {
            0 | 1 => Advertisement::Peer(PeerAdv {
                peer: PeerId::new(i),
                name: format!("peer{i}"),
                group: Some(GroupId::new(i % 16)),
            }),
            2 => Advertisement::Group(GroupAdv {
                group: GroupId::new(i),
                name: format!("group{i}"),
            }),
            _ => Advertisement::Semantic(SemanticAdv {
                group: GroupId::new(i),
                name: format!("sem{i}"),
                action: q("StudentTranscriptRetrieval"),
                inputs: vec![q("Identifier")],
                outputs: vec![q("StudentTranscript")],
                qos: None,
            }),
        };
        // staggered lifetimes so expiry filtering does real work
        cache.insert(adv, SimTime::from_micros(1_000 + i * 10));
    }
    cache
}

fn bench_lookup(c: &mut Criterion) {
    let cache = populated_cache();
    let filter = AdvFilter::of_kind(AdvKind::Semantic);
    let now = SimTime::from_micros(500);
    c.bench_function("discovery/lookup_owned", |b| {
        b.iter(|| black_box(cache.lookup_owned(black_box(&filter), now)))
    });
    c.bench_function("discovery/lookup_borrowed", |b| {
        b.iter(|| {
            cache
                .iter_live(black_box(&filter), now)
                .map(|(a, _)| {
                    black_box(a)
                        .as_semantic()
                        .map(|s| s.group.value())
                        .unwrap_or(0)
                })
                .sum::<u64>()
        })
    });
}

criterion_group!(benches, bench_lookup);

/// Machine-readable trajectory entries: the filtered semantic lookup over
/// 1k advertisements, owned vs borrowed.
fn record_summary() {
    let cache = populated_cache();
    let filter = AdvFilter::of_kind(AdvKind::Semantic);
    let now = SimTime::from_micros(500);
    let mut s = BenchSummary::new();
    s.record(
        "bench_discovery_lookup",
        "lookup_owned_us",
        time_mean_us(20_000, || {
            black_box(cache.lookup_owned(black_box(&filter), now));
        }),
    );
    s.record(
        "bench_discovery_lookup",
        "lookup_borrowed_us",
        time_mean_us(20_000, || {
            black_box(
                cache
                    .iter_live(black_box(&filter), now)
                    .map(|(a, _)| a.as_semantic().map(|s| s.group.value()).unwrap_or(0))
                    .sum::<u64>(),
            );
        }),
    );
    match s.save_merged() {
        Ok(p) => println!("bench summary: {}", p.display()),
        Err(e) => eprintln!("bench summary not written: {e}"),
    }
}

fn main() {
    benches();
    record_summary();
}
