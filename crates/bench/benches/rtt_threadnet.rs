//! Wall-clock message round-trip over the **real-time** runtimes: the same
//! actor abstraction as the simulator, but on real OS threads — with
//! crossbeam channels (`threadnet/*`) or real TCP loopback sockets
//! (`tcpnet/*`) as the link. This is the hardware-grounded counterpart of
//! the simulated RTT analysis — absolute numbers reflect this machine, not
//! the paper's LAN, but the protocol code path is identical, and on the
//! TCP variant every message really is encoded to bytes, framed, written
//! to a socket, read back and decoded.
//!
//! Two shapes are measured per transport:
//!
//! * `100_hop_volley` — a ~1 KiB ball bounced 100 times between two
//!   trivial actors: the transport's raw per-hop overhead.
//! * `request_cycle` — one full Whisper SOAP request through the
//!   **unmodified** `SwsProxyActor` and `BPeerActor` implementations
//!   (client → proxy → coordinator b-peer → proxy → client), measured warm
//!   (after discovery has bound the group). Compare against the paper's
//!   ≈0.5 ms LAN round trip.

use criterion::{criterion_group, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whisper::{
    BPeerActor, BPeerConfig, Directory, GroupSpec, ProxyConfig, ServiceBackend, StudentRegistry,
    SwsProxyActor, WhisperMsg,
};
use whisper_bench::{time_mean_us, BenchSummary};
use whisper_p2p::{GroupId, PeerId, SemanticAdv};
use whisper_simnet::tcpnet::TcpNetBuilder;
use whisper_simnet::threadnet::ThreadNetBuilder;
use whisper_simnet::{Actor, Context, NodeId, Wire};
use whisper_soap::Envelope;
use whisper_wire::{Decode, Encode, Reader, WireError};
use whisper_xml::Element;

// --- Raw volley: transport overhead without any protocol logic ----------

/// A ~1 KiB message, matching the paper's benchmark request size.
#[derive(Clone, Debug)]
struct Ball {
    bounces_left: u32,
    pad: Vec<u8>,
}

impl Ball {
    fn new(bounces_left: u32) -> Self {
        Ball {
            bounces_left,
            pad: vec![0; 1017],
        }
    }
}

impl Wire for Ball {
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
    fn kind(&self) -> &'static str {
        "ball"
    }
}

impl Encode for Ball {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.bounces_left.encode_into(out);
        self.pad.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.bounces_left.encoded_len() + self.pad.encoded_len()
    }
}

impl Decode for Ball {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Ball {
            bounces_left: u32::decode_from(r)?,
            pad: Vec::decode_from(r)?,
        })
    }
}

/// Bounces the ball back until it runs out, then bumps the counter.
struct Paddle {
    completed: Arc<AtomicU64>,
}

impl Actor<Ball> for Paddle {
    fn on_message(&mut self, ctx: &mut Context<'_, Ball>, from: NodeId, msg: Ball) {
        if msg.bounces_left == 0 {
            self.completed.fetch_add(1, Ordering::SeqCst);
        } else {
            ctx.send(from, Ball::new(msg.bounces_left - 1));
        }
    }
}

/// Injects a 100-bounce ball and spin-waits for the far side to finish.
fn run_volley(c: &mut Criterion, label: &str, completed: &Arc<AtomicU64>, inject: impl Fn(Ball)) {
    c.bench_function(label, |bench| {
        bench.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let before = completed.load(Ordering::SeqCst);
                let start = Instant::now();
                inject(Ball::new(100));
                while completed.load(Ordering::SeqCst) == before {
                    std::hint::spin_loop();
                }
                total += start.elapsed();
            }
            total
        })
    });
}

fn bench_threadnet_volley(c: &mut Criterion) {
    let completed = Arc::new(AtomicU64::new(0));
    let mut b = ThreadNetBuilder::new();
    let a = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let z = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let net = b.start();
    run_volley(c, "threadnet/100_hop_volley", &completed, |ball| {
        net.inject(a, z, ball)
    });
    net.shutdown();
}

fn bench_tcpnet_volley(c: &mut Criterion) {
    let completed = Arc::new(AtomicU64::new(0));
    let mut b = TcpNetBuilder::new();
    let a = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let z = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let net = b.start().expect("loopback sockets");
    run_volley(c, "tcpnet/100_hop_volley", &completed, |ball| {
        net.inject(a, z, ball)
    });
    net.shutdown();
}

// --- Full request cycle through the unmodified Whisper actors -----------

const N_BPEERS: usize = 3;

/// Forwards injected SOAP requests to the proxy and counts responses: the
/// measuring end of the cycle. Everything in between — discovery, binding,
/// election, execution — runs in the unmodified proxy and b-peer actors.
struct BenchClient {
    proxy: NodeId,
    completed: Arc<AtomicU64>,
}

impl Actor<WhisperMsg> for BenchClient {
    fn on_message(&mut self, ctx: &mut Context<'_, WhisperMsg>, _from: NodeId, msg: WhisperMsg) {
        match msg {
            req @ WhisperMsg::SoapRequest { .. } => ctx.send(self.proxy, req),
            WhisperMsg::SoapResponse { .. } => {
                self.completed.fetch_add(1, Ordering::SeqCst);
            }
            _ => {}
        }
    }
}

/// The student scenario wired by hand, mirroring the simulator harness's
/// layout: b-peer replicas on nodes `0..N_BPEERS`, the proxy next, the
/// measuring client last (clients are not peers, so it stays out of the
/// directory).
fn whisper_actors(completed: &Arc<AtomicU64>) -> (Vec<BPeerActor>, SwsProxyActor, BenchClient) {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample operation");
    let backends: Vec<Box<dyn ServiceBackend>> = (0..N_BPEERS)
        .map(|i| -> Box<dyn ServiceBackend> {
            if i % 2 == 0 {
                Box::new(StudentRegistry::operational_db().with_sample_data())
            } else {
                Box::new(StudentRegistry::data_warehouse().with_sample_data())
            }
        })
        .collect();
    let spec = GroupSpec::from_operation("StudentInfoGroup", op, backends);

    let peer_of = |idx: usize| PeerId::new(idx as u64 + 1);
    let proxy_idx = N_BPEERS;
    let mut pairs: Vec<(PeerId, NodeId)> = (0..N_BPEERS)
        .map(|i| (peer_of(i), NodeId::from_index(i)))
        .collect();
    pairs.push((peer_of(proxy_idx), NodeId::from_index(proxy_idx)));
    let directory = Directory::with_routes(pairs, Vec::new());

    let group = GroupId::new(1);
    let members: Vec<PeerId> = (0..N_BPEERS).map(peer_of).collect();
    let adv = SemanticAdv {
        group,
        name: spec.name.clone(),
        action: spec.action.clone(),
        inputs: spec.inputs.clone(),
        outputs: spec.outputs.clone(),
        qos: spec.qos,
    };
    let bpeers: Vec<BPeerActor> = spec
        .backends
        .into_iter()
        .enumerate()
        .map(|(i, backend)| {
            BPeerActor::new(
                peer_of(i),
                group,
                members.clone(),
                adv.clone(),
                backend,
                directory.clone(),
                BPeerConfig::default(),
            )
        })
        .collect();

    let mut proxy = SwsProxyActor::new(
        peer_of(proxy_idx),
        &service,
        whisper_ontology::samples::university_ontology(),
        directory.clone(),
        ProxyConfig::default(),
    );
    for i in 0..N_BPEERS {
        proxy.add_known_peer(peer_of(i));
    }

    let client = BenchClient {
        proxy: NodeId::from_index(proxy_idx),
        completed: completed.clone(),
    };
    (bpeers, proxy, client)
}

fn student_request(request_id: u64) -> WhisperMsg {
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1004"));
    WhisperMsg::SoapRequest {
        request_id,
        envelope: Envelope::request(payload).to_xml_string(),
    }
}

/// Warm-up (cold discovery pays the proxy's 250 ms flood gather window and
/// may wait out an election), then measure warm request round trips.
fn run_request_cycle(
    c: &mut Criterion,
    label: &str,
    completed: &Arc<AtomicU64>,
    inject: impl Fn(WhisperMsg),
) {
    let ids = AtomicU64::new(1);
    inject(student_request(ids.fetch_add(1, Ordering::SeqCst)));
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "warm-up request never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
    c.bench_function(label, |bench| {
        bench.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let before = completed.load(Ordering::SeqCst);
                let start = Instant::now();
                inject(student_request(ids.fetch_add(1, Ordering::SeqCst)));
                while completed.load(Ordering::SeqCst) == before {
                    std::hint::spin_loop();
                }
                total += start.elapsed();
            }
            total
        })
    });
}

fn bench_request_cycle_channel(c: &mut Criterion) {
    let completed = Arc::new(AtomicU64::new(0));
    let (bpeers, proxy, client) = whisper_actors(&completed);
    let mut b = ThreadNetBuilder::new();
    for bp in bpeers {
        b.add_node(bp);
    }
    b.add_node(proxy);
    let client_node = b.add_node(client);
    let net = b.start();
    run_request_cycle(c, "threadnet/request_cycle", &completed, |req| {
        net.inject(client_node, client_node, req)
    });
    net.shutdown();
}

fn bench_request_cycle_tcp(c: &mut Criterion) {
    let completed = Arc::new(AtomicU64::new(0));
    let (bpeers, proxy, client) = whisper_actors(&completed);
    let mut b = TcpNetBuilder::new();
    for bp in bpeers {
        b.add_node(bp);
    }
    b.add_node(proxy);
    let client_node = b.add_node(client);
    let net = b.start().expect("loopback sockets");
    run_request_cycle(c, "tcpnet/request_cycle", &completed, |req| {
        net.inject(client_node, client_node, req)
    });
    let metrics = net.metrics_snapshot();
    println!(
        "tcpnet/request_cycle: {} bytes over loopback sockets across {} messages",
        metrics.bytes_sent(),
        metrics.messages_sent()
    );
    net.shutdown();
}

criterion_group!(
    benches,
    bench_threadnet_volley,
    bench_tcpnet_volley,
    bench_request_cycle_channel,
    bench_request_cycle_tcp,
);

/// Headline transport round-trip numbers for the machine-readable
/// trajectory (`BENCH_PR10.json`): per-hop threadnet overhead and the warm
/// TCP request cycle, the two ends of the runtime's latency range.
fn record_summary() {
    let mut s = BenchSummary::new();

    let completed = Arc::new(AtomicU64::new(0));
    let mut b = ThreadNetBuilder::new();
    let a = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let z = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let net = b.start();
    let volley_us = time_mean_us(50, || {
        let before = completed.load(Ordering::SeqCst);
        net.inject(a, z, Ball::new(100));
        while completed.load(Ordering::SeqCst) == before {
            std::hint::spin_loop();
        }
    });
    net.shutdown();
    s.record("bench_rtt_threadnet", "threadnet_hop_us", volley_us / 100.0);

    let completed = Arc::new(AtomicU64::new(0));
    let (bpeers, proxy, client) = whisper_actors(&completed);
    let mut b = TcpNetBuilder::new();
    for bp in bpeers {
        b.add_node(bp);
    }
    b.add_node(proxy);
    let client_node = b.add_node(client);
    let net = b.start().expect("loopback sockets");
    let ids = AtomicU64::new(1);
    net.inject(
        client_node,
        client_node,
        student_request(ids.fetch_add(1, Ordering::SeqCst)),
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    while completed.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "warm-up request never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let cycle_us = time_mean_us(20, || {
        let before = completed.load(Ordering::SeqCst);
        net.inject(
            client_node,
            client_node,
            student_request(ids.fetch_add(1, Ordering::SeqCst)),
        );
        while completed.load(Ordering::SeqCst) == before {
            std::hint::spin_loop();
        }
    });
    net.shutdown();
    s.record("bench_rtt_threadnet", "tcpnet_request_cycle_us", cycle_us);

    match s.save_merged() {
        Ok(p) => println!("bench summary: {}", p.display()),
        Err(e) => eprintln!("bench summary not written: {e}"),
    }
}

fn main() {
    benches();
    record_summary();
}
