//! Wall-clock message round-trip over the **threaded** runtime: the same
//! actor abstraction as the simulator, but on real OS threads and real
//! channels. This is the hardware-grounded counterpart of the simulated
//! RTT analysis — absolute numbers reflect this machine, not the paper's
//! LAN, but the protocol code path is identical.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use whisper_simnet::threadnet::ThreadNetBuilder;
use whisper_simnet::{Actor, Context, NodeId, Wire};

#[derive(Clone, Debug)]
struct Ball {
    bounces_left: u32,
}

impl Wire for Ball {
    fn wire_size(&self) -> usize {
        1024
    }
    fn kind(&self) -> &'static str {
        "ball"
    }
}

/// Bounces the ball back until it runs out, then bumps the counter.
struct Paddle {
    completed: Arc<AtomicU64>,
}

impl Actor<Ball> for Paddle {
    fn on_message(&mut self, ctx: &mut Context<'_, Ball>, from: NodeId, msg: Ball) {
        if msg.bounces_left == 0 {
            self.completed.fetch_add(1, Ordering::SeqCst);
        } else {
            ctx.send(
                from,
                Ball {
                    bounces_left: msg.bounces_left - 1,
                },
            );
        }
    }
}

fn bench_threadnet_rtt(c: &mut Criterion) {
    let completed = Arc::new(AtomicU64::new(0));
    let mut b = ThreadNetBuilder::new();
    let a = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let z = b.add_node(Paddle {
        completed: completed.clone(),
    });
    let net = b.start();

    // Each measured iteration = 100 hops (50 round trips) across two real
    // threads; report per-iteration time.
    c.bench_function("threadnet/100_hop_volley", |bench| {
        bench.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let before = completed.load(Ordering::SeqCst);
                let start = Instant::now();
                net.inject(a, z, Ball { bounces_left: 100 });
                while completed.load(Ordering::SeqCst) == before {
                    std::hint::spin_loop();
                }
                total += start.elapsed();
            }
            total
        })
    });
    net.shutdown();
}

criterion_group!(benches, bench_threadnet_rtt);
criterion_main!(benches);
