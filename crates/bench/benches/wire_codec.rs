//! Codec throughput for the two message shapes that dominate Whisper
//! traffic: a ~1 KiB SOAP request (the paper's benchmark payload size) and
//! a semantic b-peer-group advertisement publication.
//!
//! Encode and decode are measured separately — encode sits on every
//! `ctx.send` hot path of the TCP transport, decode on every reader
//! thread, so their per-message cost bounds the achievable RTT floor.

use criterion::{black_box, criterion_group, Criterion};
use whisper::WhisperMsg;
use whisper_bench::{time_mean_us, BenchSummary};
use whisper_p2p::{Advertisement, GroupId, P2pMessage, SemanticAdv};
use whisper_simnet::SimDuration;
use whisper_soap::Envelope;
use whisper_wire::{Decode, Encode};
use whisper_xml::Element;

/// A `SoapRequest` whose serialized envelope is at least 1 KiB, mirroring
/// the request size benchmarked in the paper.
fn soap_request_1kib() -> WhisperMsg {
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1004"));
    let mut envelope = Envelope::request(payload.clone()).to_xml_string();
    while envelope.len() < 1024 {
        payload.push_child(Element::with_text("Padding", "x".repeat(64)));
        envelope = Envelope::request(payload.clone()).to_xml_string();
    }
    WhisperMsg::SoapRequest {
        request_id: 7,
        envelope,
    }
}

/// A `Publish` carrying the student-scenario semantic advertisement, the
/// message b-peers flood at startup and rendezvous peers cache.
fn semantic_publish() -> WhisperMsg {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample operation");
    let adv = Advertisement::Semantic(SemanticAdv {
        group: GroupId::new(1),
        name: "StudentInfoGroup".into(),
        action: op.action.clone(),
        inputs: op.inputs.iter().map(|p| p.concept.clone()).collect(),
        outputs: op.outputs.iter().map(|p| p.concept.clone()).collect(),
        qos: None,
    });
    WhisperMsg::P2p(P2pMessage::Publish {
        adv,
        lifetime: SimDuration::from_secs(600),
    })
}

fn bench_codec(c: &mut Criterion, label: &str, msg: WhisperMsg) {
    let bytes = msg.encode();
    assert_eq!(
        WhisperMsg::decode(&bytes).expect("self round-trip"),
        msg,
        "bench fixture must round-trip"
    );
    c.bench_function(&format!("wire_codec/encode/{label}"), |b| {
        b.iter(|| black_box(&msg).encode())
    });
    c.bench_function(&format!("wire_codec/decode/{label}"), |b| {
        b.iter(|| WhisperMsg::decode(black_box(&bytes)).unwrap())
    });
    println!("{label}: {} bytes on the wire", bytes.len());
}

fn bench_wire_codec(c: &mut Criterion) {
    bench_codec(c, "soap_request_1kib", soap_request_1kib());
    bench_codec(c, "semantic_advertisement", semantic_publish());
}

criterion_group!(benches, bench_wire_codec);

/// One headline number per codec direction for the machine-readable
/// trajectory (`BENCH_PR10.json`), next to Criterion's full statistics.
fn record_summary() {
    let msg = soap_request_1kib();
    let bytes = msg.encode();
    let mut s = BenchSummary::new();
    s.record(
        "bench_wire_codec",
        "soap_1kib_encode_us",
        time_mean_us(20_000, || {
            black_box(black_box(&msg).encode());
        }),
    );
    s.record(
        "bench_wire_codec",
        "soap_1kib_decode_us",
        time_mean_us(20_000, || {
            black_box(WhisperMsg::decode(black_box(&bytes)).unwrap());
        }),
    );
    s.record(
        "bench_wire_codec",
        "soap_1kib_wire_bytes",
        bytes.len() as f64,
    );
    match s.save_merged() {
        Ok(p) => println!("bench summary: {}", p.display()),
        Err(e) => eprintln!("bench summary not written: {e}"),
    }
}

fn main() {
    benches();
    record_summary();
}
