//! Microbenchmarks of the raw election state machines: cost per protocol
//! step, independent of any transport.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use whisper_bench::{time_mean_us, BenchSummary};
use whisper_election::{BullyConfig, BullyNode, ElectionMsg, ElectionProtocol, RingNode};
use whisper_p2p::PeerId;
use whisper_simnet::SimTime;

fn members(n: u64) -> Vec<PeerId> {
    (1..=n).map(PeerId::new).collect()
}

fn bench_bully(c: &mut Criterion) {
    let mut group = c.benchmark_group("election/bully_start");
    for n in [4u64, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut node = BullyNode::new(PeerId::new(1), members(n), BullyConfig::default());
                black_box(node.start_election(SimTime::ZERO))
            })
        });
    }
    group.finish();

    c.bench_function("election/bully_on_coordinator_msg", |b| {
        let mut node = BullyNode::new(PeerId::new(1), members(16), BullyConfig::default());
        b.iter(|| {
            black_box(node.on_message(
                PeerId::new(16),
                ElectionMsg::Coordinator {
                    from: PeerId::new(16),
                },
                SimTime::ZERO,
            ))
        })
    });
}

fn bench_ring(c: &mut Criterion) {
    c.bench_function("election/ring_token_forward", |b| {
        let mut node = RingNode::new(PeerId::new(8), members(16));
        let token = ElectionMsg::RingElection {
            origin: PeerId::new(1),
            candidates: members(7),
        };
        b.iter(|| black_box(node.on_message(PeerId::new(7), token.clone(), SimTime::ZERO)))
    });
}

criterion_group!(benches, bench_bully, bench_ring);

/// Headline per-step costs for the machine-readable trajectory
/// (`BENCH_PR10.json`).
fn record_summary() {
    let mut s = BenchSummary::new();
    s.record(
        "bench_election_micro",
        "bully_start_16_us",
        time_mean_us(10_000, || {
            let mut node = BullyNode::new(PeerId::new(1), members(16), BullyConfig::default());
            black_box(node.start_election(SimTime::ZERO));
        }),
    );
    s.record(
        "bench_election_micro",
        "ring_token_forward_us",
        time_mean_us(10_000, || {
            let mut node = RingNode::new(PeerId::new(8), members(16));
            let token = ElectionMsg::RingElection {
                origin: PeerId::new(1),
                candidates: members(7),
            };
            black_box(node.on_message(PeerId::new(7), token, SimTime::ZERO));
        }),
    );
    match s.save_merged() {
        Ok(p) => println!("bench summary: {}", p.display()),
        Err(e) => eprintln!("bench summary not written: {e}"),
    }
}

fn main() {
    benches();
    record_summary();
}
