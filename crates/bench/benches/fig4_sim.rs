//! Criterion wrapper around the Figure 4 simulation: wall-clock cost of
//! simulating a full startup + steady-state + request phase per group
//! size. Guards against performance regressions in the simulator and the
//! protocol stack (the counts themselves are asserted in unit tests).

use criterion::{criterion_group, BenchmarkId, Criterion};
use whisper_bench::experiments::fig4::{run_point, Fig4Params};
use whisper_bench::{time_mean_us, BenchSummary};
use whisper_simnet::SimDuration;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_sim");
    group.sample_size(10);
    for n in [3usize, 9] {
        let params = Fig4Params {
            steady_window: SimDuration::from_secs(10),
            requests: 5,
            seed: 4,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_point(n, params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);

/// Simulator wall-clock per Figure-4 point, for the machine-readable
/// trajectory (`BENCH_PR10.json`).
fn record_summary() {
    let params = Fig4Params {
        steady_window: SimDuration::from_secs(10),
        requests: 5,
        seed: 4,
    };
    let mut s = BenchSummary::new();
    s.record(
        "bench_fig4_sim",
        "sim_point_9_bpeers_ms",
        time_mean_us(5, || {
            run_point(9, params);
        }) / 1e3,
    );
    match s.save_merged() {
        Ok(p) => println!("bench summary: {}", p.display()),
        Err(e) => eprintln!("bench summary not written: {e}"),
    }
}

fn main() {
    benches();
    record_summary();
}
