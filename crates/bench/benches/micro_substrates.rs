//! Microbenchmarks of the substrate layers: XML, SOAP, WSDL-S, ontology
//! reasoning and semantic matching. These dominate per-message CPU cost in
//! the simulator and would dominate a real deployment's proxy.

use criterion::{black_box, criterion_group, Criterion};
use whisper::matchmaker;
use whisper_bench::{time_mean_us, BenchSummary};
use whisper_ontology::samples::{university_ontology, UNIVERSITY_NS};
use whisper_p2p::{Advertisement, GroupId, SemanticAdv};
use whisper_soap::Envelope;
use whisper_wsdl::samples::student_management;
use whisper_wsdl::ServiceDescription;
use whisper_xml::{parse, Element, QName};

fn sample_soap_text() -> String {
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1042"));
    payload.push_child(Element::with_text("Detail", "full"));
    Envelope::request(payload).to_xml_string()
}

fn bench_xml(c: &mut Criterion) {
    let text = sample_soap_text();
    c.bench_function("xml/parse_soap_envelope", |b| {
        b.iter(|| parse(black_box(&text)).expect("well-formed"))
    });
    let tree = parse(&text).expect("well-formed");
    c.bench_function("xml/serialize_soap_envelope", |b| {
        b.iter(|| black_box(&tree).to_xml())
    });
}

fn bench_soap(c: &mut Criterion) {
    let text = sample_soap_text();
    c.bench_function("soap/parse_envelope", |b| {
        b.iter(|| Envelope::parse(black_box(&text)).expect("valid envelope"))
    });
}

fn bench_wsdl(c: &mut Criterion) {
    let doc = student_management().to_xml_string();
    c.bench_function("wsdl/parse_wsdls_document", |b| {
        b.iter(|| ServiceDescription::parse(black_box(&doc)).expect("valid wsdl"))
    });
}

fn bench_ontology(c: &mut Criterion) {
    let onto = university_ontology();
    let grad = onto.class_by_name("GraduateStudent").expect("concept");
    let entity = onto.class_by_name("Entity").expect("concept");
    c.bench_function("ontology/is_subclass_of", |b| {
        b.iter(|| onto.is_subclass_of(black_box(grad), black_box(entity)))
    });
    let student = onto.class_by_name("Student").expect("concept");
    c.bench_function("ontology/similarity", |b| {
        b.iter(|| onto.similarity(black_box(grad), black_box(student)))
    });
}

fn bench_matchmaker(c: &mut Criterion) {
    let onto = university_ontology();
    let request = student_management()
        .operation("StudentInformation")
        .expect("operation")
        .resolve(&onto)
        .expect("resolves");
    let q = |l: &str| QName::with_ns(UNIVERSITY_NS, l);
    let adv = SemanticAdv {
        group: GroupId::new(1),
        name: "g".into(),
        action: q("StudentTranscriptRetrieval"),
        inputs: vec![q("Identifier")],
        outputs: vec![q("StudentTranscript")],
        qos: None,
    };
    c.bench_function("matchmaker/match_semantic_adv", |b| {
        b.iter(|| matchmaker::match_semantic_adv(&onto, black_box(&request), black_box(&adv)))
    });
    let text = Advertisement::Semantic(adv).to_xml_string();
    c.bench_function("p2p/parse_semantic_advertisement", |b| {
        b.iter(|| Advertisement::parse(black_box(&text)).expect("valid adv"))
    });
}

criterion_group!(
    benches,
    bench_xml,
    bench_soap,
    bench_wsdl,
    bench_ontology,
    bench_matchmaker
);

/// Headline substrate costs for the machine-readable trajectory
/// (`BENCH_PR10.json`).
fn record_summary() {
    let text = sample_soap_text();
    let onto = university_ontology();
    let request = student_management()
        .operation("StudentInformation")
        .expect("operation")
        .resolve(&onto)
        .expect("resolves");
    let q = |l: &str| QName::with_ns(UNIVERSITY_NS, l);
    let adv = SemanticAdv {
        group: GroupId::new(1),
        name: "g".into(),
        action: q("StudentTranscriptRetrieval"),
        inputs: vec![q("Identifier")],
        outputs: vec![q("StudentTranscript")],
        qos: None,
    };
    let mut s = BenchSummary::new();
    s.record(
        "bench_micro_substrates",
        "soap_parse_us",
        time_mean_us(10_000, || {
            black_box(Envelope::parse(black_box(&text)).expect("valid envelope"));
        }),
    );
    s.record(
        "bench_micro_substrates",
        "semantic_match_us",
        time_mean_us(10_000, || {
            black_box(matchmaker::match_semantic_adv(
                &onto,
                black_box(&request),
                black_box(&adv),
            ));
        }),
    );
    match s.save_merged() {
        Ok(p) => println!("bench summary: {}", p.display()),
        Err(e) => eprintln!("bench summary not written: {e}"),
    }
}

fn main() {
    benches();
    record_summary();
}
