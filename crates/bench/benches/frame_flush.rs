//! Cost of one batched frame flush at different coalescing widths: 1, 8
//! and 32 queued frames leaving in a single
//! [`write_frames_vectored`] call, versus the same frames written one
//! [`write_frame`] at a time.
//!
//! This is the syscall-free core of the whisper-surge flush path — the
//! writer here is an in-memory sink, so the numbers isolate the framing
//! and gather-list arithmetic the batching transport pays per flush.
//! The per-*frame* amortized cost must fall as the batch widens; the CI
//! trajectory tracks all three widths.

use std::io::Write;

use criterion::{black_box, criterion_group, Criterion};
use whisper::WhisperMsg;
use whisper_bench::{time_mean_us, BenchSummary};
use whisper_soap::Envelope;
use whisper_wire::{write_frame, write_frames_vectored, Encode};
use whisper_xml::Element;

/// The coalescing widths measured (1 = the unbatched baseline shape).
const WIDTHS: [usize; 3] = [1, 8, 32];

/// An in-memory sink that is reused across iterations, so allocation
/// noise stays out of the measurement.
struct Sink(Vec<u8>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The encoded ~1 KiB SOAP request frame the RTT benches use.
fn encoded_request() -> Vec<u8> {
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1004"));
    let mut envelope = Envelope::request(payload.clone()).to_xml_string();
    while envelope.len() < 1024 {
        payload.push_child(Element::with_text("Padding", "x".repeat(64)));
        envelope = Envelope::request(payload.clone()).to_xml_string();
    }
    WhisperMsg::SoapRequest {
        request_id: 7,
        envelope,
    }
    .encode()
}

fn bench_frame_flush(c: &mut Criterion) {
    let frame = encoded_request();
    for width in WIDTHS {
        let batch: Vec<&[u8]> = (0..width).map(|_| frame.as_slice()).collect();
        let mut sink = Sink(Vec::with_capacity((frame.len() + 4) * width));
        c.bench_function(&format!("frame_flush/vectored/{width}"), |b| {
            b.iter(|| {
                sink.0.clear();
                write_frames_vectored(&mut sink, black_box(&batch)).unwrap();
            })
        });
        c.bench_function(&format!("frame_flush/one_by_one/{width}"), |b| {
            b.iter(|| {
                sink.0.clear();
                for p in &batch {
                    write_frame(&mut sink, black_box(p)).unwrap();
                }
            })
        });
    }
}

criterion_group!(benches, bench_frame_flush);

/// One amortized per-frame headline number per width for the trajectory
/// (`BENCH_PR10.json`), next to Criterion's full statistics.
fn record_summary() {
    let frame = encoded_request();
    let mut s = BenchSummary::new();
    for width in WIDTHS {
        let batch: Vec<&[u8]> = (0..width).map(|_| frame.as_slice()).collect();
        let mut sink = Sink(Vec::with_capacity((frame.len() + 4) * width));
        let per_flush = time_mean_us(50_000, || {
            sink.0.clear();
            write_frames_vectored(&mut sink, black_box(&batch)).unwrap();
        });
        s.record(
            "bench_frame_flush",
            &format!("flush{width}_per_frame_us"),
            per_flush / width as f64,
        );
    }
    match s.save_merged() {
        Ok(p) => println!("bench summary: {}", p.display()),
        Err(e) => eprintln!("bench summary not written: {e}"),
    }
}

fn main() {
    benches();
    record_summary();
}
