//! Out-of-order completion under fire: a burst of in-flight requests
//! with a mid-burst coordinator kill, on OS threads and on real TCP
//! loopback.
//!
//! With the surge worker pool enabled ([`BPeerConfig::workers`]), backend
//! executions finish out of order and are correlated back by job id; the
//! proxy additionally retries requests the dead coordinator swallowed.
//! The acceptance bar: **every** request is answered (success or fault —
//! nothing lost), and every successful response echoes its own request's
//! unique marker — completions never cross-talk between correlation ids.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use whisper::{
    BPeerConfig, EchoBackend, GroupSpec, ProxyConfig, ScenarioWiring, ServiceBackend, Topology,
    WhisperMsg,
};
use whisper_election::BullyConfig;
use whisper_simnet::tcpnet::TcpNetBuilder;
use whisper_simnet::threadnet::ThreadNetBuilder;
use whisper_simnet::{Actor, Context, NodeId, SimDuration, Spawner, Substrate};
use whisper_soap::Envelope;
use whisper_xml::Element;

/// How many requests each burst injects.
const BURST: u64 = 40;

/// Collected SOAP responses, keyed by request id.
type Responses = Arc<Mutex<HashMap<u64, String>>>;

/// Per-poll coordinator claims from the b-peers, keyed by scope request.
type Coordinators = Arc<Mutex<HashMap<u64, Vec<Option<u64>>>>>;

/// The test-side actor: sink for the proxy's responses and for the scope
/// snapshots used to detect a settled election.
struct BurstDriver {
    responses: Responses,
    coordinators: Coordinators,
}

impl Actor<WhisperMsg> for BurstDriver {
    fn on_message(&mut self, _ctx: &mut Context<'_, WhisperMsg>, _from: NodeId, msg: WhisperMsg) {
        match msg {
            WhisperMsg::SoapResponse {
                request_id,
                envelope,
            } => {
                self.responses
                    .lock()
                    .expect("driver store poisoned")
                    .insert(request_id, envelope);
            }
            WhisperMsg::ScopeResponse {
                request_id,
                snapshot,
            } => {
                self.coordinators
                    .lock()
                    .expect("driver store poisoned")
                    .entry(request_id)
                    .or_default()
                    .push(snapshot.election.as_ref().and_then(|e| e.coordinator));
            }
            _ => {}
        }
    }
}

/// The deployment under test: three echo replicas with two surge workers
/// each, load-sharing on, fast failure detection, and a proxy that
/// retries quickly enough to fail over inside the test budget.
fn surge_wiring(peers: usize) -> ScenarioWiring {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample operation")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> =
        (0..peers).map(|_| Box::new(EchoBackend) as _).collect();
    let mut wiring = ScenarioWiring::bare(
        service,
        whisper_ontology::samples::university_ontology(),
        vec![GroupSpec::from_operation("StudentInfoGroup", &op, backends)],
    );
    wiring.bpeer = BPeerConfig {
        heartbeat_period: SimDuration::from_millis(50),
        failure_timeout: SimDuration::from_millis(250),
        bully: BullyConfig {
            answer_timeout: SimDuration::from_millis(200),
            coordinator_timeout: SimDuration::from_millis(400),
            cooldown: SimDuration::from_millis(200),
        },
        load_share: true,
        workers: 2,
        ..BPeerConfig::default()
    };
    wiring.proxy = ProxyConfig {
        request_timeout: SimDuration::from_millis(500),
        ..ProxyConfig::default()
    };
    wiring
}

/// Wires the scenario plus the burst driver onto any spawner.
fn wire_with_driver<S: Spawner<WhisperMsg>>(
    spawner: &mut S,
    peers: usize,
) -> (Topology, NodeId, Responses, Coordinators) {
    let topo = surge_wiring(peers)
        .wire(spawner)
        .expect("the surge scenario is well-formed");
    let responses: Responses = Arc::new(Mutex::new(HashMap::new()));
    let coordinators: Coordinators = Arc::new(Mutex::new(HashMap::new()));
    let driver = spawner.add_boxed(Box::new(BurstDriver {
        responses: Arc::clone(&responses),
        coordinators: Arc::clone(&coordinators),
    }));
    (topo, driver, responses, coordinators)
}

/// One uniquely marked request envelope; fixed-width markers cannot be
/// prefixes of each other.
fn marked_envelope(id: u64) -> String {
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1000"));
    payload.push_child(Element::with_text("Marker", format!("req-{id:05}")));
    Envelope::request(payload).to_xml_string()
}

/// Waits until every live b-peer names the same coordinator.
fn settle<N: Substrate<WhisperMsg>>(
    net: &mut N,
    topo: &Topology,
    driver: NodeId,
    coordinators: &Coordinators,
) {
    let peers = topo.group_nodes[0].len();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut scope_request = 1_000_000u64; // clear of the burst ids
    loop {
        scope_request += 1;
        for &b in &topo.group_nodes[0] {
            net.inject(
                driver,
                b,
                WhisperMsg::ScopeRequest {
                    request_id: scope_request,
                },
            );
        }
        std::thread::sleep(Duration::from_millis(40));
        {
            let polls = coordinators.lock().expect("driver store poisoned");
            if let Some(claims) = polls.get(&scope_request) {
                if claims.len() == peers && claims.iter().all(|&c| c.is_some() && c == claims[0]) {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "boot election did not settle on {}",
            net.name()
        );
    }
}

/// The shared scenario: burst `BURST` requests, killing the coordinator
/// (the Bully winner — the highest b-peer) halfway through the
/// injections, restarting it while the tail of the burst is still being
/// retried; then verify nothing was lost and nothing cross-talked.
fn burst_with_mid_kill<N: Substrate<WhisperMsg>>(
    net: &mut N,
    topo: &Topology,
    driver: NodeId,
    responses: &Responses,
    coordinators: &Coordinators,
) {
    settle(net, topo, driver, coordinators);
    let coordinator_node = *topo.group_nodes[0].last().expect("at least one b-peer");

    for id in 1..=BURST {
        if id == BURST / 2 {
            net.kill_node(coordinator_node);
        }
        net.inject(
            driver,
            topo.proxy,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope: marked_envelope(id),
            },
        );
    }

    // Bring the victim back while the proxy is still failing over the
    // swallowed half of the burst; restarting mid-recovery also exercises
    // the stale-completion path (parked jobs are dropped on restart).
    std::thread::sleep(Duration::from_millis(700));
    net.restart_node(coordinator_node);

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let got = responses.lock().expect("driver store poisoned").len();
        if got as u64 >= BURST {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{}: only {got}/{BURST} requests answered",
            net.name()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let answered = responses.lock().expect("driver store poisoned").clone();
    assert_eq!(
        answered.len() as u64,
        BURST,
        "{}: every request is answered or failed over",
        net.name()
    );
    let mut faults = 0u64;
    for id in 1..=BURST {
        let envelope = answered
            .get(&id)
            .unwrap_or_else(|| panic!("{}: request {id} lost", net.name()));
        let parsed = Envelope::parse(envelope)
            .unwrap_or_else(|e| panic!("{}: request {id}: bad envelope: {e:?}", net.name()));
        if parsed.is_fault() {
            faults += 1;
            continue;
        }
        // The correlation bar: a successful response must echo its own
        // request's marker — never a sibling's.
        let marker = format!("req-{id:05}");
        assert!(
            envelope.contains(&marker),
            "{}: response for {id} does not carry {marker}: {envelope}",
            net.name()
        );
    }
    // The kill must be masked, not merely answered: the proxy's failover
    // budget (10 attempts x 500 ms) dwarfs the ~1 s re-election, so
    // virtually the whole burst should succeed. Allow a straggler whose
    // attempts raced the election.
    assert!(
        faults <= BURST / 10,
        "{}: {faults}/{BURST} requests faulted instead of failing over",
        net.name()
    );
}

#[test]
fn threadnet_burst_survives_mid_burst_coordinator_kill() {
    let mut builder = ThreadNetBuilder::new();
    let (topo, driver, responses, coordinators) = wire_with_driver(&mut builder, 3);
    let mut net = builder.start();
    burst_with_mid_kill(&mut net, &topo, driver, &responses, &coordinators);
    net.shutdown();
}

#[test]
fn tcpnet_burst_survives_mid_burst_coordinator_kill() {
    let mut builder = TcpNetBuilder::new();
    let (topo, driver, responses, coordinators) = wire_with_driver(&mut builder, 3);
    let mut net = builder.start().expect("loopback sockets");
    burst_with_mid_kill(&mut net, &topo, driver, &responses, &coordinators);
    net.shutdown();
}
