//! One fault plan, two clocks: the same [`FaultPlan`] — coordinator
//! killed and restarted twice — replays against the same [`Deployment`]
//! on the virtual-time simulator and on OS threads, and the availability
//! ledger must tell the *same story* on both: the same ordered sequence
//! of service outages, the same hand-over count, the same per-peer
//! failure tally. Timestamps differ (one clock is virtual, one is the
//! wall), so the comparison is structural.
//!
//! [`Deployment`]: whisper::deploy::Deployment
//! [`FaultPlan`]: whisper_simnet::FaultPlan

use whisper::deploy::Booted;
use whisper::WhisperMsg;
use whisper_bench::experiments::substrate_matrix::{self, MatrixTuning};
use whisper_simnet::{FaultPlan, SimTime, Substrate};

/// The schedule: kill the Bully winner after warmup, restart it, let it
/// bully its way back, then kill and restart it again. Two full outage /
/// recovery cycles — enough for ordering to matter.
fn two_outage_plan(booted: &Booted<impl Substrate<WhisperMsg>>, t: &MatrixTuning) -> FaultPlan {
    let victim = *booted.topology.group_nodes[0]
        .last()
        .expect("the group has b-peers");
    let kill1 = SimTime::ZERO + t.warmup;
    let restart1 = kill1 + t.outage;
    let kill2 = restart1 + t.settle; // the victim has re-claimed the group by now
    let restart2 = kill2 + t.outage;
    let mut plan = FaultPlan::new();
    plan.crash_at(victim, kill1)
        .restart_at(victim, restart1)
        .crash_at(victim, kill2)
        .restart_at(victim, restart2);
    plan
}

/// Replays the plan and flattens what the ledger recorded into an ordered,
/// timestamp-free event trace.
fn outage_trace<N: Substrate<WhisperMsg>>(booted: &mut Booted<N>, t: &MatrixTuning) -> Vec<String> {
    let plan = two_outage_plan(booted, t);
    booted.net.execute_plan(&plan);
    // Horizon: both cycles plus a settle tail for the final recovery.
    booted
        .net
        .advance(t.warmup + t.outage + t.settle + t.outage + t.settle);

    let now = booted.net.now();
    let ledger = booted.ledger.as_ref().expect("ledger wired");
    let mut trace = Vec::new();
    for service in ledger.services() {
        let r = ledger
            .service_report(service, now)
            .expect("listed service has a report");
        for (i, interval) in r.downtime_intervals.iter().enumerate() {
            trace.push(format!(
                "service {service} outage {i}: {}",
                if interval.end.is_some() {
                    "recovered"
                } else {
                    "open"
                }
            ));
        }
        trace.push(format!(
            "service {service}: up={} coordinator={:?} failures={} churn={}",
            r.up, r.coordinator, r.failures, r.churn
        ));
    }
    for peer in ledger.peers() {
        let r = ledger.peer_report(peer, now).expect("listed peer reports");
        if r.failures > 0 || !r.up {
            trace.push(format!("peer {peer}: up={} failures={}", r.up, r.failures));
        }
    }
    trace
}

#[test]
fn same_plan_same_outage_story_on_sim_and_threadnet() {
    let t = MatrixTuning::default();
    let dep = substrate_matrix::deployment(&t);

    let mut sim = dep.boot_sim(5).expect("well-formed scenario");
    let sim_trace = outage_trace(&mut sim, &t);

    let mut live = dep.boot_threadnet().expect("well-formed scenario");
    let live_trace = outage_trace(&mut live, &t);
    live.net.shutdown();

    // Both clocks must report two closed outages, the victim back in
    // charge, and the victim as the only peer that ever failed.
    assert!(
        sim_trace.iter().any(|e| e.contains("outage 1: recovered")),
        "the simulator saw both outages: {sim_trace:?}"
    );
    assert_eq!(
        sim_trace, live_trace,
        "virtual time and OS threads disagree on the outage story"
    );
}
