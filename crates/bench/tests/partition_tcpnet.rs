//! Network partition over real sockets: the coordinator is not killed but
//! *isolated* — its links to the other b-peers and to the SWS-proxy are
//! blocked pair-wise while the process stays alive. The survivors must
//! elect a replacement, the proxy must re-bind requests to the live side,
//! the ledger must account the outage, and healing the partition must let
//! the old coordinator bully its way back.

use std::time::{Duration, Instant};

use whisper_bench::{ClusterTuning, PulseTuning, TcpCluster};
use whisper_simnet::{SimDuration, SimTime};

/// Polls until `cond` yields `Some`, or panics at the deadline.
fn wait_for<T>(what: &str, deadline: Duration, mut cond: impl FnMut() -> Option<T>) -> T {
    let end = Instant::now() + deadline;
    loop {
        if let Some(v) = cond() {
            return v;
        }
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn partitioned_coordinator_is_replaced_and_requests_rebind() {
    let tuning = ClusterTuning::default();
    let boot = Instant::now();
    let cluster =
        TcpCluster::start_pulse(5, tuning, PulseTuning::default()).expect("loopback sockets");
    let survivors: Vec<_> = cluster.bpeer_nodes()[..4].to_vec();
    let coordinator_node = cluster.bpeer_nodes()[4];

    // Boot: all five agree on peer 5 (highest id wins the Bully round).
    let coordinator = wait_for("boot election", Duration::from_secs(15), || {
        let snaps = cluster.poll_snapshots(cluster.bpeer_nodes(), Duration::from_secs(2));
        (snaps.len() == 5)
            .then(|| TcpCluster::agreed_coordinator(&snaps))
            .flatten()
    });
    assert_eq!(coordinator, 5);

    // A request through the healthy cluster lands on the coordinator.
    let first = cluster.submit_student_info("u1000");
    assert_eq!(cluster.await_responses(1, Duration::from_secs(10)), 1);
    assert!(cluster.response(first).is_some());

    // Let heartbeats flow so the outage can be backdated to a real beacon.
    let hb_period = Duration::from_micros(tuning.heartbeat_period.as_micros());
    std::thread::sleep(hb_period * 6);

    // Partition: the coordinator's process stays up, but every link to
    // the other b-peers and to the proxy is gated shut.
    for &s in &survivors {
        cluster.block_link(coordinator_node, s);
    }
    cluster.block_link(coordinator_node, cluster.proxy_node());

    // The survivors stop hearing peer 5 and elect the next-highest id.
    let new_coordinator = wait_for("re-election", Duration::from_secs(20), || {
        let snaps = cluster.poll_snapshots(&survivors, Duration::from_secs(2));
        (snaps.len() == 4)
            .then(|| TcpCluster::agreed_coordinator(&snaps))
            .flatten()
            .filter(|&c| c != coordinator)
    });
    assert_eq!(new_coordinator, 4, "next-highest survivor wins");

    // Split brain: the isolated node still answers scope requests (its
    // link to the probe is untouched) and still believes it coordinates.
    let snaps = cluster.poll_snapshots(&[coordinator_node], Duration::from_secs(2));
    assert_eq!(snaps.len(), 1, "the isolated node is alive, not dead");
    let isolated = &snaps[0].1;
    assert_eq!(
        isolated.election.as_ref().and_then(|e| e.coordinator),
        Some(5),
        "the minority side keeps its stale view: {isolated:?}"
    );

    // A request submitted into the partition must re-bind to the live
    // side and complete — the proxy cannot reach peer 5 at all.
    let second = cluster.submit_student_info("u1001");
    assert_eq!(
        cluster.await_responses(2, Duration::from_secs(30)),
        2,
        "the proxy re-bound to a live b-peer"
    );
    assert!(cluster.response(second).is_some());

    // The ledger accounted the outage: one closed interval, detection no
    // earlier than the configured silence window, service now led by 4.
    let now = SimTime::ZERO + SimDuration::from_micros(boot.elapsed().as_micros() as u64);
    let report = cluster
        .ledger()
        .service_report(1, now)
        .expect("service timeline exists");
    assert!(report.up, "service recovered on the majority side");
    assert_eq!(report.coordinator, Some(4));
    assert_eq!(report.failures, 1, "exactly one outage: {report:?}");
    let interval = report.downtime_intervals[0];
    assert!(interval.end.is_some(), "closed by the re-election");
    assert!(
        interval.detection_latency() >= tuning.failure_timeout,
        "detection before the failure timeout: {interval:?}"
    );
    assert!(report.availability < 1.0);

    // The isolated peer's own timeline is down from the survivors' view.
    let peer = cluster
        .ledger()
        .peer_report(5, now)
        .expect("peer timeline exists");
    assert!(!peer.up, "the partitioned peer reads as down: {peer:?}");

    // Heal the partition and bounce the stale node. Unblocking alone
    // leaves a stable split view — heartbeats carry liveness, not
    // coordinator claims — so the operator's move is a restart: the node
    // comes back with fresh election state and, having the highest id,
    // bullies its way back to coordinator over re-dialed sockets.
    for &s in &survivors {
        cluster.unblock_link(coordinator_node, s);
    }
    cluster.unblock_link(coordinator_node, cluster.proxy_node());
    cluster.kill_node(coordinator_node);
    cluster.restart_node(coordinator_node);
    let healed = wait_for("post-heal election", Duration::from_secs(20), || {
        let snaps = cluster.poll_snapshots(cluster.bpeer_nodes(), Duration::from_secs(2));
        (snaps.len() == 5)
            .then(|| TcpCluster::agreed_coordinator(&snaps))
            .flatten()
            .filter(|&c| c == 5)
    });
    assert_eq!(healed, 5, "highest id reclaims the group after the heal");

    cluster.shutdown();
}
