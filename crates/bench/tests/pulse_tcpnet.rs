//! Acceptance test for the whisper-pulse telemetry plane over real TCP
//! sockets: a cluster serves a hundred-plus sub-millisecond requests and
//! a handful of deliberately slow ones (a 40 ms transcript replica), and
//! the pulse plane must (a) tail-capture a slow request's span tree,
//! (b) report a windowed p99 at the injected latency while p50 stays
//! fast, (c) stay within its configured memory budget, and (d) serve the
//! matching series over the Prometheus-style exposition endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use whisper_bench::{exporter, ClusterTuning, PulseTuning, TcpCluster};
use whisper_simnet::SimDuration;
use whisper_soap::Envelope;

const FAST_REQUESTS: usize = 120;
const SLOW_REQUESTS: usize = 3;
const SLOW_US: u64 = 40_000;

/// Polls until `cond` yields `Some`, or panics at the deadline.
fn wait_for<T>(what: &str, deadline: Duration, mut cond: impl FnMut() -> Option<T>) -> T {
    let end = Instant::now() + deadline;
    loop {
        if let Some(v) = cond() {
            return v;
        }
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One HTTP GET against the exposition endpoint.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to exporter");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    response
}

/// The numeric value of the first exposition line starting with `prefix`.
fn series_value(body: &str, prefix: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(prefix))
        .unwrap_or_else(|| panic!("series {prefix:?} missing from:\n{body}"))
        .trim()
        .parse()
        .expect("numeric sample")
}

#[test]
fn slow_request_is_tail_captured_and_exposed() {
    let pulse = PulseTuning {
        interval: SimDuration::from_millis(100),
        slow_processing: SimDuration::from_micros(SLOW_US),
        ..PulseTuning::default()
    };
    let cluster =
        TcpCluster::start_pulse(3, ClusterTuning::default(), pulse).expect("loopback sockets");

    // Boot: the fast group elects before traffic starts.
    wait_for("boot election", Duration::from_secs(15), || {
        let snaps = cluster.poll_snapshots(cluster.bpeer_nodes(), Duration::from_secs(2));
        (snaps.len() == 3)
            .then(|| TcpCluster::agreed_coordinator(&snaps))
            .flatten()
    });

    // Warm phase: enough fast requests that the tail sampler's p99
    // threshold is trusted (and frozen well below the injected latency).
    // Closed-loop pacing — await each response — so fast requests measure
    // service time, not the queueing of a single burst.
    for i in 0..FAST_REQUESTS {
        cluster.submit_student_info(&format!("u100{}", i % 8));
        let got = cluster.await_responses(i + 1, Duration::from_secs(10));
        assert_eq!(got, i + 1, "fast request {i} answered");
    }

    // The injected tail: requests served by the 40 ms transcript replica.
    let slow_ids: Vec<u64> = (0..SLOW_REQUESTS)
        .map(|i| {
            let id = cluster.submit_transcript("u1004");
            let got = cluster.await_responses(FAST_REQUESTS + i + 1, Duration::from_secs(10));
            assert_eq!(got, FAST_REQUESTS + i + 1, "slow request {i} answered");
            id
        })
        .collect();
    for id in &slow_ids {
        let envelope = cluster.response(*id).expect("transcript response arrived");
        let parsed = Envelope::parse(&envelope).expect("well-formed envelope");
        assert!(
            !parsed.is_fault(),
            "transcript served, not faulted: {envelope}"
        );
    }

    // (a) The tail sampler captured a slow request's span tree and the
    // collector holds it. Captures ride pulse frames, so allow a few
    // intervals for the flush — and keep the workload warm while
    // waiting: the sampler's threshold freezes per window, so on a
    // heavily loaded machine the original burst may land in windows too
    // sparse to warm it. Trickling fast requests plus a transcript each
    // round guarantees a warm window eventually coincides with a tail.
    let store = cluster.pulse_store().clone();
    let mut total = FAST_REQUESTS + SLOW_REQUESTS;
    let trace = wait_for("captured transcript trace", Duration::from_secs(30), || {
        {
            let guard = store.lock().unwrap_or_else(|e| e.into_inner());
            let found = guard
                .outliers()
                .find(|t| t.label == "StudentTranscript")
                .cloned();
            if found.is_some() {
                return found;
            }
        }
        for i in 0..8 {
            cluster.submit_student_info(&format!("u100{i}"));
            total += 1;
            cluster.await_responses(total, Duration::from_secs(10));
        }
        cluster.submit_transcript("u1004");
        total += 1;
        cluster.await_responses(total, Duration::from_secs(10));
        None
    });
    assert!(
        trace.total_us >= SLOW_US,
        "captured latency covers the injected service time: {trace:?}"
    );
    let root = trace
        .spans
        .iter()
        .find(|s| s.parent.is_none())
        .expect("trace has a root span");
    assert_eq!(root.name, "proxy.request", "{trace:?}");
    for span in &trace.spans {
        if let Some(parent) = span.parent {
            assert!(
                trace.spans.iter().any(|s| s.id == parent),
                "parent {parent} resolves within the trace: {trace:?}"
            );
        }
        assert!(span.end_us >= span.start_us, "{span:?}");
    }

    let guard = store.lock().unwrap_or_else(|e| e.into_inner());
    // (b) Windowed quantiles: p99 at the injected latency, p50 fast.
    // The log-bucketed histogram answers interior ranks with the bucket
    // midpoint (within 1.6%), so compare against a small margin.
    let agg = guard.aggregate(usize::MAX);
    let p99 = agg
        .quantile_us("proxy.rtt", 99.0)
        .expect("proxy.rtt series exists");
    let p50 = agg
        .quantile_us("proxy.rtt", 50.0)
        .expect("proxy.rtt series exists");
    assert!(
        p99 >= SLOW_US * 95 / 100,
        "p99 {p99}us sees the {SLOW_US}us injected tail"
    );
    assert!(p50 < SLOW_US / 2, "p50 {p50}us stays fast");

    // Every node reported: 3 fast peers, the transcript peer, the proxy.
    assert_eq!(guard.nodes(), vec![0, 1, 2, 3, 4], "all emitters reported");
    // (c) The pulse plane honours its byte budget.
    assert!(
        guard.approx_bytes() <= guard.max_bytes(),
        "{} bytes held exceeds the {} budget",
        guard.approx_bytes(),
        guard.max_bytes()
    );
    drop(guard);

    // (d) The exposition endpoint serves matching series. The newest
    // requests ride the *next* pulse frame, so poll until the exposed
    // total covers the original workload.
    let exporter = exporter::serve(store, "127.0.0.1:0", usize::MAX).expect("bind exporter");
    let body = wait_for(
        "exposed request total to cover the workload",
        Duration::from_secs(10),
        || {
            let body = scrape(exporter.addr());
            assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
            let requests = series_value(&body, "whisper_request_total ");
            (requests >= (FAST_REQUESTS + SLOW_REQUESTS) as u64).then_some(body)
        },
    );
    let exposed_p99 = series_value(
        &body,
        "whisper_latency_us{series=\"proxy.rtt\",quantile=\"0.99\"} ",
    );
    assert!(
        exposed_p99 >= SLOW_US * 95 / 100,
        "exposed p99 {exposed_p99}us sees the injected tail"
    );
    series_value(
        &body,
        "whisper_latency_us{series=\"proxy.rtt\",quantile=\"0.5\"} ",
    );
    series_value(&body, "whisper_pulse_frames_ingested_total ");
    exporter.stop();
    cluster.shutdown();
}
