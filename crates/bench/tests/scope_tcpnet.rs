//! End-to-end introspection over real sockets: a 5-peer TCP cluster is
//! booted, its coordinator assassinated, and the availability ledger's
//! online record is checked against the independently measured
//! re-election window — the acceptance test for the whisper-scope plane.

use std::time::{Duration, Instant};

use whisper_bench::{ClusterTuning, TcpCluster};
use whisper_simnet::{SimDuration, SimTime};

/// Polls until `cond` yields `Some`, or panics at the deadline.
fn wait_for<T>(what: &str, deadline: Duration, mut cond: impl FnMut() -> Option<T>) -> T {
    let end = Instant::now() + deadline;
    loop {
        if let Some(v) = cond() {
            return v;
        }
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn coordinator_kill_is_ledgered_with_measured_mttr() {
    let tuning = ClusterTuning::default();
    let boot = Instant::now();
    let cluster = TcpCluster::start(5, tuning).expect("loopback sockets");
    let survivors: Vec<_> = cluster.bpeer_nodes()[..4].to_vec();
    let coordinator_node = cluster.bpeer_nodes()[4];

    // Boot: all five agree on peer 5 (highest id wins the Bully round).
    let coordinator = wait_for("boot election", Duration::from_secs(15), || {
        let snaps = cluster.poll_snapshots(cluster.bpeer_nodes(), Duration::from_secs(2));
        (snaps.len() == 5)
            .then(|| TcpCluster::agreed_coordinator(&snaps))
            .flatten()
    });
    assert_eq!(coordinator, 5);
    // Let heartbeats flow so the outage can be backdated to a real beacon.
    let hb_period = Duration::from_micros(tuning.heartbeat_period.as_micros());
    std::thread::sleep(hb_period * 6);

    // Kill the coordinator and measure the re-election window ourselves:
    // kill → every survivor names the same new coordinator.
    let killed_at = Instant::now();
    cluster.kill_node(coordinator_node);
    let new_coordinator = wait_for("re-election", Duration::from_secs(20), || {
        let snaps = cluster.poll_snapshots(&survivors, Duration::from_secs(2));
        (snaps.len() == 4)
            .then(|| TcpCluster::agreed_coordinator(&snaps))
            .flatten()
            .filter(|&c| c != coordinator)
    });
    let measured_window = killed_at.elapsed();
    assert_eq!(new_coordinator, 4, "next-highest survivor wins");

    // The dead node no longer answers scope requests; the others do.
    let snaps = cluster.poll_all(Duration::from_secs(2));
    assert_eq!(snaps.len(), 5, "all nodes but the corpse answer");
    assert!(snaps.iter().all(|(n, _)| *n != coordinator_node));

    // What the ledger recorded, read at "now" (wall time since boot —
    // tcpnet actors stamp SimTime from the same epoch).
    let now = SimTime::ZERO + SimDuration::from_micros(boot.elapsed().as_micros() as u64);
    let report = cluster
        .ledger()
        .service_report(1, now)
        .expect("service timeline exists");
    assert!(report.up, "service recovered");
    assert_eq!(report.coordinator, Some(4));
    assert_eq!(report.failures, 1, "exactly one outage: {report:?}");
    assert_eq!(report.downtime_intervals.len(), 1);
    let interval = report.downtime_intervals[0];
    let mttr = interval.duration().expect("closed by the re-election");
    assert_eq!(report.mttr, Some(mttr));
    assert!(report.availability < 1.0);

    // The outage starts at the coordinator's last heartbeat, so detection
    // took at least the configured silence window.
    assert!(
        interval.detection_latency() >= tuning.failure_timeout,
        "detection before the failure timeout: {interval:?}"
    );

    // MTTR (last heartbeat → new coordinator) must match the measured
    // kill → agreement window. Backdating can stretch it by at most one
    // heartbeat period; our observation of the agreement lags by polling
    // jitter. Allow one period plus scheduling slack.
    let mttr = Duration::from_micros(mttr.as_micros());
    let tolerance = hb_period + Duration::from_millis(150);
    let diff = mttr.abs_diff(measured_window);
    assert!(
        diff <= tolerance,
        "ledger MTTR {mttr:?} vs measured window {measured_window:?} (diff {diff:?} > {tolerance:?})"
    );

    // The killed peer's own timeline went down and stayed down.
    let peer = cluster
        .ledger()
        .peer_report(coordinator, now)
        .expect("peer timeline exists");
    assert!(!peer.up, "the corpse stays down: {peer:?}");

    cluster.shutdown();
}
