//! The machine-readable bench trajectory: a single JSON file
//! (`BENCH_PR10.json`) mapping experiment → key statistics, written next to
//! the CSVs by `all_experiments` and `cluster_health` so successive runs
//! can be diffed by tooling instead of eyeballed from tables.
//!
//! The format is deliberately tiny — two levels of objects with numeric
//! leaves — and both the writer and the parser live here, with no JSON
//! dependency:
//!
//! ```json
//! {
//!   "schema": "whisper-bench-summary/1",
//!   "experiments": {
//!     "fig4": { "linearity_r2": 0.99987, "points": 11 },
//!     "cluster_health": { "mttr_ms": 1312.0, "availability": 0.9972 }
//!   }
//! }
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Identifies the emitted format; bumped on incompatible changes.
pub const SCHEMA: &str = "whisper-bench-summary/1";

/// Experiment → ordered list of `(stat, value)` pairs.
///
/// # Examples
///
/// ```
/// use whisper_bench::BenchSummary;
///
/// let mut s = BenchSummary::new();
/// s.record("fig4", "linearity_r2", 0.999);
/// s.record("fig4", "points", 11.0);
/// let parsed = BenchSummary::parse(&s.to_json()).unwrap();
/// assert_eq!(parsed.get("fig4", "points"), Some(11.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchSummary {
    experiments: Vec<(String, Vec<(String, f64)>)>,
}

impl BenchSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or overwrites) one statistic. Non-finite values are
    /// dropped: they have no JSON representation and a NaN in a trajectory
    /// file would poison every downstream comparison.
    pub fn record(&mut self, experiment: &str, stat: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        let stats = match self.experiments.iter_mut().find(|(n, _)| n == experiment) {
            Some((_, stats)) => stats,
            None => {
                self.experiments.push((experiment.to_string(), Vec::new()));
                &mut self.experiments.last_mut().expect("just pushed").1
            }
        };
        match stats.iter_mut().find(|(k, _)| k == stat) {
            Some((_, v)) => *v = value,
            None => stats.push((stat.to_string(), value)),
        }
    }

    /// Looks up one statistic.
    pub fn get(&self, experiment: &str, stat: &str) -> Option<f64> {
        self.experiments
            .iter()
            .find(|(n, _)| n == experiment)?
            .1
            .iter()
            .find(|(k, _)| k == stat)
            .map(|&(_, v)| v)
    }

    /// Experiment names, in insertion order.
    pub fn experiment_names(&self) -> impl Iterator<Item = &str> {
        self.experiments.iter().map(|(n, _)| n.as_str())
    }

    /// The `(stat, value)` pairs of one experiment, in insertion order
    /// (empty if the experiment was never recorded).
    pub fn stats(&self, experiment: &str) -> impl Iterator<Item = (&str, f64)> {
        self.experiments
            .iter()
            .find(|(n, _)| n == experiment)
            .into_iter()
            .flat_map(|(_, stats)| stats.iter().map(|(k, v)| (k.as_str(), *v)))
    }

    /// Number of recorded experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Copies every statistic of `other` into `self` (overwriting clashes).
    pub fn merge(&mut self, other: &BenchSummary) {
        for (exp, stats) in &other.experiments {
            for (k, v) in stats {
                self.record(exp, k, *v);
            }
        }
    }

    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
        out.push_str("  \"experiments\": {");
        for (ei, (exp, stats)) in self.experiments.iter().enumerate() {
            if ei > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {{", quote(exp)));
            for (si, (k, v)) in stats.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      {}: {}", quote(k), fmt_num(*v)));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses JSON produced by [`BenchSummary::to_json`] (any whitespace
    /// layout): an object with a `"schema"` string and an `"experiments"`
    /// object of objects with numeric values.
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema violation.
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut schema_seen = false;
        let mut summary = BenchSummary::new();
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "schema" => {
                    let v = p.string()?;
                    if v != SCHEMA {
                        return Err(format!("unsupported schema {v:?}"));
                    }
                    schema_seen = true;
                }
                "experiments" => {
                    p.expect(b'{')?;
                    loop {
                        p.skip_ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let exp = p.string()?;
                        p.skip_ws();
                        p.expect(b':')?;
                        p.skip_ws();
                        p.expect(b'{')?;
                        loop {
                            p.skip_ws();
                            if p.eat(b'}') {
                                break;
                            }
                            let stat = p.string()?;
                            p.skip_ws();
                            p.expect(b':')?;
                            p.skip_ws();
                            let v = p.number()?;
                            summary.record(&exp, &stat, v);
                            p.skip_ws();
                            if !p.eat(b',') {
                                p.expect(b'}')?;
                                break;
                            }
                        }
                        p.skip_ws();
                        if !p.eat(b',') {
                            p.expect(b'}')?;
                            break;
                        }
                    }
                }
                other => return Err(format!("unexpected key {other:?}")),
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.expect(b'}')?;
                break;
            }
        }
        if !schema_seen {
            return Err("missing \"schema\" field".to_string());
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(summary)
    }

    /// Writes the summary to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        fs::write(path, self.to_json())
    }

    /// Writes the summary under `target/experiments/BENCH_PR10.json` (next
    /// to the experiment CSVs), merging into whatever an earlier run left
    /// there so the file accumulates the whole trajectory. Returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_merged(&self) -> io::Result<PathBuf> {
        // Anchor to the workspace root (two levels above this crate's
        // manifest): `cargo bench`/`cargo test` run with the *package*
        // directory as CWD, and a relative path would scatter trajectory
        // files instead of accumulating one.
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let path = manifest
            .ancestors()
            .nth(2)
            .unwrap_or(manifest)
            .join("target")
            .join("experiments")
            .join("BENCH_PR10.json");
        let mut merged = fs::read_to_string(&path)
            .ok()
            .and_then(|s| BenchSummary::parse(&s).ok())
            .unwrap_or_default();
        merged.merge(self);
        merged.save_to(&path)?;
        Ok(path)
    }
}

/// Mean wall-clock microseconds over `iters` calls of `f`, after one
/// warm-up call. The Criterion-style benches use this for the quick
/// fixed-iteration pass that feeds [`BenchSummary::save_merged`]: one
/// headline trajectory number per benchmark, alongside Criterion's own
/// statistics.
pub fn time_mean_us(iters: u32, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0, "need at least one timed iteration");
    f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// Formats an f64 so it parses back to the same value: integers without a
/// fraction would be ambiguous with int-only parsers, so keep Rust's
/// shortest round-trip form and make sure a fraction or exponent appears.
fn fmt_num(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// JSON-quotes a string (the keys here are plain ASCII, but be correct).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // input is a &str so the bytes are valid.
                    let start = self.pos;
                    let len = if b < 0x80 {
                        1
                    } else if b < 0xe0 {
                        2
                    } else if b < 0xf0 {
                        3
                    } else {
                        4
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_including_awkward_values() {
        let mut s = BenchSummary::new();
        s.record("fig4", "linearity_r2", 0.999_874_123);
        s.record("fig4", "points", 11.0);
        s.record("cluster_health", "mttr_ms", 1312.25);
        s.record("cluster_health", "availability", 1e-9);
        s.record("rtt", "mean_ms", -0.5); // negatives must survive too
        let json = s.to_json();
        let parsed = BenchSummary::parse(&json).expect("parses");
        assert_eq!(parsed, s);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut s = BenchSummary::new();
        s.record("x", "nan", f64::NAN);
        s.record("x", "inf", f64::INFINITY);
        assert!(s.is_empty(), "no experiment should materialise: {s:?}");
    }

    #[test]
    fn record_overwrites_and_merge_combines() {
        let mut a = BenchSummary::new();
        a.record("e", "k", 1.0);
        a.record("e", "k", 2.0);
        assert_eq!(a.get("e", "k"), Some(2.0));
        let mut b = BenchSummary::new();
        b.record("e", "k", 3.0);
        b.record("other", "x", 4.0);
        a.merge(&b);
        assert_eq!(a.get("e", "k"), Some(3.0));
        assert_eq!(a.get("other", "x"), Some(4.0));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchSummary::parse("").is_err());
        assert!(BenchSummary::parse("{}").is_err(), "schema is mandatory");
        assert!(BenchSummary::parse("{\"schema\": \"other/9\"}").is_err());
        let valid = BenchSummary::new().to_json();
        assert!(BenchSummary::parse(&format!("{valid}x")).is_err());
    }

    #[test]
    fn parse_survives_whitespace_and_escapes() {
        let json =
            "{\"schema\":\"whisper-bench-summary/1\",\"experiments\":{\"a b\\\"c\":{\"k\":1.5e3}}}";
        let s = BenchSummary::parse(json).expect("parses");
        assert_eq!(s.get("a b\"c", "k"), Some(1500.0));
    }

    #[test]
    fn empty_summary_round_trips() {
        let s = BenchSummary::new();
        let parsed = BenchSummary::parse(&s.to_json()).expect("parses");
        assert!(parsed.is_empty());
    }
}
