//! Result tables: aligned console rendering plus CSV export.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;

/// A small result table, printed aligned and exportable as CSV.
///
/// # Examples
///
/// ```
/// let mut t = whisper_bench::Table::new("demo", &["n", "messages"]);
/// t.row(["2", "412"]);
/// t.row(["4", "806"]);
/// assert!(t.render().contains("messages"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.name
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned console form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.name);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV under `target/experiments/<name>.csv` and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self) -> io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a millisecond value with three decimals.
pub(crate) fn ms(d: whisper_simnet::SimDuration) -> String {
    format!("{:.3}", d.as_millis_f64())
}

/// Formats an optional duration as milliseconds.
pub(crate) fn ms_opt(d: Option<whisper_simnet::SimDuration>) -> String {
    d.map(ms).unwrap_or_else(|| "-".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_simnet::SimDuration;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("t", &["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let r = t.render();
        assert!(r.contains("## t"));
        assert!(r.contains("333"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next(), Some("a,bb"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("e", &["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(SimDuration::from_micros(1_500)), "1.500");
        assert_eq!(ms_opt(None), "-");
    }
}
