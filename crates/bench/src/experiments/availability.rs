//! **Availability under churn** — the architecture's reason to exist: "a
//! transparent approach to enable a significant increase in the
//! availability of Web services" (paper §1).
//!
//! Each b-peer alternates between up and down states with exponentially
//! distributed times-to-failure and times-to-repair while an open-loop
//! client keeps invoking the service. A group of one replica approximates
//! the plain (non-replicated) Web service baseline; larger groups show how
//! static redundancy masks the churn.

use crate::Table;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use whisper::{
    ClientConfigTemplate, DeploymentConfig, GroupSpec, ServiceBackend, StudentRegistry, WhisperNet,
    Workload,
};
use whisper_simnet::{FaultPlan, SimDuration, SimTime};
use whisper_xml::Element;

/// Parameters of the availability experiment.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityParams {
    /// Mean time to failure of one replica.
    pub mttf: SimDuration,
    /// Mean time to repair of one replica.
    pub mttr: SimDuration,
    /// Observation horizon.
    pub horizon: SimDuration,
    /// Client request rate (requests per second).
    pub rps: f64,
    /// Client-side timeout (an unanswered request counts as unavailable).
    pub timeout: SimDuration,
    /// Seed for both the simulator and the fault schedule.
    pub seed: u64,
}

impl Default for AvailabilityParams {
    fn default() -> Self {
        AvailabilityParams {
            mttf: SimDuration::from_secs(40),
            mttr: SimDuration::from_secs(10),
            horizon: SimDuration::from_secs(300),
            rps: 10.0,
            timeout: SimDuration::from_secs(8),
            seed: 17,
        }
    }
}

/// One measured deployment.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// Replicas in the group.
    pub replicas: usize,
    /// Requests resolved (completed or timed out).
    pub resolved: u64,
    /// Fraction of resolved requests that succeeded.
    pub availability: f64,
    /// SOAP faults returned.
    pub faults: u64,
    /// Client-side timeouts.
    pub timeouts: u64,
    /// Mean RTT of the successful requests.
    pub mean_rtt: Option<SimDuration>,
}

/// Draws an exponential duration with the given mean.
fn exp_duration(rng: &mut SmallRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(1e-9..1.0);
    SimDuration::from_micros(((-u.ln()) * mean.as_micros() as f64).max(1.0) as u64)
}

/// Builds the crash/restart schedule for `nodes`, one independent
/// alternating-renewal process per node.
fn churn_plan(
    nodes: &[whisper_simnet::NodeId],
    params: AvailabilityParams,
    rng: &mut SmallRng,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &n in nodes {
        let mut t = SimTime::ZERO + SimDuration::from_secs(3); // spare the warmup
        loop {
            t += exp_duration(rng, params.mttf);
            if t.since(SimTime::ZERO) >= params.horizon {
                break;
            }
            plan.crash_at(n, t);
            t += exp_duration(rng, params.mttr);
            if t.since(SimTime::ZERO) >= params.horizon {
                break;
            }
            plan.restart_at(n, t);
        }
    }
    plan
}

/// Measures one replica count.
pub fn run_point(replicas: usize, params: AvailabilityParams) -> AvailabilityRow {
    run_point_traced(replicas, params).0
}

/// [`run_point`] with a [`whisper_obs::Recorder`] attached, exposing the
/// per-request span trees and phase timings behind the availability number
/// (how much of the unavailability is re-binding vs. election vs. timeout).
pub fn run_point_traced(
    replicas: usize,
    params: AvailabilityParams,
) -> (AvailabilityRow, whisper_obs::Recorder) {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..replicas)
        .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
        .collect();
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1005"));
    let interval = SimDuration::from_micros((1_000_000.0 / params.rps) as u64);
    let total = (params.rps * params.horizon.as_secs_f64()) as u64;
    let cfg = DeploymentConfig {
        seed: params.seed,
        service,
        groups: vec![GroupSpec::from_operation("StudentInfoGroup", &op, backends)],
        clients: vec![ClientConfigTemplate {
            workload: Workload::Open {
                interval,
                poisson: true,
            },
            payloads: vec![payload],
            total: Some(total),
            timeout: params.timeout,
            warmup: SimDuration::from_secs(2),
        }],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    let rec = net.enable_obs();

    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xfau64);
    let plan = churn_plan(net.group_nodes(0), params, &mut rng);
    net.apply_faults(&plan);

    net.run_for(params.horizon + params.timeout + SimDuration::from_secs(5));
    let stats = net.client_stats(net.client_ids()[0]);
    (
        AvailabilityRow {
            replicas,
            resolved: stats.completed + stats.timeouts,
            availability: stats.availability().unwrap_or(0.0),
            faults: stats.faults,
            timeouts: stats.timeouts,
            mean_rtt: stats.rtt.mean(),
        },
        rec,
    )
}

/// Sweeps replica counts.
pub fn run_sweep(replica_counts: &[usize], params: AvailabilityParams) -> Vec<AvailabilityRow> {
    replica_counts
        .iter()
        .map(|&k| run_point(k, params))
        .collect()
}

/// One window of the dynamic-growth run.
#[derive(Debug, Clone)]
pub struct GrowthRow {
    /// Window index (each `horizon/3` long).
    pub window: usize,
    /// Replicas alive during the window.
    pub replicas: usize,
    /// Fraction of the window's resolved requests that succeeded.
    pub availability: f64,
    /// Requests resolved within the window.
    pub resolved: u64,
}

/// **Dynamic growth** (paper §4.2: joining peers "dynamically increase the
/// level of availability"). The service starts with a single churning
/// replica; a stable replica joins at ⅓ of the horizon and another at ⅔.
/// Availability is reported per window.
pub fn run_growth(params: AvailabilityParams) -> Vec<GrowthRow> {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> = vec![Box::new(
        StudentRegistry::operational_db().with_sample_data(),
    )];
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1005"));
    let interval = SimDuration::from_micros((1_000_000.0 / params.rps) as u64);
    let total = (params.rps * params.horizon.as_secs_f64()) as u64;
    let cfg = DeploymentConfig {
        seed: params.seed,
        service,
        groups: vec![GroupSpec::from_operation("StudentInfoGroup", &op, backends)],
        clients: vec![ClientConfigTemplate {
            workload: Workload::Open {
                interval,
                poisson: true,
            },
            payloads: vec![payload],
            total: Some(total),
            timeout: params.timeout,
            warmup: SimDuration::from_secs(2),
        }],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");

    // Only the original replica churns, on a fixed cadence (MTTF up,
    // MTTR down) so every window sees the same fault pressure.
    let original = net.group_nodes(0)[0];
    let mut plan = FaultPlan::new();
    let mut t = SimTime::ZERO + SimDuration::from_secs(5);
    while t.since(SimTime::ZERO).as_micros() < params.horizon.as_micros() {
        plan.crash_at(original, t);
        plan.restart_at(original, t + params.mttr);
        t += params.mttf;
    }
    net.apply_faults(&plan);

    let window = SimDuration::from_micros(params.horizon.as_micros() / 3);
    net.run_for(window);
    net.add_bpeer(
        0,
        Box::new(StudentRegistry::data_warehouse().with_sample_data()),
    );
    net.run_for(window);
    net.add_bpeer(
        0,
        Box::new(StudentRegistry::operational_db().with_sample_data()),
    );
    net.run_for(window + params.timeout + SimDuration::from_secs(5));

    // Per-window availability from the request log.
    let outcomes = net.client_outcomes(net.client_ids()[0]);
    let mut rows = Vec::new();
    for w in 0..3 {
        let start = SimTime::ZERO + SimDuration::from_micros(window.as_micros() * w as u64);
        let end = start + window;
        let in_window = outcomes
            .iter()
            .filter(|o| o.sent_at >= start && o.sent_at < end);
        let mut resolved = 0u64;
        let mut good = 0u64;
        for o in in_window {
            if o.completed_at.is_some() || o.timed_out {
                resolved += 1;
                if o.completed_at.is_some() && !o.fault {
                    good += 1;
                }
            }
        }
        rows.push(GrowthRow {
            window: w,
            replicas: w + 1,
            availability: if resolved == 0 {
                0.0
            } else {
                good as f64 / resolved as f64
            },
            resolved,
        });
    }
    rows
}

/// Renders the growth run.
pub fn growth_table(rows: &[GrowthRow]) -> Table {
    let mut t = Table::new(
        "availability_growth",
        &["window", "replicas", "resolved", "availability"],
    );
    for r in rows {
        t.row([
            r.window.to_string(),
            r.replicas.to_string(),
            r.resolved.to_string(),
            format!("{:.4}", r.availability),
        ]);
    }
    t
}

/// Renders the sweep.
pub fn table(rows: &[AvailabilityRow]) -> Table {
    let mut t = Table::new(
        "availability",
        &[
            "replicas",
            "resolved",
            "availability",
            "faults",
            "timeouts",
            "mean rtt ms",
        ],
    );
    for r in rows {
        t.row([
            r.replicas.to_string(),
            r.resolved.to_string(),
            format!("{:.4}", r.availability),
            r.faults.to_string(),
            r.timeouts.to_string(),
            crate::table::ms_opt(r.mean_rtt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AvailabilityParams {
        AvailabilityParams {
            mttf: SimDuration::from_secs(20),
            mttr: SimDuration::from_secs(8),
            horizon: SimDuration::from_secs(90),
            rps: 5.0,
            timeout: SimDuration::from_secs(6),
            seed: 23,
        }
    }

    #[test]
    fn redundancy_increases_availability() {
        let solo = run_point(1, quick());
        let redundant = run_point(3, quick());
        assert!(solo.resolved > 100, "not enough samples: {}", solo.resolved);
        assert!(
            redundant.availability > solo.availability,
            "3 replicas ({:.3}) should beat 1 ({:.3})",
            redundant.availability,
            solo.availability
        );
        assert!(
            redundant.availability > 0.9,
            "replicated availability too low: {:.3}",
            redundant.availability
        );
        // an unreplicated service under this churn is visibly degraded
        assert!(
            solo.availability < 0.97,
            "baseline suspiciously high: {:.3}",
            solo.availability
        );
    }

    #[test]
    fn joining_replicas_raise_availability_mid_run() {
        let rows = run_growth(quick());
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.resolved > 20), "{rows:?}");
        // the lone churning replica degrades the first window...
        assert!(rows[0].availability < 0.98, "{rows:?}");
        // ...and the joined stable replicas mask it afterwards
        assert!(rows[2].availability > rows[0].availability, "{rows:?}");
        assert!(rows[2].availability > 0.97, "{rows:?}");
    }

    #[test]
    fn churn_plan_is_deterministic_per_seed() {
        let nodes = [whisper_simnet::NodeId::from_index(1)];
        let mut r1 = SmallRng::seed_from_u64(5);
        let mut r2 = SmallRng::seed_from_u64(5);
        let p1 = churn_plan(&nodes, quick(), &mut r1);
        let p2 = churn_plan(&nodes, quick(), &mut r2);
        assert_eq!(p1.len(), p2.len());
        assert!(!p1.is_empty());
    }
}
