//! **RTT analysis** (paper §5): "the average latency is approximately
//! 0.5 milliseconds. Nevertheless, in the worst case the RTT can take
//! several seconds. … On the one hand, in case of coordinator failure, the
//! time needed to elect a new coordinator is considerably high. On the
//! other hand, the time to make a new binding between the SWS-proxy and
//! the elected b-peer is also high."
//!
//! Three measurements reproduce that paragraph:
//!
//! 1. **network RTT** — a raw two-node ping over the calibrated LAN model
//!    (what the paper's monitor timestamps): expected ≈ 0.5 ms;
//! 2. **steady-state service RTT** — client → proxy → coordinator → back
//!    (four network hops plus processing);
//! 3. **failover breakdown** — crash the coordinator mid-stream and split
//!    the stalled request's latency into *detect+elect* (failure detection
//!    plus Bully run) and *re-bind* (proxy timeout, member re-discovery,
//!    retry) components.

use crate::Table;
use whisper::{
    ClientConfigTemplate, DeploymentConfig, GroupSpec, ServiceBackend, StudentRegistry, WhisperNet,
    Workload,
};
use whisper_simnet::{Actor, Context, Histogram, NodeId, SimDuration, SimNet, SimTime, Wire};
use whisper_xml::Element;

/// Raw ping message for the network-RTT measurement.
#[derive(Debug, Clone)]
struct Ping {
    sent_at: SimTime,
    /// Pad to a typical SOAP request size.
    size: usize,
    reply: bool,
}

impl Wire for Ping {
    fn wire_size(&self) -> usize {
        self.size
    }
    fn kind(&self) -> &'static str {
        "ping"
    }
}

struct Responder;
impl Actor<Ping> for Responder {
    fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
        if !msg.reply {
            ctx.send(from, Ping { reply: true, ..msg });
        }
    }
}

struct Prober {
    target: NodeId,
    remaining: usize,
    size: usize,
    rtts: Histogram,
}

impl Actor<Ping> for Prober {
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.send(
            self.target,
            Ping {
                sent_at: ctx.now(),
                size: self.size,
                reply: false,
            },
        );
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Ping>, _from: NodeId, msg: Ping) {
        if msg.reply {
            self.rtts.record(ctx.now().since(msg.sent_at));
            self.remaining -= 1;
            if self.remaining > 0 {
                // small gap between probes
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, _token: u64) {
        ctx.send(
            self.target,
            Ping {
                sent_at: ctx.now(),
                size: self.size,
                reply: false,
            },
        );
    }
}

/// Measures the raw two-node RTT over the paper-calibrated LAN for
/// `probes` messages of `size` bytes.
pub fn network_rtt(probes: usize, size: usize, seed: u64) -> Histogram {
    let mut net: SimNet<Ping> = SimNet::new(seed);
    let responder = net.add_node(Responder);
    let prober = net.add_node(Prober {
        target: responder,
        remaining: probes,
        size,
        rtts: Histogram::new(),
    });
    net.run_until_quiescent();
    net.node::<Prober>(prober).rtts.clone()
}

/// The service-level RTT distribution of a closed-loop client.
pub fn service_rtt(requests: u64, bpeers: usize, seed: u64) -> Histogram {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..bpeers)
        .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
        .collect();
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1004"));
    let cfg = DeploymentConfig {
        seed,
        service,
        groups: vec![GroupSpec::from_operation("StudentInfoGroup", &op, backends)],
        clients: vec![ClientConfigTemplate {
            workload: Workload::Closed {
                think: SimDuration::from_millis(20),
                window: 1,
            },
            payloads: vec![payload],
            total: Some(requests),
            timeout: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(2),
        }],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(SimDuration::from_secs(2) + SimDuration::from_millis(25 * requests + 5_000));
    let client = net.client_ids()[0];
    net.client_stats(client).rtt
}

/// The latency anatomy of one coordinator failure.
#[derive(Debug, Clone, Copy)]
pub struct FailoverBreakdown {
    /// Crash → all surviving members agree on a new coordinator
    /// (failure detection + Bully election).
    pub detect_and_elect: SimDuration,
    /// Agreement → the stalled request completes (proxy timeout,
    /// re-discovery of members, retry).
    pub rebind: SimDuration,
    /// Crash → response at the client (the paper's worst-case RTT).
    pub total: SimDuration,
}

/// Crashes the coordinator with a request in flight and measures the
/// recovery timeline.
pub fn failover_breakdown(bpeers: usize, seed: u64) -> FailoverBreakdown {
    failover_traced(bpeers, seed).0
}

/// [`failover_breakdown`] with a [`whisper_obs::Recorder`] attached, so the
/// recovery timeline can also be read as a span tree (election spans, the
/// proxy's re-discovery, the retried invoke).
pub fn failover_traced(bpeers: usize, seed: u64) -> (FailoverBreakdown, whisper_obs::Recorder) {
    let mut net = WhisperNet::student_scenario(bpeers, seed);
    let rec = net.enable_obs();
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];

    // Prime the proxy's caches and binding.
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));

    let crash_at = net.now();
    net.kill_coordinator(0).expect("coordinator exists");
    // The stalled request: issued right after the crash, while every group
    // member still believes in the dead coordinator.
    net.submit_student_request(client, "u1001");

    // Step until the survivors agree on a new coordinator.
    let elected_at = loop {
        net.run_for(SimDuration::from_millis(10));
        let agreed = net
            .group_nodes(0)
            .iter()
            .filter(|&&n| net.is_up(n))
            .all(|&n| {
                net.bpeer(n)
                    .coordinator()
                    .is_some_and(|c| net.directory().node_of(c).is_some_and(|cn| net.is_up(cn)))
            });
        if agreed {
            break net.now();
        }
        assert!(
            net.now().since(crash_at) < SimDuration::from_secs(60),
            "election never converged"
        );
    };

    // Step until the client got its answer.
    let answered_at = loop {
        net.run_for(SimDuration::from_millis(10));
        if net.client_stats(client).completed == 2 {
            break net.now();
        }
        assert!(
            net.now().since(crash_at) < SimDuration::from_secs(60),
            "failover request never completed"
        );
    };

    (
        FailoverBreakdown {
            detect_and_elect: elected_at.since(crash_at),
            rebind: answered_at.since(elected_at),
            total: answered_at.since(crash_at),
        },
        rec,
    )
}

/// Renders the full RTT analysis.
pub fn table(probes: usize, requests: u64, bpeers: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "rtt_analysis",
        &[
            "measurement",
            "min ms",
            "mean ms",
            "p95 ms",
            "p99 ms",
            "max ms",
        ],
    );
    let mut push_hist = |name: &str, h: Histogram| {
        t.row([
            name.to_string(),
            crate::table::ms_opt(h.min()),
            crate::table::ms_opt(h.mean()),
            crate::table::ms_opt(h.percentile(95.0)),
            crate::table::ms_opt(h.percentile(99.0)),
            crate::table::ms_opt(h.max()),
        ]);
    };
    push_hist("network ping (1 KiB)", network_rtt(probes, 1024, seed));
    push_hist(
        "service request (steady)",
        service_rtt(requests, bpeers, seed),
    );

    let f = failover_breakdown(bpeers, seed);
    let ms = crate::table::ms;
    t.row([
        "failover: detect+elect".to_string(),
        "-".into(),
        ms(f.detect_and_elect),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row([
        "failover: re-bind".to_string(),
        "-".into(),
        ms(f.rebind),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.row([
        "failover: total worst-case RTT".to_string(),
        "-".into(),
        ms(f.total),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_rtt_matches_paper_half_millisecond() {
        let h = network_rtt(100, 1024, 7);
        assert_eq!(h.count(), 100);
        let mean = h.mean().expect("samples").as_millis_f64();
        assert!(
            (0.3..=0.8).contains(&mean),
            "mean network RTT {mean} ms outside the paper's ≈0.5 ms band"
        );
        assert!(h.percentile(99.0).expect("samples").as_millis_f64() < 1.0);
    }

    #[test]
    fn steady_service_rtt_is_low_single_digit_ms() {
        let h = service_rtt(30, 3, 5);
        assert_eq!(h.count(), 30);
        // The first (cold) request pays discovery + the gather window; the
        // steady state is the median.
        let p50 = h.percentile(50.0).expect("samples").as_millis_f64();
        assert!((0.5..5.0).contains(&p50), "service RTT median {p50} ms");
        // no multi-second outliers in steady state
        assert!(h.percentile(100.0).expect("samples").as_secs_f64() < 1.0);
    }

    #[test]
    fn failover_takes_seconds_like_the_paper_says() {
        let f = failover_breakdown(3, 11);
        assert!(
            f.total.as_secs_f64() >= 1.0,
            "worst-case RTT {} should be in seconds",
            f.total
        );
        assert!(
            f.total.as_secs_f64() < 30.0,
            "failover unreasonably slow: {}",
            f.total
        );
        // both components the paper blames are non-trivial
        assert!(f.detect_and_elect.as_millis_f64() > 100.0);
        assert!(f.rebind.as_millis_f64() > 0.0);
    }
}
