//! Experiment implementations, one module per table/figure.

pub mod availability;
pub mod chaos_soak;
pub mod cluster_health;
pub mod discovery_cost;
pub mod discovery_quality;
pub mod election;
pub mod failover_sensitivity;
pub mod fig4;
pub mod load;
pub mod load_matrix;
pub mod postmortem;
pub mod qos;
pub mod relay_overhead;
pub mod rtt;
pub mod substrate_matrix;
