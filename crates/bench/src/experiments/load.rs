//! **Throughput/latency under system load** (paper §5): "the proposed
//! solution was able to scale to meet desired throughput and latency
//! requirements".
//!
//! An open-loop Poisson client offers increasing request rates against
//! groups of 1, 3, 5 and 9 replicas with load-sharing enabled. Each
//! replica is an M/D/1-style server with a fixed service time, so a single
//! replica saturates at `1/service_time` requests per second and a group
//! of `k` replicas at roughly `k/service_time` — throughput scales with
//! redundancy, and latency stays flat until the knee.

use crate::Table;
use whisper::{
    BPeerConfig, ClientConfigTemplate, DeploymentConfig, EchoBackend, GroupSpec, ServiceBackend,
    WhisperNet, Workload,
};
use whisper_simnet::SimDuration;
use whisper_xml::Element;

/// One measured operating point.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Replicas in the group.
    pub group_size: usize,
    /// Offered rate in requests per second.
    pub offered_rps: f64,
    /// Completed (non-fault) responses per second of measurement window.
    pub goodput_rps: f64,
    /// Mean service RTT.
    pub mean: Option<SimDuration>,
    /// 99th-percentile service RTT.
    pub p99: Option<SimDuration>,
    /// Requests lost to the client-side timeout.
    pub timeouts: u64,
}

/// Parameters of the load experiment.
#[derive(Debug, Clone, Copy)]
pub struct LoadParams {
    /// Per-request service time at each replica.
    pub service_time: SimDuration,
    /// Measurement window.
    pub window: SimDuration,
    /// Client-side timeout.
    pub timeout: SimDuration,
    /// Simulator seed.
    pub seed: u64,
}

impl Default for LoadParams {
    fn default() -> Self {
        LoadParams {
            service_time: SimDuration::from_millis(2),
            window: SimDuration::from_secs(30),
            timeout: SimDuration::from_secs(5),
            seed: 13,
        }
    }
}

/// Measures one (group size, offered rate) point.
pub fn run_point(group_size: usize, offered_rps: f64, params: LoadParams) -> LoadRow {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..group_size)
        .map(|_| Box::new(EchoBackend) as _)
        .collect();
    let mut group = GroupSpec::from_operation("StudentInfoGroup", &op, backends);
    group.processing_time = Some(params.service_time);

    let interval_us = (1_000_000.0 / offered_rps).max(1.0) as u64;
    let warmup = SimDuration::from_secs(2);
    let total = (offered_rps * params.window.as_secs_f64()) as u64;
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1000"));

    let cfg = DeploymentConfig {
        seed: params.seed,
        service,
        groups: vec![group],
        bpeer: BPeerConfig {
            load_share: true,
            ..BPeerConfig::default()
        },
        clients: vec![ClientConfigTemplate {
            workload: Workload::Open {
                interval: SimDuration::from_micros(interval_us),
                poisson: true,
            },
            payloads: vec![payload],
            total: Some(total),
            timeout: params.timeout,
            warmup,
        }],
        ..DeploymentConfig::default()
    };
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    // warmup + window + drain
    net.run_for(warmup + params.window + params.timeout + SimDuration::from_secs(2));

    let stats = net.client_stats(net.client_ids()[0]);
    let good = stats.completed - stats.faults;
    let rtt = stats.rtt.clone();
    LoadRow {
        group_size,
        offered_rps,
        goodput_rps: good as f64 / params.window.as_secs_f64(),
        mean: rtt.mean(),
        p99: rtt.percentile(99.0),
        timeouts: stats.timeouts,
    }
}

/// Sweeps offered rates for each group size.
pub fn run_sweep(group_sizes: &[usize], rates: &[f64], params: LoadParams) -> Vec<LoadRow> {
    let mut rows = Vec::new();
    for &g in group_sizes {
        for &r in rates {
            rows.push(run_point(g, r, params));
        }
    }
    rows
}

/// Renders the sweep.
pub fn table(rows: &[LoadRow]) -> Table {
    let mut t = Table::new(
        "load_scalability",
        &[
            "replicas",
            "offered rps",
            "goodput rps",
            "mean ms",
            "p99 ms",
            "timeouts",
        ],
    );
    for r in rows {
        t.row([
            r.group_size.to_string(),
            format!("{:.0}", r.offered_rps),
            format!("{:.1}", r.goodput_rps),
            crate::table::ms_opt(r.mean),
            crate::table::ms_opt(r.p99),
            r.timeouts.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> LoadParams {
        LoadParams {
            service_time: SimDuration::from_millis(2),
            window: SimDuration::from_secs(8),
            timeout: SimDuration::from_secs(3),
            seed: 2,
        }
    }

    #[test]
    fn below_saturation_latency_is_flat_and_goodput_tracks_offered() {
        // single replica saturates at 500 rps with 2 ms service time
        let r = run_point(1, 100.0, quick_params());
        assert!(
            r.goodput_rps > 0.85 * r.offered_rps,
            "goodput {} vs offered {}",
            r.goodput_rps,
            r.offered_rps
        );
        let mean = r.mean.expect("completions").as_millis_f64();
        assert!(mean < 10.0, "underloaded latency {mean} ms too high");
    }

    #[test]
    fn single_replica_saturates_but_group_absorbs_the_same_load() {
        let params = quick_params();
        // 800 rps > 500 rps capacity of one replica
        let solo = run_point(1, 800.0, params);
        let group = run_point(5, 800.0, params);
        assert!(
            group.goodput_rps > solo.goodput_rps * 1.3,
            "load sharing did not scale: solo {} vs group {}",
            solo.goodput_rps,
            group.goodput_rps
        );
        let solo_p99 = solo.p99.expect("completions");
        let group_p99 = group.p99.expect("completions");
        assert!(
            group_p99 < solo_p99,
            "group p99 {group_p99} not better than saturated solo {solo_p99}"
        );
    }
}
