//! **Relay overhead** — the cost of JXTA's relay service. The paper (§5)
//! calls its results "encouraging since JXTA is inherently a heavy
//! architecture" providing "an abstract network transport capable of
//! transporting messages between peers, either directly, or via relay
//! peers … traversing firewall or NAT equipment".
//!
//! This ablation quantifies that heaviness: the same deployment runs once
//! with directly reachable b-peers and once with every b-peer firewalled
//! behind the rendezvous relay. Every proxy↔peer and peer↔peer message
//! then takes two hops instead of one, roughly doubling steady-state RTT
//! and total message count, while the architecture keeps functioning —
//! including failover.

use crate::Table;
use whisper::{
    ClientConfigTemplate, DeploymentConfig, GroupSpec, ServiceBackend, StudentRegistry, WhisperNet,
    Workload,
};
use whisper_simnet::{SimDuration, SimTime};
use whisper_xml::Element;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct RelayRow {
    /// Whether the b-peers sat behind the relay.
    pub firewalled: bool,
    /// Requests completed (of the configured workload).
    pub completed: u64,
    /// Faults observed.
    pub faults: u64,
    /// Median steady-state service RTT.
    pub p50: Option<SimDuration>,
    /// Total messages during the measured window.
    pub messages: u64,
    /// Messages that leaked onto blocked links (must be zero: the relay
    /// layer must carry everything).
    pub partition_drops: u64,
}

fn deployment(firewalled: bool, bpeers: usize, seed: u64) -> WhisperNet {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..bpeers)
        .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
        .collect();
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1003"));
    let cfg = DeploymentConfig {
        seed,
        service,
        groups: vec![GroupSpec::from_operation("StudentInfoGroup", &op, backends)],
        use_rendezvous: true,
        firewall_bpeers: firewalled,
        clients: vec![ClientConfigTemplate {
            workload: Workload::Closed {
                think: SimDuration::from_millis(20),
                window: 1,
            },
            payloads: vec![payload],
            total: Some(100),
            timeout: SimDuration::from_secs(20),
            warmup: SimDuration::from_secs(2),
        }],
        ..DeploymentConfig::default()
    };
    WhisperNet::build(cfg).expect("valid deployment")
}

/// Measures one configuration (3 b-peers, 100 closed-loop requests).
pub fn run_point(firewalled: bool, seed: u64) -> RelayRow {
    let mut net = deployment(firewalled, 3, seed);
    net.run_until(SimTime::from_micros(2_000_000));
    net.reset_metrics();
    net.run_for(SimDuration::from_secs(20));
    let stats = net.client_stats(net.client_ids()[0]);
    let rtt = stats.rtt.clone();
    RelayRow {
        firewalled,
        completed: stats.completed,
        faults: stats.faults,
        p50: rtt.percentile(50.0),
        messages: net.metrics().messages_sent(),
        partition_drops: net.metrics().messages_partitioned(),
    }
}

/// Runs both configurations.
pub fn run_both(seed: u64) -> (RelayRow, RelayRow) {
    (run_point(false, seed), run_point(true, seed))
}

/// Renders the comparison.
pub fn table(direct: &RelayRow, relayed: &RelayRow) -> Table {
    let mut t = Table::new(
        "relay_overhead",
        &[
            "topology",
            "completed",
            "faults",
            "p50 ms",
            "messages",
            "leaked",
        ],
    );
    for r in [direct, relayed] {
        t.row([
            if r.firewalled {
                "firewalled (via relay)"
            } else {
                "direct"
            }
            .to_string(),
            r.completed.to_string(),
            r.faults.to_string(),
            crate::table::ms_opt(r.p50),
            r.messages.to_string(),
            r.partition_drops.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_doubles_rtt_but_masks_the_firewall() {
        let (direct, relayed) = run_both(29);
        assert_eq!(direct.completed, 100, "{direct:?}");
        assert_eq!(relayed.completed, 100, "{relayed:?}");
        assert_eq!(direct.faults, 0);
        assert_eq!(relayed.faults, 0);
        // nothing may leak onto the blocked links
        assert_eq!(relayed.partition_drops, 0, "traffic bypassed the relay");

        let d = direct.p50.expect("samples").as_millis_f64();
        let r = relayed.p50.expect("samples").as_millis_f64();
        // proxy→peer and peer→proxy go via the relay (4 hops → 6 hops),
        // so the service RTT grows by roughly half again
        assert!(
            r > 1.3 * d && r < 3.0 * d,
            "relayed p50 {r:.3} ms should be ~1.5x direct {d:.3} ms"
        );
        assert!(
            relayed.messages > direct.messages,
            "relaying must add messages: {} vs {}",
            relayed.messages,
            direct.messages
        );
    }

    #[test]
    fn failover_still_works_behind_the_relay() {
        let mut net = deployment(true, 3, 31);
        net.run_for(SimDuration::from_secs(3));
        let client = net.client_ids()[0];
        // interrupt the closed loop by crashing the coordinator mid-run
        net.kill_coordinator(0).expect("coordinator exists");
        net.run_for(SimDuration::from_secs(40));
        let stats = net.client_stats(client);
        assert_eq!(
            stats.faults, 0,
            "failover behind NAT must be masked: {stats:?}"
        );
        assert!(stats.completed >= 90, "workload should finish: {stats:?}");
        assert_eq!(net.metrics().messages_partitioned(), 0);
    }
}
