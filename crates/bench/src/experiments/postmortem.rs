//! **Postmortem matrix (E15)** — SLO burn-rate alerts trigger flight
//! captures, and the captured timelines tell the whole failover story.
//!
//! This closes the observability loop over PR 7's substrate matrix: the
//! same 5-peer deployment and the same kill/restart [`FaultPlan`] run on
//! all three runtimes, but now with the always-on flight recorder wired
//! into every node and an [`SloEngine`] watching the availability ledger.
//! When the outage burns through the error budget fast enough to trip the
//! multi-window alert, the harness snapshots every node's flight ring and
//! merges them into one causally-ordered [`IncidentTimeline`]; when the
//! alert clears, the capture is sealed with the complete arc.
//!
//! The assertion that matters: each kill produces **exactly one** sealed
//! capture, and inside it the story reads in happens-before order —
//! fault-injection `kill`, then a survivor's heartbeat *miss*, then the
//! re-election milestone, then the proxy re-binding the group to the new
//! coordinator. That order is recovered purely from Lamport clocks
//! carried on the wire, not from synchronized wall clocks, which is why
//! it holds on real sockets as well as in virtual time.
//!
//! [`FaultPlan`]: whisper_simnet::FaultPlan

use crate::Table;
use whisper::deploy::{Booted, Deployment};
use whisper::{ClientConfigTemplate, WhisperMsg, Workload};
use whisper_obs::{FlightEventKind, IncidentTimeline, SloConfig, SloEngine, SloEvent};
use whisper_simnet::{SimDuration, SimTime, Substrate};
use whisper_xml::Element;

use super::substrate_matrix::{self, MatrixTuning};

/// One SLO-triggered flight capture: opened when the burn-rate alert
/// fires, sealed (re-captured) when it clears so the timeline holds the
/// complete incident arc.
#[derive(Debug, Clone)]
pub struct IncidentCapture {
    /// When the burn-rate alert fired.
    pub fired_at: SimTime,
    /// When the alert cleared; `None` if still firing at the horizon.
    pub cleared_at: Option<SimTime>,
    /// The merged, causally-ordered timeline at seal time.
    pub timeline: IncidentTimeline,
}

/// What one substrate's postmortem leg produced.
#[derive(Debug, Clone)]
pub struct PostmortemOutcome {
    /// `"sim"`, `"threadnet"` or `"tcp"`.
    pub substrate: &'static str,
    /// Availability alerts fired over the horizon.
    pub alerts_fired: u64,
    /// SLO-triggered captures, in fire order.
    pub captures: Vec<IncidentCapture>,
    /// Error budget left on the availability objective at the horizon.
    pub budget_remaining: f64,
    /// The rendered post-mortem report for the first capture (empty when
    /// nothing fired).
    pub report: String,
    /// The same capture as JSONL, one event per line.
    pub jsonl: String,
}

impl PostmortemOutcome {
    /// Whether every sealed capture is causally consistent *and* tells
    /// the full kill story (see [`kill_story_ok`]).
    pub fn captures_ok(&self) -> bool {
        !self.captures.is_empty()
            && self
                .captures
                .iter()
                .all(|c| c.timeline.causally_consistent() && kill_story_ok(&c.timeline))
    }
}

/// The E14 scenario plus an open-loop client, so the proxy holds a live
/// binding that the failover forces it to re-establish. Proxy retries are
/// tightened so the re-bind lands inside the outage window.
pub fn scenario(t: &MatrixTuning) -> Deployment {
    let mut dep = substrate_matrix::deployment(t);
    dep.proxy.request_timeout = SimDuration::from_millis(300);
    dep.proxy.retry_backoff = SimDuration::from_millis(100);
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1000"));
    dep.clients.push(ClientConfigTemplate {
        workload: Workload::Open {
            interval: SimDuration::from_millis(100),
            poisson: false,
        },
        payloads: vec![payload],
        total: None,
        timeout: SimDuration::from_secs(3),
        warmup: SimDuration::from_millis(500),
    });
    dep
}

/// Walks the merged timeline and checks the failover arc appears in
/// happens-before order: a `kill` fault, then a heartbeat miss, then an
/// election milestone, then the proxy re-binding the group.
pub fn kill_story_ok(timeline: &IncidentTimeline) -> bool {
    let mut stage = 0usize;
    for ev in timeline.events() {
        stage = match (stage, &ev.kind) {
            (0, FlightEventKind::Fault { action }) if action.starts_with("kill") => 1,
            (1, FlightEventKind::HeartbeatMiss { .. }) => 2,
            (2, FlightEventKind::Election { detail, .. }) if detail == "elected" => 3,
            (3, FlightEventKind::Bind { rebind: true, .. }) => return true,
            _ => stage,
        };
    }
    false
}

/// Runs the kill/restart schedule on one booted substrate with the SLO
/// engine in the loop: the harness advances in short slices, feeds the
/// ledger's cumulative downtime into the engine, and every `Fired`
/// transition opens a flight capture that the matching `Cleared` seals.
///
/// This function sees only [`Substrate`], so — like the E14 leg it
/// extends — it is literally the same code on virtual time, OS threads
/// and TCP loopback.
pub fn run_on<N: Substrate<WhisperMsg>>(
    booted: &mut Booted<N>,
    t: &MatrixTuning,
) -> PostmortemOutcome {
    let plan = substrate_matrix::fault_plan(&booted.topology, t);
    let ledger = booted
        .ledger
        .clone()
        .expect("the postmortem deployment wires a ledger");
    let flight = booted
        .flight
        .clone()
        .expect("the postmortem deployment wires the flight plane");
    let proxy_flight = flight
        .handle(booted.topology.proxy.index() as u64)
        .cloned()
        .expect("every node has a ring");
    let service = booted.topology.group_ids[0].value();
    let mut slo = SloEngine::new(SloConfig::default());

    booted.net.execute_plan(&plan);

    let step = SimDuration::from_millis(50);
    let horizon = SimTime::ZERO + t.horizon();
    let mut captures: Vec<IncidentCapture> = Vec::new();
    let mut open: Option<usize> = None;
    while booted.net.now() < horizon {
        booted.net.advance(step);
        let now = booted.net.now();
        let downtime = ledger
            .service_report(service, now)
            .map(|r| r.downtime)
            .unwrap_or(SimDuration::ZERO);
        for ev in slo.tick(now, downtime, None) {
            match ev {
                SloEvent::Fired { objective, at, .. } => {
                    // The alert itself becomes flight evidence, then the
                    // rings are snapshotted while the incident is hot.
                    proxy_flight.note_alert(at, objective, true);
                    captures.push(IncidentCapture {
                        fired_at: at,
                        cleared_at: None,
                        timeline: flight.capture(),
                    });
                    open = Some(captures.len() - 1);
                }
                SloEvent::Cleared { objective, at } => {
                    proxy_flight.note_alert(at, objective, false);
                    if let Some(i) = open.take() {
                        captures[i].cleared_at = Some(at);
                        captures[i].timeline = flight.capture();
                    }
                }
            }
        }
    }
    // An alert still firing at the horizon seals with what we have.
    if let Some(i) = open.take() {
        captures[i].timeline = flight.capture();
    }

    let now = booted.net.now();
    let budget_remaining = slo
        .status()
        .iter()
        .find(|s| s.objective == "availability")
        .map(|s| s.budget_remaining)
        .unwrap_or(1.0);
    let (report, jsonl) = captures
        .first()
        .map(|c| {
            (
                c.timeline.render_report(&ledger, now),
                c.timeline.to_jsonl(),
            )
        })
        .unwrap_or_default();
    PostmortemOutcome {
        substrate: booted.net.name(),
        alerts_fired: slo.fired_total(),
        captures,
        budget_remaining,
        report,
        jsonl,
    }
}

/// Boots the scenario on all three substrates in turn and runs the same
/// SLO-supervised schedule on each.
pub fn run_matrix(t: &MatrixTuning) -> Vec<PostmortemOutcome> {
    let dep = scenario(t);
    let mut rows = Vec::with_capacity(3);

    let mut sim = dep
        .boot_sim(11)
        .expect("the postmortem scenario is well-formed");
    rows.push(run_on(&mut sim, t));

    let mut threads = dep
        .boot_threadnet()
        .expect("the postmortem scenario is well-formed");
    rows.push(run_on(&mut threads, t));
    threads.net.shutdown();

    let mut tcp = dep.boot_tcp().expect("loopback sockets");
    rows.push(run_on(&mut tcp, t));
    tcp.net.shutdown();

    rows
}

/// Renders the matrix.
pub fn table(rows: &[PostmortemOutcome]) -> Table {
    let mut t = Table::new(
        "postmortem",
        &[
            "substrate",
            "alerts",
            "captures",
            "causal",
            "kill story",
            "events",
            "budget left",
        ],
    );
    for r in rows {
        let causal = r.captures.iter().all(|c| c.timeline.causally_consistent());
        let story = r.captures.iter().all(|c| kill_story_ok(&c.timeline));
        let events = r
            .captures
            .first()
            .map(|c| c.timeline.events().len())
            .unwrap_or(0);
        t.row([
            r.substrate.to_string(),
            r.alerts_fired.to_string(),
            r.captures.len().to_string(),
            causal.to_string(),
            story.to_string(),
            events.to_string(),
            format!("{:.3}", r.budget_remaining),
        ]);
    }
    t
}

/// Records the matrix into the bench trajectory (`BENCH_PR10.json`):
/// per-substrate alert/capture counts and the boolean gates as 0/1.
pub fn record(summary: &mut crate::BenchSummary, rows: &[PostmortemOutcome]) {
    for r in rows {
        summary.record(
            "postmortem",
            &format!("{}_alerts", r.substrate),
            r.alerts_fired as f64,
        );
        summary.record(
            "postmortem",
            &format!("{}_captures", r.substrate),
            r.captures.len() as f64,
        );
        summary.record(
            "postmortem",
            &format!("{}_captures_ok", r.substrate),
            r.captures_ok() as u64 as f64,
        );
        summary.record(
            "postmortem",
            &format!("{}_budget_remaining", r.substrate),
            r.budget_remaining,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full E15 loop on the simulator leg: one kill, one alert, one
    /// sealed capture holding the causally-ordered failover story.
    #[test]
    fn sim_kill_produces_exactly_one_causal_capture() {
        let t = MatrixTuning::default();
        let dep = scenario(&t);
        let mut booted = dep.boot_sim(11).expect("well-formed");
        let row = run_on(&mut booted, &t);

        assert_eq!(row.substrate, "sim");
        assert_eq!(row.alerts_fired, 1, "one outage, one alert: {row:?}");
        assert_eq!(row.captures.len(), 1, "one alert, one capture");
        let cap = &row.captures[0];
        assert!(cap.cleared_at.is_some(), "the alert cleared after repair");
        assert!(cap.timeline.causally_consistent(), "no recv before send");
        assert!(
            kill_story_ok(&cap.timeline),
            "kill -> miss -> election -> re-bind, in happens-before order"
        );
        assert!(
            row.budget_remaining < 1.0,
            "the outage spent error budget: {}",
            row.budget_remaining
        );
        assert!(row.report.contains("incident report"), "report rendered");
        assert!(!row.jsonl.is_empty(), "jsonl rendered");
    }

    /// The alert evidence itself lands in the captured timeline: the
    /// sealed capture shows the availability alert firing and clearing.
    #[test]
    fn sealed_capture_contains_the_alert_transitions() {
        let t = MatrixTuning::default();
        let dep = scenario(&t);
        let mut booted = dep.boot_sim(7).expect("well-formed");
        let row = run_on(&mut booted, &t);
        let cap = row.captures.first().expect("one capture");
        let fired = cap.timeline.events().iter().any(|e| {
            matches!(&e.kind, FlightEventKind::Alert { name, firing } if name == "availability" && *firing)
        });
        assert!(fired, "alert-fired evidence in the ring");
    }
}
