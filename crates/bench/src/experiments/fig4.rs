//! **Figure 4** — "Variation of the number of messages exchanged as the
//! number of B-peers increases".
//!
//! The paper's headline scalability result: adding b-peers increases the
//! message volume *linearly* ("good linear horizontal scalability").
//! Whisper's steady-state chatter is heartbeat traffic arranged in a star
//! around the coordinator (2·(n−1) beacons per period), so the per-second
//! message rate grows linearly in the group size; startup adds a one-time
//! burst of advertisements plus the boot election.
//!
//! Counts are exact: the deterministic simulator counts every transmitted
//! message, so the figure is reproducible bit-for-bit from the seed.

use crate::Table;
use whisper::WhisperNet;
use whisper_simnet::SimDuration;

/// One point of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Number of b-peers in the group.
    pub bpeers: usize,
    /// Messages during startup (publication + boot election), one-time.
    pub startup_msgs: u64,
    /// Messages during the steady-state measurement window.
    pub steady_msgs: u64,
    /// Steady-state messages per second.
    pub steady_per_sec: f64,
    /// Heartbeats within the steady window.
    pub heartbeats: u64,
    /// Messages for `requests` service invocations (discovery amortized).
    pub request_msgs: u64,
    /// Total across all three phases.
    pub total: u64,
}

/// Parameters of the Figure 4 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Params {
    /// Steady-state observation window.
    pub steady_window: SimDuration,
    /// Service requests issued after the steady window.
    pub requests: usize,
    /// Simulator seed.
    pub seed: u64,
}

impl Default for Fig4Params {
    fn default() -> Self {
        Fig4Params {
            steady_window: SimDuration::from_secs(60),
            requests: 20,
            seed: 4,
        }
    }
}

/// Measures one group size.
pub fn run_point(bpeers: usize, params: Fig4Params) -> Fig4Row {
    run_point_traced(bpeers, params).0
}

/// [`run_point`] with a [`whisper_obs::Recorder`] attached: the same
/// message counts, plus per-kind network counters and span trees for the
/// phase-3 service requests.
pub fn run_point_traced(bpeers: usize, params: Fig4Params) -> (Fig4Row, whisper_obs::Recorder) {
    let mut net = WhisperNet::student_scenario(bpeers, params.seed);
    let rec = net.enable_obs();

    // Phase 1: startup (advertisement publication + boot election).
    net.run_for(SimDuration::from_secs(2));
    let startup_msgs = net.metrics().messages_sent();

    // Phase 2: steady state.
    net.reset_metrics();
    net.run_for(params.steady_window);
    let steady_msgs = net.metrics().messages_sent();
    let heartbeats = net.metrics().sent_of_kind("heartbeat");

    // Phase 3: service requests.
    net.reset_metrics();
    let client = net.client_ids()[0];
    for i in 0..params.requests {
        net.submit_student_request(client, &format!("u100{}", i % 10));
        net.run_for(SimDuration::from_millis(500));
    }
    let phase3 = net.metrics().messages_sent();
    // Heartbeats continue during phase 3; attribute only the non-heartbeat
    // traffic to the requests.
    let request_msgs = phase3 - net.metrics().sent_of_kind("heartbeat");

    (
        Fig4Row {
            bpeers,
            startup_msgs,
            steady_msgs,
            steady_per_sec: steady_msgs as f64 / params.steady_window.as_secs_f64(),
            heartbeats,
            request_msgs,
            total: startup_msgs + steady_msgs + phase3,
        },
        rec,
    )
}

/// Runs the full sweep.
pub fn run_sweep(sizes: &[usize], params: Fig4Params) -> Vec<Fig4Row> {
    sizes.iter().map(|&n| run_point(n, params)).collect()
}

/// Renders the figure as a table.
pub fn table(rows: &[Fig4Row]) -> Table {
    let mut t = Table::new(
        "fig4_messages",
        &[
            "b-peers",
            "startup",
            "steady(60s)",
            "msgs/s",
            "heartbeats",
            "20-req msgs",
            "total",
        ],
    );
    for r in rows {
        t.row([
            r.bpeers.to_string(),
            r.startup_msgs.to_string(),
            r.steady_msgs.to_string(),
            format!("{:.1}", r.steady_per_sec),
            r.heartbeats.to_string(),
            r.request_msgs.to_string(),
            r.total.to_string(),
        ]);
    }
    t
}

/// Least-squares linearity check: returns the coefficient of determination
/// (R²) of a linear fit of `y` against `x`. The paper claims the growth is
/// linear; the integration tests assert `R² > 0.98`.
pub fn linear_r2(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 1.0;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    if ss_tot.abs() < f64::EPSILON {
        return 1.0;
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_messages_grow_linearly() {
        let params = Fig4Params {
            steady_window: SimDuration::from_secs(10),
            requests: 2,
            seed: 1,
        };
        let rows = run_sweep(&[2, 4, 6, 8], params);
        let points: Vec<(f64, f64)> = rows
            .iter()
            .map(|r| (r.bpeers as f64, r.steady_msgs as f64))
            .collect();
        let r2 = linear_r2(&points);
        assert!(
            r2 > 0.98,
            "steady-state growth not linear: R²={r2}, {points:?}"
        );
        // strictly increasing
        assert!(points.windows(2).all(|w| w[0].1 < w[1].1), "{points:?}");
    }

    #[test]
    fn heartbeats_dominate_steady_state() {
        let params = Fig4Params {
            steady_window: SimDuration::from_secs(10),
            requests: 0,
            seed: 1,
        };
        let r = run_point(5, params);
        assert!(
            r.heartbeats as f64 > 0.9 * r.steady_msgs as f64,
            "heartbeats {} of {}",
            r.heartbeats,
            r.steady_msgs
        );
    }

    #[test]
    fn identical_seeds_reproduce_counts() {
        let params = Fig4Params {
            steady_window: SimDuration::from_secs(5),
            requests: 3,
            seed: 9,
        };
        assert_eq!(run_point(3, params), run_point(3, params));
    }

    #[test]
    fn r2_of_perfect_line_is_one() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((linear_r2(&pts) - 1.0).abs() < 1e-12);
        // constant y: fit is exact
        let flat: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 2.0)).collect();
        assert_eq!(linear_r2(&flat), 1.0);
    }
}
