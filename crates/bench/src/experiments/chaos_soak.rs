//! **Chaos soak (E17)** — gray-failure injection against the fail-slow-aware
//! resilience layer, end to end on the wall-clock substrates.
//!
//! The earlier fault experiments kill nodes outright; real B2B outages are
//! mostly *gray*: lossy links, duplicated frames, a coordinator that still
//! answers but ten times slower. This soak arms the chaos plane
//! ([`FaultAction::Degrade`]/[`FaultAction::Stall`]/[`FaultAction::Slow`])
//! on every interior link of a live deployment while a driver injects a
//! steady request stream, and then checks the properties the resilience
//! layer promises:
//!
//! 1. **Exactly-once** — every injected request id is answered exactly
//!    once at the edge, however many copies the chaos plane manufactured
//!    inside (the proxy absorbs surplus replies and counts them).
//! 2. **Goodput floor** — under 5 % loss plus a doubled round trip the
//!    non-fault completion rate stays above [`ChaosTuning::goodput_floor`].
//! 3. **Gray visibility** — every injected gray action surfaces in the
//!    flight recorder, and the availability ledger never books the gray
//!    period as downtime (the service stayed up, just degraded).
//!
//! The companion [`race`] measures *why* the fail-slow detector exists: it
//! times recovery after a coordinator crash (detection → re-election →
//! re-bind) against recovery after the same coordinator turns fail-slow
//! (latency-EWMA trip → delegated bypass, no election), on the same
//! substrate with the same timeouts.
//!
//! The driver↔proxy edge stays pristine on purpose: answers must be
//! observable to be countable, so chaos is confined to the proxy↔b-peer
//! and b-peer↔b-peer links — exactly the links a real integration cannot
//! see into.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::Table;
use whisper::{
    BPeerConfig, EchoBackend, GroupSpec, ProxyConfig, ScenarioWiring, ServiceBackend, Topology,
    WhisperMsg,
};
use whisper_election::BullyConfig;
use whisper_obs::{AvailabilityLedger, FlightEventKind, Recorder};
use whisper_simnet::tcpnet::TcpNetBuilder;
use whisper_simnet::threadnet::ThreadNetBuilder;
use whisper_simnet::{
    Actor, Context, DegradeSpec, FaultAction, FaultPlan, NodeId, SimDuration, Spawner, Substrate,
};
use whisper_soap::Envelope;
use whisper_xml::Element;

/// Soak shape: request stream, gray-failure mix, and acceptance bars.
#[derive(Debug, Clone)]
pub struct ChaosTuning {
    /// Redundant b-peers in the group.
    pub peers: usize,
    /// Requests the driver injects over the soak.
    pub requests: u64,
    /// Clean requests before the gray plane arms (these also feed the
    /// fail-slow detector its healthy-latency baseline).
    pub warmup_requests: u64,
    /// Spacing between injected requests.
    pub gap: SimDuration,
    /// The gray spec applied to every interior link once armed.
    pub degrade: DegradeSpec,
    /// Mid-soak outbound freeze of the coordinator. Kept *below* the
    /// failure timeout: a stall this short must degrade, not trip the
    /// crash detector.
    pub stall: SimDuration,
    /// Mid-soak coordinator slowdown, in hundredths (5_100 = 51×: on the
    /// live substrates every message touching the node is held ~50 ms).
    pub slow_factor: u32,
    /// Proxy latency-EWMA threshold for demoting a fail-slow peer.
    pub fail_slow_after: SimDuration,
    /// Budget for draining the tail after the last injection.
    pub drain: SimDuration,
    /// Minimum acceptable non-fault completion rate.
    pub goodput_floor: f64,
    /// When set, replayed via [`Substrate::execute_plan`] at soak start
    /// *instead of* the built-in degrade/stall/slow schedule — the
    /// `whisper-chaos --plan <file>` path.
    pub plan: Option<FaultPlan>,
}

impl Default for ChaosTuning {
    /// 5 % loss, ~1 ms of added one-way latency (≈2× the healthy loopback
    /// round trip), a dash of duplication/reordering/corruption, one
    /// sub-timeout stall and one 51× coordinator slowdown — over 36
    /// requests at 60 ms spacing.
    fn default() -> Self {
        ChaosTuning {
            peers: 3,
            requests: 36,
            warmup_requests: 6,
            gap: SimDuration::from_millis(60),
            degrade: DegradeSpec {
                latency: SimDuration::from_millis(1),
                jitter: SimDuration::from_millis(1),
                loss_pct: 5,
                dup_pct: 3,
                reorder_pct: 2,
                corrupt_pct: 2,
            },
            stall: SimDuration::from_millis(200),
            slow_factor: 5_100,
            fail_slow_after: SimDuration::from_millis(25),
            drain: SimDuration::from_secs(20),
            goodput_floor: 0.9,
            plan: None,
        }
    }
}

/// What one substrate's soak delivered.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// `"sim"`, `"threadnet"` or `"tcp"`.
    pub substrate: &'static str,
    /// Requests injected.
    pub requests: u64,
    /// Distinct request ids answered at the edge.
    pub answered: u64,
    /// Request ids never answered (must be 0).
    pub lost: u64,
    /// Request ids answered more than once (must be 0).
    pub duplicated: u64,
    /// Answers that were SOAP faults.
    pub faults: u64,
    /// Non-fault completions / requests.
    pub goodput: f64,
    /// Fail-slow demotions the proxy performed.
    pub fail_slow_rebinds: u64,
    /// Surplus replies the proxy absorbed instead of forwarding.
    pub surplus_replies: u64,
    /// Corrupted frames counted (and survived) by the transport.
    pub decode_errors: u64,
    /// Gray fault events visible in the merged flight timeline.
    pub gray_faults_recorded: u64,
    /// Whether the ledger says the service was up when the books closed.
    pub ledger_up: bool,
}

impl SoakOutcome {
    /// The E17 acceptance bar for one substrate.
    pub fn accepted(&self, t: &ChaosTuning) -> bool {
        self.lost == 0
            && self.duplicated == 0
            && self.goodput >= t.goodput_floor
            && self.ledger_up
            && self.gray_faults_recorded > 0
    }
}

/// Crash-path vs fail-slow-path recovery on one substrate.
#[derive(Debug, Clone, Copy)]
pub struct RaceOutcome {
    /// `"sim"`, `"threadnet"` or `"tcp"`.
    pub substrate: &'static str,
    /// Fault → first fast answer after a coordinator crash (detection +
    /// re-election + re-bind).
    pub crash_recovery: SimDuration,
    /// Fault → first fast answer after the coordinator turns fail-slow
    /// (EWMA trip + delegated bypass; no election).
    pub fail_slow_recovery: SimDuration,
}

/// Collected SOAP responses: id → (copies seen, last envelope).
type Responses = Arc<Mutex<HashMap<u64, (u32, String)>>>;

/// Per-poll coordinator claims from the b-peers, keyed by scope request.
type Coordinators = Arc<Mutex<HashMap<u64, Vec<Option<u64>>>>>;

/// The soak's edge: counts every copy of every answer, so duplicate
/// suppression is checked where it matters — at the client boundary.
struct ChaosDriver {
    responses: Responses,
    coordinators: Coordinators,
}

impl Actor<WhisperMsg> for ChaosDriver {
    fn on_message(&mut self, _ctx: &mut Context<'_, WhisperMsg>, _from: NodeId, msg: WhisperMsg) {
        match msg {
            WhisperMsg::SoapResponse {
                request_id,
                envelope,
            } => {
                let mut map = self.responses.lock().expect("driver store poisoned");
                let entry = map.entry(request_id).or_insert((0, String::new()));
                entry.0 += 1;
                entry.1 = envelope;
            }
            WhisperMsg::ScopeResponse {
                request_id,
                snapshot,
            } => {
                self.coordinators
                    .lock()
                    .expect("driver store poisoned")
                    .entry(request_id)
                    .or_default()
                    .push(snapshot.election.as_ref().and_then(|e| e.coordinator));
            }
            _ => {}
        }
    }
}

/// The deployment under chaos: echo replicas, fast failure detection, the
/// fail-slow detector armed, ledger + recorder + flight plane wired.
fn soak_wiring(t: &ChaosTuning) -> (ScenarioWiring, Recorder, AvailabilityLedger) {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample operation")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> =
        (0..t.peers).map(|_| Box::new(EchoBackend) as _).collect();
    let mut wiring = ScenarioWiring::bare(
        service,
        whisper_ontology::samples::university_ontology(),
        vec![GroupSpec::from_operation("StudentInfoGroup", &op, backends)],
    );
    wiring.bpeer = BPeerConfig {
        heartbeat_period: SimDuration::from_millis(50),
        // Above the stall: a 200 ms outbound freeze must stay gray.
        failure_timeout: SimDuration::from_millis(400),
        bully: BullyConfig {
            answer_timeout: SimDuration::from_millis(200),
            coordinator_timeout: SimDuration::from_millis(400),
            cooldown: SimDuration::from_millis(200),
        },
        ..BPeerConfig::default()
    };
    wiring.proxy = ProxyConfig {
        request_timeout: SimDuration::from_millis(500),
        fail_slow_after: Some(t.fail_slow_after),
        // Longer than any soak: a demotion must stick to be observable.
        fail_slow_cooldown: SimDuration::from_secs(60),
        ..ProxyConfig::default()
    };
    let recorder = Recorder::new();
    let ledger = AvailabilityLedger::default();
    wiring.recorder = Some(recorder.clone());
    wiring.ledger = Some(ledger.clone());
    wiring.flight = Some(whisper_obs::flight::DEFAULT_RING_BYTES);
    (wiring, recorder, ledger)
}

/// Everything a soak or race leg needs besides the substrate itself: the
/// booted topology, the driver node and its shared stores, and the
/// observability planes the audit reads.
struct SoakRig {
    topo: Topology,
    driver: NodeId,
    responses: Responses,
    coordinators: Coordinators,
    recorder: Recorder,
    ledger: AvailabilityLedger,
}

/// Wires the scenario plus the chaos driver onto any spawner.
fn wire_with_driver<S: Spawner<WhisperMsg>>(spawner: &mut S, t: &ChaosTuning) -> SoakRig {
    let (wiring, recorder, ledger) = soak_wiring(t);
    let topo = wiring
        .wire(spawner)
        .expect("the chaos scenario is well-formed");
    let responses: Responses = Arc::new(Mutex::new(HashMap::new()));
    let coordinators: Coordinators = Arc::new(Mutex::new(HashMap::new()));
    let driver = spawner.add_boxed(Box::new(ChaosDriver {
        responses: Arc::clone(&responses),
        coordinators: Arc::clone(&coordinators),
    }));
    SoakRig {
        topo,
        driver,
        responses,
        coordinators,
        recorder,
        ledger,
    }
}

/// One uniquely marked request envelope.
fn marked_envelope(id: u64) -> String {
    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1000"));
    payload.push_child(Element::with_text("Marker", format!("req-{id:05}")));
    Envelope::request(payload).to_xml_string()
}

/// Waits (in the substrate's own time) until every b-peer names the same
/// coordinator. Polling via [`Substrate::advance`] keeps this loop
/// identical on virtual time and wall clock.
fn settle<N: Substrate<WhisperMsg>>(net: &mut N, rig: &SoakRig) {
    let peers = rig.topo.group_nodes[0].len();
    let mut scope_request = 10_000_000u64; // clear of the soak ids
    for _ in 0..600 {
        scope_request += 1;
        for &b in &rig.topo.group_nodes[0] {
            net.inject(
                rig.driver,
                b,
                WhisperMsg::ScopeRequest {
                    request_id: scope_request,
                },
            );
        }
        net.advance(SimDuration::from_millis(40));
        let polls = rig.coordinators.lock().expect("driver store poisoned");
        if let Some(claims) = polls.get(&scope_request) {
            if claims.len() == peers && claims.iter().all(|&c| c.is_some() && c == claims[0]) {
                return;
            }
        }
    }
    panic!("boot election did not settle on {}", net.name());
}

/// Arms the built-in gray schedule action by action as the stream
/// progresses, or replays a custom plan, then drains and audits the books.
/// Generic over [`Substrate`], so the sim, threadnet and tcp legs run
/// literally the same code.
fn run_soak<N: Substrate<WhisperMsg>>(net: &mut N, rig: &SoakRig, t: &ChaosTuning) -> SoakOutcome {
    settle(net, rig);
    let topo = &rig.topo;
    let driver = rig.driver;
    let bpeers = topo.group_nodes[0].clone();
    let coordinator = *bpeers.last().expect("at least one b-peer");

    if let Some(plan) = &t.plan {
        net.execute_plan(plan);
    }
    for id in 1..=t.requests {
        if t.plan.is_none() {
            if id == t.warmup_requests + 1 {
                // Arm the gray plane on every interior link.
                for &b in &bpeers {
                    net.apply_action(FaultAction::Degrade(topo.proxy, b, t.degrade));
                }
                for (i, &a) in bpeers.iter().enumerate() {
                    for &b in &bpeers[i + 1..] {
                        net.apply_action(FaultAction::Degrade(a, b, t.degrade));
                    }
                }
            }
            if id == t.requests / 3 {
                net.apply_action(FaultAction::Slow(coordinator, t.slow_factor));
            }
            if id == t.requests / 2 {
                net.apply_action(FaultAction::Stall(coordinator, t.stall));
            }
        }
        net.inject(
            driver,
            topo.proxy,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope: marked_envelope(id),
            },
        );
        net.advance(t.gap);
    }

    // Heal the network, then drain the retried tail.
    if t.plan.is_none() {
        for &b in &bpeers {
            net.apply_action(FaultAction::Restore(topo.proxy, b));
        }
        for (i, &a) in bpeers.iter().enumerate() {
            for &b in &bpeers[i + 1..] {
                net.apply_action(FaultAction::Restore(a, b));
            }
        }
        net.apply_action(FaultAction::Slow(coordinator, 100));
    }
    let mut waited = SimDuration::ZERO;
    let step = SimDuration::from_millis(20);
    while waited < t.drain {
        let got = rig.responses.lock().expect("driver store poisoned").len();
        if got as u64 >= t.requests {
            break;
        }
        net.advance(step);
        waited = SimDuration::from_micros(waited.as_micros() + step.as_micros());
    }
    // One more beat so straggling duplicate copies (if any) land before
    // the books are audited.
    net.advance(SimDuration::from_millis(100));

    let answered = rig.responses.lock().expect("driver store poisoned").clone();
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut faults = 0u64;
    for id in 1..=t.requests {
        match answered.get(&id) {
            None => lost += 1,
            Some((copies, envelope)) => {
                if *copies > 1 {
                    duplicated += 1;
                }
                let parsed = Envelope::parse(envelope).unwrap_or_else(|e| {
                    panic!("{}: request {id}: bad envelope: {e:?}", net.name())
                });
                if parsed.is_fault() {
                    faults += 1;
                } else {
                    let marker = format!("req-{id:05}");
                    assert!(
                        envelope.contains(&marker),
                        "{}: response for {id} does not carry {marker}",
                        net.name()
                    );
                }
            }
        }
    }
    let goodput = (t.requests - lost - faults) as f64 / t.requests as f64;

    let gray_faults_recorded = topo
        .flight
        .as_ref()
        .map(|plane| {
            plane
                .capture()
                .events()
                .iter()
                .filter(|e| match &e.kind {
                    FlightEventKind::Fault { action } => {
                        action.starts_with("degrade")
                            || action.starts_with("restore")
                            || action.starts_with("stall")
                            || action.starts_with("slow")
                            || action.starts_with("decode-error")
                    }
                    _ => false,
                })
                .count() as u64
        })
        .unwrap_or(0);
    let ledger_up = rig
        .ledger
        .service_report(topo.group_ids[0].value(), net.now())
        .map(|r| r.up)
        .unwrap_or(false);

    SoakOutcome {
        substrate: net.name(),
        requests: t.requests,
        answered: answered.len() as u64,
        lost,
        duplicated,
        faults,
        goodput,
        fail_slow_rebinds: rig.recorder.counter("proxy.fail_slow_rebinds"),
        surplus_replies: rig.recorder.counter("proxy.duplicate_responses"),
        decode_errors: net.metrics_snapshot().decode_errors,
        gray_faults_recorded,
        ledger_up,
    }
}

/// The soak on OS threads, chaos RNG seeded for reproducibility.
pub fn run_soak_threadnet(t: &ChaosTuning, seed: u64) -> SoakOutcome {
    let mut builder = ThreadNetBuilder::new();
    builder.set_chaos_seed(seed);
    let rig = wire_with_driver(&mut builder, t);
    let mut net = builder.start();
    let out = run_soak(&mut net, &rig, t);
    net.shutdown();
    out
}

/// The soak on real TCP loopback sockets, chaos RNG seeded.
pub fn run_soak_tcp(t: &ChaosTuning, seed: u64) -> SoakOutcome {
    let mut builder = TcpNetBuilder::new();
    builder.set_chaos_seed(seed);
    let rig = wire_with_driver(&mut builder, t);
    let mut net = builder.start().expect("loopback sockets");
    let out = run_soak(&mut net, &rig, t);
    net.shutdown();
    out
}

/// The fault injected at the start of one race leg.
#[derive(Debug, Clone, Copy)]
enum RaceLeg {
    Crash,
    FailSlow(u32),
}

/// Runs one leg: prime the binding and the latency baseline, inject the
/// fault, then probe until a request completes *fast* again. The elapsed
/// fault→fast-answer time is the recovery the leg measures. The fast bar
/// sits well under both the slowed round trip and the retry timeout, so a
/// late or slowed answer cannot count as recovery.
fn race_leg<N: Substrate<WhisperMsg>>(net: &mut N, rig: &SoakRig, leg: RaceLeg) -> SimDuration {
    settle(net, rig);
    let topo = &rig.topo;
    let driver = rig.driver;
    let responses = &rig.responses;
    let coordinator = *topo.group_nodes[0].last().expect("at least one b-peer");
    let fast_bar = SimDuration::from_millis(80);
    let probe_window = SimDuration::from_millis(150);
    let step = SimDuration::from_millis(5);

    // Prime: bind the proxy and feed the fail-slow detector its healthy
    // baseline (PeerHealth needs min_samples before it may trip).
    for id in 1..=4u64 {
        net.inject(
            driver,
            topo.proxy,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope: marked_envelope(id),
            },
        );
        let sent = net.now();
        loop {
            net.advance(step);
            if responses
                .lock()
                .expect("driver store poisoned")
                .contains_key(&id)
            {
                break;
            }
            assert!(
                net.now().since(sent) < SimDuration::from_secs(10),
                "{}: prime request {id} never answered",
                net.name()
            );
        }
    }

    let t0 = net.now();
    match leg {
        RaceLeg::Crash => net.kill_node(coordinator),
        RaceLeg::FailSlow(factor) => net.apply_action(FaultAction::Slow(coordinator, factor)),
    }

    let mut id = 100u64;
    loop {
        id += 1;
        let sent = net.now();
        net.inject(
            driver,
            topo.proxy,
            WhisperMsg::SoapRequest {
                request_id: id,
                envelope: marked_envelope(id),
            },
        );
        while net.now().since(sent) < probe_window {
            net.advance(step);
            let answered = responses.lock().expect("driver store poisoned");
            if let Some((_, envelope)) = answered.get(&id) {
                let latency = net.now().since(sent);
                let ok = Envelope::parse(envelope)
                    .map(|e| !e.is_fault())
                    .unwrap_or(false);
                if ok && latency <= fast_bar {
                    return net.now().since(t0);
                }
                break; // answered, but late or a fault: probe again
            }
        }
        assert!(
            net.now().since(t0) < SimDuration::from_secs(30),
            "{}: service never recovered from {leg:?}",
            net.name()
        );
    }
}

/// Times crash recovery against fail-slow recovery on OS threads, each leg
/// on a fresh boot so the crash leg's re-election cannot contaminate the
/// gray leg.
pub fn race(t: &ChaosTuning) -> RaceOutcome {
    let crash_recovery = {
        let mut builder = ThreadNetBuilder::new();
        let rig = wire_with_driver(&mut builder, t);
        let mut net = builder.start();
        let d = race_leg(&mut net, &rig, RaceLeg::Crash);
        net.shutdown();
        d
    };
    let fail_slow_recovery = {
        let mut builder = ThreadNetBuilder::new();
        let rig = wire_with_driver(&mut builder, t);
        let mut net = builder.start();
        let d = race_leg(&mut net, &rig, RaceLeg::FailSlow(t.slow_factor));
        net.shutdown();
        d
    };
    RaceOutcome {
        substrate: "threadnet",
        crash_recovery,
        fail_slow_recovery,
    }
}

/// Renders the soak rows.
pub fn table(rows: &[SoakOutcome]) -> Table {
    let mut t = Table::new(
        "chaos_soak",
        &[
            "substrate",
            "requests",
            "answered",
            "lost",
            "dup",
            "faults",
            "goodput",
            "fail_slow_rebinds",
            "surplus_replies",
            "decode_errors",
            "gray_events",
            "ledger_up",
        ],
    );
    for r in rows {
        t.row([
            r.substrate.to_string(),
            r.requests.to_string(),
            r.answered.to_string(),
            r.lost.to_string(),
            r.duplicated.to_string(),
            r.faults.to_string(),
            format!("{:.4}", r.goodput),
            r.fail_slow_rebinds.to_string(),
            r.surplus_replies.to_string(),
            r.decode_errors.to_string(),
            r.gray_faults_recorded.to_string(),
            r.ledger_up.to_string(),
        ]);
    }
    t
}

/// Records worst-case-per-substrate soak stats and the rebind race into
/// the bench trajectory.
pub fn record(summary: &mut crate::BenchSummary, rows: &[SoakOutcome], races: &[RaceOutcome]) {
    let mut worst: HashMap<&'static str, (f64, u64, u64, u64)> = HashMap::new();
    for r in rows {
        let e = worst.entry(r.substrate).or_insert((f64::INFINITY, 0, 0, 0));
        e.0 = e.0.min(r.goodput);
        e.1 += r.lost;
        e.2 += r.duplicated;
        e.3 += r.fail_slow_rebinds;
    }
    for (substrate, (goodput, lost, dup, rebinds)) in worst {
        summary.record("chaos_soak", &format!("{substrate}_goodput_min"), goodput);
        summary.record("chaos_soak", &format!("{substrate}_lost"), lost as f64);
        summary.record("chaos_soak", &format!("{substrate}_duplicated"), dup as f64);
        summary.record(
            "chaos_soak",
            &format!("{substrate}_fail_slow_rebinds"),
            rebinds as f64,
        );
    }
    for r in races {
        summary.record(
            "chaos_soak",
            &format!("{}_crash_rebind_ms", r.substrate),
            r.crash_recovery.as_millis_f64(),
        );
        summary.record(
            "chaos_soak",
            &format!("{}_fail_slow_rebind_ms", r.substrate),
            r.fail_slow_recovery.as_millis_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_simnet::{SimNet, SwitchedLan};

    /// The full soak on the deterministic simulator: exactly-once at the
    /// edge, goodput above the floor, gray incidents on the books — all
    /// in virtual time, so this is the cheap CI anchor for E17.
    #[test]
    fn sim_soak_is_exactly_once_and_above_the_goodput_floor() {
        let t = ChaosTuning::default();
        let mut net: SimNet<WhisperMsg> = SimNet::with_link(17, SwitchedLan::paper_testbed());
        let rig = wire_with_driver(&mut net, &t);
        let out = run_soak(&mut net, &rig, &t);
        assert_eq!(out.lost, 0, "lost requests: {out:?}");
        assert_eq!(out.duplicated, 0, "duplicated answers: {out:?}");
        assert!(
            out.goodput >= t.goodput_floor,
            "goodput {} below floor {}: {out:?}",
            out.goodput,
            t.goodput_floor
        );
        assert!(out.gray_faults_recorded > 0, "no gray events: {out:?}");
        assert!(out.ledger_up, "gray chaos booked as downtime: {out:?}");
        assert!(out.accepted(&t), "acceptance bar: {out:?}");
    }

    /// One short threadnet soak — the wall-clock leg of the E17 bar (the
    /// tcp leg runs in the `whisper-chaos` bin to keep `cargo test` off
    /// the socket-heavy path).
    #[test]
    fn threadnet_soak_is_exactly_once_and_above_the_goodput_floor() {
        let t = ChaosTuning {
            requests: 24,
            ..ChaosTuning::default()
        };
        let out = run_soak_threadnet(&t, 7);
        assert_eq!(out.lost, 0, "lost requests: {out:?}");
        assert_eq!(out.duplicated, 0, "duplicated answers: {out:?}");
        assert!(
            out.goodput >= t.goodput_floor,
            "goodput {} below floor {}: {out:?}",
            out.goodput,
            t.goodput_floor
        );
        assert!(out.gray_faults_recorded > 0, "no gray events: {out:?}");
    }

    /// The point of the fail-slow detector: demoting a gray coordinator
    /// must beat waiting for the crash machinery.
    #[test]
    fn fail_slow_rebind_beats_crash_rebind() {
        let t = ChaosTuning::default();
        let r = race(&t);
        assert!(
            r.fail_slow_recovery < r.crash_recovery,
            "fail-slow {} should beat crash {}",
            r.fail_slow_recovery,
            r.crash_recovery
        );
    }
}
