//! **Discovery-cost ablation: flooding vs. rendezvous** — JXTA offers both
//! basic (flooding) discovery and rendezvous-indexed discovery; Whisper's
//! deployment can use either. This ablation counts the messages each
//! strategy spends on (a) publishing the network's advertisements and
//! (b) resolving one cold service request (semantic-group query plus
//! member query), as the network grows.
//!
//! Flooding sends each query to every known peer and collects one response
//! per peer — Θ(n) per query but zero publication traffic. The rendezvous
//! indexes publications — Θ(1) per query but one publish message per
//! advertisement and a single point of load.

use crate::Table;
use whisper::{DeploymentConfig, GroupSpec};
use whisper::{ServiceBackend, StudentRegistry, WhisperNet};
use whisper_simnet::SimDuration;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Total b-peers in the network.
    pub peers: usize,
    /// `true` for rendezvous, `false` for flooding.
    pub rendezvous: bool,
    /// Publish messages during startup.
    pub publish_msgs: u64,
    /// Query messages for one cold request.
    pub query_msgs: u64,
    /// Response messages for one cold request.
    pub response_msgs: u64,
    /// Total discovery traffic (publish + query + response).
    pub total: u64,
}

/// Builds a deployment with `groups` groups of `peers_per_group` b-peers.
fn deployment(groups: usize, peers_per_group: usize, rendezvous: bool, seed: u64) -> WhisperNet {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();
    let specs: Vec<GroupSpec> = (0..groups)
        .map(|gi| {
            let backends: Vec<Box<dyn ServiceBackend>> = (0..peers_per_group)
                .map(|_| {
                    Box::new(StudentRegistry::operational_db().with_sample_data())
                        as Box<dyn ServiceBackend>
                })
                .collect();
            GroupSpec::from_operation(format!("StudentInfoGroup{gi}"), &op, backends)
        })
        .collect();
    let cfg = DeploymentConfig {
        seed,
        service,
        groups: specs,
        use_rendezvous: rendezvous,
        ..DeploymentConfig::default()
    };
    WhisperNet::build(cfg).expect("valid deployment")
}

/// Measures one configuration.
pub fn run_point(groups: usize, peers_per_group: usize, rendezvous: bool, seed: u64) -> CostRow {
    let mut net = deployment(groups, peers_per_group, rendezvous, seed);
    // Startup: publications (and the boot election, not counted below).
    net.run_for(SimDuration::from_secs(2));
    let publish_msgs = net.metrics().sent_of_kind("publish");

    // One cold request = semantic-group query + member query.
    net.reset_metrics();
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(3));
    let query_msgs = net.metrics().sent_of_kind("discovery-query");
    let response_msgs = net.metrics().sent_of_kind("discovery-response");
    assert_eq!(
        net.client_stats(client).completed,
        1,
        "cold request must complete (groups={groups}, rdv={rendezvous})"
    );
    CostRow {
        peers: groups * peers_per_group,
        rendezvous,
        publish_msgs,
        query_msgs,
        response_msgs,
        total: publish_msgs + query_msgs + response_msgs,
    }
}

/// Sweeps network sizes for both strategies.
pub fn run_sweep(group_counts: &[usize], peers_per_group: usize, seed: u64) -> Vec<CostRow> {
    let mut rows = Vec::new();
    for &g in group_counts {
        for rdv in [false, true] {
            rows.push(run_point(g, peers_per_group, rdv, seed));
        }
    }
    rows
}

/// Renders the sweep.
pub fn table(rows: &[CostRow]) -> Table {
    let mut t = Table::new(
        "discovery_cost",
        &[
            "b-peers",
            "strategy",
            "publish",
            "queries",
            "responses",
            "total",
        ],
    );
    for r in rows {
        t.row([
            r.peers.to_string(),
            if r.rendezvous { "rendezvous" } else { "flood" }.to_string(),
            r.publish_msgs.to_string(),
            r.query_msgs.to_string(),
            r.response_msgs.to_string(),
            r.total.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_query_cost_grows_with_network_rendezvous_stays_constant() {
        let small_flood = run_point(2, 2, false, 3);
        let big_flood = run_point(5, 2, false, 3);
        assert!(
            big_flood.query_msgs > small_flood.query_msgs,
            "flood queries should grow: {} -> {}",
            small_flood.query_msgs,
            big_flood.query_msgs
        );

        let small_rdv = run_point(2, 2, true, 3);
        let big_rdv = run_point(5, 2, true, 3);
        assert_eq!(
            small_rdv.query_msgs, big_rdv.query_msgs,
            "rendezvous query cost should not depend on network size"
        );
        assert!(
            big_rdv.query_msgs <= 2,
            "one query per phase: {}",
            big_rdv.query_msgs
        );
    }

    #[test]
    fn publication_cost_is_the_rendezvous_tradeoff() {
        let flood = run_point(3, 3, false, 7);
        let rdv = run_point(3, 3, true, 7);
        assert_eq!(flood.publish_msgs, 0, "flooding publishes locally only");
        // every b-peer pushes its peer adv + semantic adv to the rendezvous,
        // plus one pipe adv per elected coordinator
        assert_eq!(rdv.publish_msgs, 9 * 2 + 3);
        assert!(rdv.query_msgs < flood.query_msgs);
    }
}
