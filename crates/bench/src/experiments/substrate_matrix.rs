//! **Substrate matrix** — the availability/failover experiment, run
//! unmodified on all three runtimes from one [`Deployment`].
//!
//! The paper measures Whisper's fault tolerance on nine LAN PCs; this
//! repo's earlier experiments measured it on the calibrated simulator.
//! The deployment layer closes the loop: the same scenario (one b-peer
//! group, availability ledger on) boots on the deterministic simulator,
//! on OS threads, and on real TCP loopback sockets, and the same
//! [`FaultPlan`] — kill the coordinator, restart it later — replays on
//! each via [`Substrate::execute_plan`]. The ledger then reports
//! availability, MTTR and detection latency per substrate, side by side:
//! virtual-time numbers validated against two kinds of wall-clock
//! reality.
//!
//! MTTR here is detection + re-election (the proxy re-bind leg is
//! measured separately by the RTT experiments): with heartbeat period
//! `hb`, failure timeout `to` and Bully answer timeout `el`, every
//! substrate should land in roughly `[to, to + hb + 2·el]`.

use crate::Table;
use whisper::deploy::{Booted, Deployment, Topology};
use whisper::WhisperMsg;
use whisper_election::BullyConfig;
use whisper_simnet::{FaultPlan, SimDuration, SimTime, Substrate};

/// Scenario shape and fault schedule, shared by every substrate.
#[derive(Debug, Clone, Copy)]
pub struct MatrixTuning {
    /// Redundant b-peers in the group.
    pub peers: usize,
    /// Heartbeat beacon period.
    pub heartbeat_period: SimDuration,
    /// Silence after which a peer is suspected dead.
    pub failure_timeout: SimDuration,
    /// Bully answer/coordinator waits (scaled off this value).
    pub election_timeout: SimDuration,
    /// Healthy run-in before the coordinator is killed.
    pub warmup: SimDuration,
    /// How long the killed coordinator stays down.
    pub outage: SimDuration,
    /// Healthy tail after the restart, before the books close.
    pub settle: SimDuration,
}

impl Default for MatrixTuning {
    /// Aggressive live-cluster timings (the [`crate::ClusterTuning`]
    /// defaults) so a full three-substrate matrix takes seconds of wall
    /// clock, not the paper's JXTA-era multi-second windows per leg.
    fn default() -> Self {
        MatrixTuning {
            peers: 5,
            heartbeat_period: SimDuration::from_millis(50),
            failure_timeout: SimDuration::from_millis(250),
            election_timeout: SimDuration::from_millis(200),
            warmup: SimDuration::from_millis(1500),
            outage: SimDuration::from_millis(1000),
            settle: SimDuration::from_millis(1500),
        }
    }
}

impl MatrixTuning {
    /// Total observed horizon per substrate.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_micros(
            self.warmup.as_micros() + self.outage.as_micros() + self.settle.as_micros(),
        )
    }
}

/// What one substrate reported at the end of the schedule.
#[derive(Debug, Clone)]
pub struct SubstrateOutcome {
    /// `"sim"`, `"threadnet"` or `"tcp"`.
    pub substrate: &'static str,
    /// Whether the service had an agreed coordinator when the books closed.
    pub recovered: bool,
    /// Service availability over the horizon.
    pub availability: f64,
    /// Mean time to repair (detection + re-election), once repaired.
    pub mttr: Option<SimDuration>,
    /// Mean failure-detection latency over completed outages.
    pub detection: Option<SimDuration>,
    /// Completed outages (the schedule injects exactly one).
    pub failures: u64,
    /// Coordinator hand-overs (crash election + the restarted peer
    /// bullying its way back).
    pub churn: u64,
    /// Transport messages sent over the horizon.
    pub messages: u64,
}

/// The shared scenario: `peers` redundant b-peers, ledger on, no clients.
pub fn deployment(t: &MatrixTuning) -> Deployment {
    let mut dep = Deployment::student(t.peers);
    dep.bpeer.heartbeat_period = t.heartbeat_period;
    dep.bpeer.failure_timeout = t.failure_timeout;
    dep.bpeer.bully = BullyConfig {
        answer_timeout: t.election_timeout,
        coordinator_timeout: t.election_timeout.saturating_mul(2),
        cooldown: t.election_timeout,
    };
    dep
}

/// The shared fault schedule against a booted topology: kill the highest
/// b-peer (the Bully winner, hence the coordinator) after `warmup`,
/// restart it `outage` later.
pub fn fault_plan(topo: &Topology, t: &MatrixTuning) -> FaultPlan {
    let victim = *topo.group_nodes[0]
        .last()
        .expect("the group has at least one b-peer");
    let kill_at = SimTime::ZERO + t.warmup;
    let mut plan = FaultPlan::new();
    plan.crash_at(victim, kill_at);
    plan.restart_at(victim, kill_at + t.outage);
    plan
}

/// Runs the schedule on one booted substrate and reads the ledger's
/// verdict. This function is the point of the experiment: it sees only
/// [`Substrate`], so the code is literally identical for virtual time and
/// both wall-clock runtimes.
pub fn run_on<N: Substrate<WhisperMsg>>(
    booted: &mut Booted<N>,
    t: &MatrixTuning,
) -> SubstrateOutcome {
    let plan = fault_plan(&booted.topology, t);
    run_plan_on(booted, &plan, t.horizon())
}

/// Replays an arbitrary [`FaultPlan`] — e.g. one loaded from a file with
/// [`FaultPlan::parse_text`] via `fault_matrix --plan` — over `horizon`
/// and reads the ledger's verdict, exactly like [`run_on`] does for the
/// built-in kill/restart schedule.
pub fn run_plan_on<N: Substrate<WhisperMsg>>(
    booted: &mut Booted<N>,
    plan: &FaultPlan,
    horizon: SimDuration,
) -> SubstrateOutcome {
    booted.net.execute_plan(plan);
    booted.net.advance(horizon);

    let now = booted.net.now();
    let ledger = booted
        .ledger
        .as_ref()
        .expect("the matrix deployment wires a ledger");
    let service = booted.topology.group_ids[0].value();
    let report = ledger
        .service_report(service, now)
        .expect("b-peers fed the ledger");
    let completed: Vec<SimDuration> = report
        .downtime_intervals
        .iter()
        .filter(|i| i.end.is_some())
        .map(|i| i.detected_at.since(i.start))
        .collect();
    let detection = (!completed.is_empty()).then(|| {
        let sum: u64 = completed.iter().map(|d| d.as_micros()).sum();
        SimDuration::from_micros(sum / completed.len() as u64)
    });
    SubstrateOutcome {
        substrate: booted.net.name(),
        recovered: report.up,
        availability: report.availability,
        mttr: report.mttr,
        detection,
        failures: report.failures,
        churn: report.churn,
        messages: booted.net.metrics_snapshot().sent,
    }
}

/// Boots the deployment on all three substrates in turn and runs the
/// same schedule on each. Wall-clock cost: two live horizons (the
/// simulator leg is virtual).
pub fn run_matrix(t: &MatrixTuning) -> Vec<SubstrateOutcome> {
    let dep = deployment(t);
    let mut rows = Vec::with_capacity(3);

    let mut sim = dep
        .boot_sim(11)
        .expect("the matrix scenario is well-formed");
    rows.push(run_on(&mut sim, t));

    let mut threads = dep
        .boot_threadnet()
        .expect("the matrix scenario is well-formed");
    rows.push(run_on(&mut threads, t));
    threads.net.shutdown();

    let mut tcp = dep.boot_tcp().expect("loopback sockets");
    rows.push(run_on(&mut tcp, t));
    tcp.net.shutdown();

    rows
}

/// Renders the matrix.
pub fn table(rows: &[SubstrateOutcome]) -> Table {
    let mut t = Table::new(
        "substrate_matrix",
        &[
            "substrate",
            "recovered",
            "availability",
            "mttr ms",
            "detect ms",
            "failures",
            "churn",
            "messages",
        ],
    );
    for r in rows {
        t.row([
            r.substrate.to_string(),
            r.recovered.to_string(),
            format!("{:.6}", r.availability),
            r.mttr.map(crate::table::ms).unwrap_or_else(|| "-".into()),
            r.detection
                .map(crate::table::ms)
                .unwrap_or_else(|| "-".into()),
            r.failures.to_string(),
            r.churn.to_string(),
            r.messages.to_string(),
        ]);
    }
    t
}

/// Records the matrix into the bench trajectory, one stat triple per
/// substrate, so `BENCH_PR10.json` carries the three availability/MTTR
/// columns side by side.
pub fn record(summary: &mut crate::BenchSummary, rows: &[SubstrateOutcome]) {
    for r in rows {
        summary.record(
            "substrate_matrix",
            &format!("{}_availability", r.substrate),
            r.availability,
        );
        if let Some(mttr) = r.mttr {
            summary.record(
                "substrate_matrix",
                &format!("{}_mttr_ms", r.substrate),
                mttr.as_millis_f64(),
            );
        }
        if let Some(d) = r.detection {
            summary.record(
                "substrate_matrix",
                &format!("{}_detection_ms", r.substrate),
                d.as_millis_f64(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recovery window every substrate must land in: the failure
    /// cannot be detected before the timeout, and detection + a couple of
    /// election rounds bounds it above (generous 4x slack for loaded CI
    /// machines on the wall-clock substrates).
    fn assert_outcome_sane(r: &SubstrateOutcome, t: &MatrixTuning) {
        assert!(
            r.recovered,
            "{}: no coordinator at the end: {r:?}",
            r.substrate
        );
        assert_eq!(r.failures, 1, "{}: exactly one outage: {r:?}", r.substrate);
        let mttr = r
            .mttr
            .unwrap_or_else(|| panic!("{}: no mttr: {r:?}", r.substrate));
        assert!(
            mttr >= t.failure_timeout,
            "{}: repaired before the failure timeout: {mttr} vs {}",
            r.substrate,
            t.failure_timeout
        );
        let ceiling = SimDuration::from_micros(
            (t.failure_timeout.as_micros()
                + t.heartbeat_period.as_micros()
                + 2 * t.election_timeout.as_micros())
                * 4,
        );
        assert!(
            mttr <= ceiling,
            "{}: repair slower than detection + re-election: {mttr} vs {ceiling}",
            r.substrate
        );
        assert!(
            r.availability > 0.5 && r.availability < 1.0,
            "{}: availability should reflect one short outage: {r:?}",
            r.substrate
        );
    }

    /// Same deployment, same plan, same sanity window — on the simulator
    /// and on OS threads. (The TCP leg runs in the `fault_matrix` bin and
    /// the tcpnet integration tests; keeping it out of the unit suite
    /// keeps `cargo test` off the socket-heavy path.)
    #[test]
    fn sim_and_threadnet_agree_on_the_recovery_window() {
        let t = MatrixTuning::default();
        let dep = deployment(&t);

        let mut sim = dep.boot_sim(3).expect("well-formed");
        let sim_row = run_on(&mut sim, &t);
        assert_eq!(sim_row.substrate, "sim");
        assert_outcome_sane(&sim_row, &t);

        let mut live = dep.boot_threadnet().expect("well-formed");
        let live_row = run_on(&mut live, &t);
        live.net.shutdown();
        assert_eq!(live_row.substrate, "threadnet");
        assert_outcome_sane(&live_row, &t);
    }

    #[test]
    fn fault_plan_targets_the_bully_winner() {
        let t = MatrixTuning::default();
        let dep = deployment(&t);
        let booted = dep.boot_sim(1).expect("well-formed");
        let plan = fault_plan(&booted.topology, &t);
        // Highest peer id = last group node = the eventual coordinator.
        let victim = *booted.topology.group_nodes[0].last().unwrap();
        assert_eq!(
            plan.actions().first().map(|&(at, a)| (at, a)),
            Some((
                SimTime::ZERO + t.warmup,
                whisper_simnet::FaultAction::Crash(victim)
            ))
        );
    }
}
