//! **E16 — real-TCP saturation matrix** (whisper-surge): throughput and
//! latency of the live loopback deployment under open- and closed-loop
//! load, across replica counts.
//!
//! The sim-side load experiment ([`crate::experiments::load`]) models an
//! M/D/1 replica in virtual time; this one drives the *real* pipeline —
//! sockets, frames, the proxy actor, the surge worker pools — and reports
//! what it actually sustains:
//!
//! - the **saturation knee** per replica count: the highest offered
//!   open-loop rate the deployment still serves at ≥ 95% goodput;
//! - **coordinated-omission-corrected percentiles** at every open-loop
//!   point (latency from the intended send time, see
//!   [`LoadCluster::run_open`]);
//! - the **closed-loop peak**: the throughput ceiling a widening
//!   in-flight window finds, which bounds the whole matrix from above.
//!
//! A single in-flight request implies a throughput ceiling of
//! `1e6 / tcpnet_request_cycle_us` — the closed-loop peak shows how far
//! pipelining (batched frame flushing + parallel b-peer execution) lifts
//! that bound.

use std::time::Duration;

use crate::loadplane::{LoadCluster, LoadOutcome, LoadTuning};
use crate::Table;

/// Parameters of the saturation matrix.
#[derive(Debug, Clone)]
pub struct MatrixParams {
    /// Replica counts to boot (one cluster per entry).
    pub peers: Vec<usize>,
    /// Worker threads per b-peer.
    pub workers: usize,
    /// Open-loop offered rates in requests/second.
    pub rates: Vec<f64>,
    /// Closed-loop in-flight windows.
    pub windows: Vec<usize>,
    /// Offered duration of each open-loop point.
    pub secs: f64,
    /// Requests issued per closed-loop point.
    pub closed_total: u64,
    /// Post-injection drain allowance per point.
    pub drain: Duration,
}

impl MatrixParams {
    /// The full matrix `whisper-loadgen` runs by default.
    pub fn full() -> MatrixParams {
        MatrixParams {
            peers: vec![1, 3, 5],
            workers: 2,
            rates: vec![2_000.0, 4_000.0, 8_000.0, 16_000.0, 24_000.0, 32_000.0],
            windows: vec![1, 4, 16, 64],
            secs: 2.0,
            closed_total: 20_000,
            drain: Duration::from_secs(10),
        }
    }

    /// The short CI variant (`whisper-loadgen --smoke`): one replica
    /// count, two rates, two windows — enough to produce the trajectory
    /// stats the `load-smoke` job gates on.
    pub fn smoke() -> MatrixParams {
        MatrixParams {
            peers: vec![3],
            workers: 2,
            rates: vec![1_000.0, 4_000.0],
            windows: vec![1, 32],
            secs: 1.0,
            closed_total: 3_000,
            drain: Duration::from_secs(8),
        }
    }
}

/// One measured operating point of the matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Replicas in the group.
    pub peers: usize,
    /// `"open"` or `"closed"`.
    pub mode: &'static str,
    /// Offered rate (open loop; `0` for closed-loop rows).
    pub offered_rps: f64,
    /// In-flight window (closed loop; `0` for open-loop rows).
    pub window: usize,
    /// Non-fault completions per second.
    pub achieved_rps: f64,
    /// Fault responses.
    pub faults: u64,
    /// Requests still unanswered when the drain cutoff hit.
    pub lost: u64,
    /// Median latency (µs; open loop: corrected).
    pub p50_us: Option<u64>,
    /// 99th percentile latency (µs; open loop: corrected).
    pub p99_us: Option<u64>,
    /// 99.9th percentile latency (µs; open loop: corrected).
    pub p999_us: Option<u64>,
}

impl MatrixRow {
    fn from_outcome(
        peers: usize,
        mode: &'static str,
        offered: f64,
        window: usize,
        out: &LoadOutcome,
    ) -> MatrixRow {
        MatrixRow {
            peers,
            mode,
            offered_rps: offered,
            window,
            achieved_rps: out.achieved_rps(),
            faults: out.faults,
            lost: out.issued.saturating_sub(out.completed),
            p50_us: out.percentile_us(50.0),
            p99_us: out.percentile_us(99.0),
            p999_us: out.percentile_us(99.9),
        }
    }
}

/// Runs the whole matrix: one [`LoadCluster`] boot per replica count,
/// closed-loop points first (they find the ceiling), then the open-loop
/// rate sweep.
///
/// # Errors
///
/// Socket errors while booting a loopback mesh, or a boot election that
/// never settles.
pub fn run_matrix(params: &MatrixParams) -> std::io::Result<Vec<MatrixRow>> {
    let mut rows = Vec::new();
    for &peers in &params.peers {
        let tuning = LoadTuning {
            workers: params.workers,
            ..LoadTuning::default()
        };
        let cluster = LoadCluster::start(peers, tuning)?;
        if !cluster.settle(Duration::from_secs(20)) {
            return Err(std::io::Error::other(format!(
                "boot election did not settle with {peers} b-peers"
            )));
        }
        for &window in &params.windows {
            let out = cluster.run_closed(window, params.closed_total, params.drain);
            rows.push(MatrixRow::from_outcome(peers, "closed", 0.0, window, &out));
        }
        for &rate in &params.rates {
            let total = (rate * params.secs).max(1.0) as u64;
            let out = cluster.run_open(rate, total, params.drain);
            rows.push(MatrixRow::from_outcome(peers, "open", rate, 0, &out));
        }
        cluster.shutdown();
    }
    Ok(rows)
}

/// The saturation knee for one replica count: the highest offered
/// open-loop rate still served at ≥ 95% goodput. `None` when even the
/// lowest rate saturates.
pub fn knee(rows: &[MatrixRow], peers: usize) -> Option<f64> {
    rows.iter()
        .filter(|r| r.peers == peers && r.mode == "open")
        .filter(|r| r.achieved_rps >= 0.95 * r.offered_rps)
        .map(|r| r.offered_rps)
        .fold(None, |acc: Option<f64>, r| {
            Some(acc.map_or(r, |a| a.max(r)))
        })
}

/// The corrected p99 at roughly half the knee — the "comfortable load"
/// tail the E16 acceptance gate watches. Picks the open-loop point whose
/// offered rate is closest to `knee / 2`.
pub fn half_knee_p99_us(rows: &[MatrixRow], peers: usize) -> Option<u64> {
    let half = knee(rows, peers)? / 2.0;
    rows.iter()
        .filter(|r| r.peers == peers && r.mode == "open")
        .min_by(|a, b| {
            (a.offered_rps - half)
                .abs()
                .total_cmp(&(b.offered_rps - half).abs())
        })?
        .p99_us
}

/// The closed-loop throughput ceiling across the whole matrix.
pub fn peak_rps(rows: &[MatrixRow]) -> f64 {
    rows.iter()
        .filter(|r| r.mode == "closed")
        .map(|r| r.achieved_rps)
        .fold(0.0, f64::max)
}

/// Renders the matrix.
pub fn table(rows: &[MatrixRow]) -> Table {
    let mut t = Table::new(
        "load_matrix",
        &[
            "replicas",
            "mode",
            "offered rps",
            "window",
            "achieved rps",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
            "faults",
            "lost",
        ],
    );
    let ms = |us: Option<u64>| {
        us.map(|u| format!("{:.2}", u as f64 / 1e3))
            .unwrap_or_else(|| "-".into())
    };
    for r in rows {
        t.row([
            r.peers.to_string(),
            r.mode.to_string(),
            if r.mode == "open" {
                format!("{:.0}", r.offered_rps)
            } else {
                "-".into()
            },
            if r.mode == "closed" {
                r.window.to_string()
            } else {
                "-".into()
            },
            format!("{:.0}", r.achieved_rps),
            ms(r.p50_us),
            ms(r.p99_us),
            ms(r.p999_us),
            r.faults.to_string(),
            r.lost.to_string(),
        ]);
    }
    t
}

/// Records the matrix into the bench trajectory: the overall closed-loop
/// peak plus, per replica count, the knee and the corrected p99 at half
/// the knee. `peak_rps`/`knee_rps` are throughput statistics —
/// `whisper-top --compare` treats a *drop* as the regression.
pub fn record(summary: &mut crate::BenchSummary, rows: &[MatrixRow]) {
    summary.record("load_matrix", "peak_rps", peak_rps(rows));
    let mut peers: Vec<usize> = rows.iter().map(|r| r.peers).collect();
    peers.sort_unstable();
    peers.dedup();
    for p in peers {
        if let Some(k) = knee(rows, p) {
            summary.record("load_matrix", &format!("knee_rps_{p}peer"), k);
        }
        if let Some(p99) = half_knee_p99_us(rows, p) {
            summary.record(
                "load_matrix",
                &format!("half_knee_p99_us_{p}peer"),
                p99 as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature matrix on one replica: every point completes, the
    /// trajectory stats come out, and the knee logic sees the
    /// unsaturated low rate.
    #[test]
    fn mini_matrix_produces_knee_and_peak() {
        let params = MatrixParams {
            peers: vec![1],
            workers: 1,
            rates: vec![400.0],
            windows: vec![4],
            secs: 0.5,
            closed_total: 200,
            drain: Duration::from_secs(8),
        };
        let rows = run_matrix(&params).expect("loopback sockets");
        assert_eq!(rows.len(), 2);
        let closed = &rows[0];
        assert_eq!((closed.mode, closed.window), ("closed", 4));
        assert_eq!(closed.lost, 0, "{closed:?}");
        let open = &rows[1];
        assert_eq!(open.mode, "open");
        assert!(
            open.achieved_rps >= 0.95 * open.offered_rps,
            "400 rps must not saturate loopback: {open:?}"
        );
        assert_eq!(knee(&rows, 1), Some(400.0));
        assert!(peak_rps(&rows) > 0.0);
        assert!(half_knee_p99_us(&rows, 1).is_some());

        let mut s = crate::BenchSummary::new();
        record(&mut s, &rows);
        assert!(s.get("load_matrix", "peak_rps").is_some());
        assert!(s.get("load_matrix", "knee_rps_1peer").is_some());
    }
}
