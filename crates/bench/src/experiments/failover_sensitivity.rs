//! **Failover-latency sensitivity** — an ablation of the paper's §5
//! diagnosis. The multi-second worst-case RTT decomposes into (1) failure
//! detection (heartbeat period + failure timeout), (2) the Bully answer
//! timeout, and (3) the proxy's request timeout before it re-binds. This
//! experiment sweeps each knob to show which one buys the most: with
//! aggressive tuning the worst case drops from seconds to hundreds of
//! milliseconds — and the paper's defaults sit squarely on the slow end.

use crate::experiments::rtt::FailoverBreakdown;
use crate::Table;
use whisper::{DeploymentConfig, GroupSpec, ServiceBackend, StudentRegistry, WhisperNet};
use whisper_election::BullyConfig;
use whisper_simnet::SimDuration;

/// One tuning profile.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Label for the table.
    pub name: &'static str,
    /// Heartbeat beacon period.
    pub heartbeat_period: SimDuration,
    /// Failure-detector timeout.
    pub failure_timeout: SimDuration,
    /// Bully answer timeout.
    pub answer_timeout: SimDuration,
    /// Proxy request timeout before re-binding.
    pub request_timeout: SimDuration,
}

/// The sweep: the paper-era defaults, then each knob tightened alone, then
/// everything tightened.
pub fn profiles() -> Vec<Profile> {
    let paper = Profile {
        name: "paper-era defaults",
        heartbeat_period: SimDuration::from_millis(500),
        failure_timeout: SimDuration::from_millis(1500),
        answer_timeout: SimDuration::from_millis(1000),
        request_timeout: SimDuration::from_millis(2000),
    };
    vec![
        paper,
        Profile {
            name: "fast detection (hb 100 ms / to 300 ms)",
            heartbeat_period: SimDuration::from_millis(100),
            failure_timeout: SimDuration::from_millis(300),
            ..paper
        },
        Profile {
            name: "fast election (answer 200 ms)",
            answer_timeout: SimDuration::from_millis(200),
            ..paper
        },
        Profile {
            name: "fast re-bind (request to 500 ms)",
            request_timeout: SimDuration::from_millis(500),
            ..paper
        },
        Profile {
            name: "everything tightened",
            heartbeat_period: SimDuration::from_millis(100),
            failure_timeout: SimDuration::from_millis(300),
            answer_timeout: SimDuration::from_millis(200),
            request_timeout: SimDuration::from_millis(500),
        },
    ]
}

/// Builds the paper scenario with the profile's timeouts.
fn deployment(profile: Profile, bpeers: usize, seed: u64) -> WhisperNet {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();
    let backends: Vec<Box<dyn ServiceBackend>> = (0..bpeers)
        .map(|i| -> Box<dyn ServiceBackend> {
            if i % 2 == 0 {
                Box::new(StudentRegistry::operational_db().with_sample_data())
            } else {
                Box::new(StudentRegistry::data_warehouse().with_sample_data())
            }
        })
        .collect();
    let mut cfg = DeploymentConfig {
        seed,
        service,
        groups: vec![GroupSpec::from_operation("StudentInfoGroup", &op, backends)],
        ..DeploymentConfig::default()
    };
    cfg.bpeer.heartbeat_period = profile.heartbeat_period;
    cfg.bpeer.failure_timeout = profile.failure_timeout;
    cfg.bpeer.bully = BullyConfig {
        answer_timeout: profile.answer_timeout,
        coordinator_timeout: profile.answer_timeout.saturating_mul(2),
        ..BullyConfig::default()
    };
    cfg.proxy.request_timeout = profile.request_timeout;
    WhisperNet::build(cfg).expect("valid deployment")
}

/// Measures the failover breakdown under one profile (same protocol as
/// [`rtt::failover_breakdown`](crate::experiments::rtt::failover_breakdown)).
pub fn measure(profile: Profile, bpeers: usize, seed: u64) -> FailoverBreakdown {
    let mut net = deployment(profile, bpeers, seed);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];
    net.submit_student_request(client, "u1000");
    net.run_for(SimDuration::from_secs(1));

    let crash_at = net.now();
    net.kill_coordinator(0).expect("coordinator exists");
    net.submit_student_request(client, "u1001");

    let elected_at = loop {
        net.run_for(SimDuration::from_millis(5));
        let agreed = net
            .group_nodes(0)
            .iter()
            .filter(|&&n| net.is_up(n))
            .all(|&n| {
                net.bpeer(n)
                    .coordinator()
                    .is_some_and(|c| net.directory().node_of(c).is_some_and(|cn| net.is_up(cn)))
            });
        if agreed {
            break net.now();
        }
        assert!(
            net.now().since(crash_at) < SimDuration::from_secs(60),
            "election never converged under {:?}",
            profile.name
        );
    };
    let answered_at = loop {
        net.run_for(SimDuration::from_millis(5));
        if net.client_stats(client).completed == 2 {
            break net.now();
        }
        assert!(
            net.now().since(crash_at) < SimDuration::from_secs(60),
            "failover request never completed under {:?}",
            profile.name
        );
    };
    FailoverBreakdown {
        detect_and_elect: elected_at.since(crash_at),
        rebind: answered_at.since(elected_at),
        total: answered_at.since(crash_at),
    }
}

/// Runs the sweep.
pub fn run_sweep(bpeers: usize, seed: u64) -> Vec<(Profile, FailoverBreakdown)> {
    profiles()
        .into_iter()
        .map(|p| (p, measure(p, bpeers, seed)))
        .collect()
}

/// Renders the sweep.
pub fn table(rows: &[(Profile, FailoverBreakdown)]) -> Table {
    let mut t = Table::new(
        "failover_sensitivity",
        &["profile", "detect+elect ms", "re-bind ms", "total ms"],
    );
    for (p, b) in rows {
        t.row([
            p.name.to_string(),
            crate::table::ms(b.detect_and_elect),
            crate::table::ms(b.rebind),
            crate::table::ms(b.total),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightened_profile_is_dramatically_faster_than_paper_defaults() {
        let all = run_sweep(3, 19);
        let paper = &all[0].1;
        let tight = &all.last().expect("non-empty").1;
        assert!(
            paper.total.as_secs_f64() >= 1.0,
            "paper defaults should take seconds: {}",
            paper.total
        );
        assert!(
            tight.total.as_millis_f64() < paper.total.as_millis_f64() / 3.0,
            "tightened profile should be at least 3x faster: {} vs {}",
            tight.total,
            paper.total
        );
        assert!(
            tight.total.as_millis_f64() < 1_500.0,
            "tightened failover should be sub-1.5 s: {}",
            tight.total
        );
    }

    #[test]
    fn each_single_knob_helps() {
        let all = run_sweep(3, 23);
        let paper_total = all[0].1.total;
        for (p, b) in &all[1..4] {
            assert!(
                b.total <= paper_total,
                "profile {:?} should not be slower than defaults: {} vs {}",
                p.name,
                b.total,
                paper_total
            );
        }
    }
}
