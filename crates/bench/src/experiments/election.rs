//! **Election cost vs. group size** — the ablation behind the paper's
//! observation that "in case of coordinator failure, the time needed to
//! elect a new coordinator is considerably high".
//!
//! Runs the raw election protocols on the calibrated LAN (no Whisper layers
//! on top) with the previous coordinator — the highest peer — dead:
//!
//! * **Bully, stale membership**: survivors still list the dead peer; the
//!   initiator pays the answer timeout before self-promoting (the paper's
//!   slow path).
//! * **Bully, updated membership**: the failure detector already removed
//!   the dead peer; elections resolve in one or two message rounds.
//! * **Ring baseline**: Chang–Roberts-style circulation, Θ(2n) messages.

use crate::Table;
use whisper_election::{BullyConfig, BullyNode, ElectionMsg, ElectionProtocol, RingNode};
use whisper_p2p::PeerId;
use whisper_simnet::{Actor, Context, NodeId, SimDuration, SimNet, SimTime, Wire};

#[derive(Debug, Clone)]
struct WireMsg(ElectionMsg);

impl Wire for WireMsg {
    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
    fn kind(&self) -> &'static str {
        self.0.kind()
    }
}

/// Which protocol variant to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Bully with the dead coordinator still in every membership list.
    BullyStaleMembership,
    /// Bully after failure detection removed the dead coordinator.
    BullyUpdatedMembership,
    /// Ring election (membership updated; the ring must skip the corpse).
    Ring,
}

impl Variant {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::BullyStaleMembership => "bully (stale membership)",
            Variant::BullyUpdatedMembership => "bully (updated membership)",
            Variant::Ring => "ring baseline",
        }
    }
}

struct ElectionHost {
    proto: Box<dyn ElectionProtocol + Send>,
    peer_to_node: Vec<(PeerId, NodeId)>,
    /// Fires `start_election` at this delay when set.
    trigger: Option<SimDuration>,
}

const TRIGGER_TOKEN: u64 = u64::MAX;

impl ElectionHost {
    fn route(&self, ctx: &mut Context<'_, WireMsg>, out: whisper_election::Output) {
        for (to, msg) in out.sends {
            if let Some(&(_, node)) = self.peer_to_node.iter().find(|(p, _)| *p == to) {
                ctx.send(node, WireMsg(msg));
            }
        }
        for t in out.timers {
            ctx.set_timer(t.delay, t.token);
        }
    }
}

impl Actor<WireMsg> for ElectionHost {
    fn on_start(&mut self, ctx: &mut Context<'_, WireMsg>) {
        if let Some(d) = self.trigger {
            ctx.set_timer(d, TRIGGER_TOKEN);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, WireMsg>, from: NodeId, msg: WireMsg) {
        let from_peer = self
            .peer_to_node
            .iter()
            .find(|(_, n)| *n == from)
            .map(|(p, _)| *p)
            .unwrap_or(self.proto.me());
        let out = self.proto.on_message(from_peer, msg.0, ctx.now());
        self.route(ctx, out);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, WireMsg>, token: u64) {
        let out = if token == TRIGGER_TOKEN {
            self.proto.start_election(ctx.now())
        } else {
            self.proto.on_timer(token, ctx.now())
        };
        self.route(ctx, out);
    }
}

/// Result of one measured election.
#[derive(Debug, Clone)]
pub struct ElectionRow {
    /// Live peers participating.
    pub peers: usize,
    /// Protocol variant.
    pub variant: Variant,
    /// Virtual time from trigger to unanimous agreement.
    pub time: SimDuration,
    /// Messages exchanged.
    pub messages: u64,
}

/// Runs one election: peers `1..=n+1` exist, the highest (old coordinator)
/// is dead, and the *lowest* survivor detects it first (Bully's worst
/// case). Returns time-to-unanimity among survivors and the message count.
///
/// # Panics
///
/// Panics if the survivors never agree (protocol bug).
pub fn run_election(n_live: usize, variant: Variant, seed: u64) -> ElectionRow {
    assert!(n_live >= 1);
    let dead = PeerId::new(n_live as u64 + 1);
    let all: Vec<PeerId> = (1..=n_live as u64 + 1).map(PeerId::new).collect();
    let live: Vec<PeerId> = all[..n_live].to_vec();

    let mut net: SimNet<WireMsg> = SimNet::new(seed);
    let peer_to_node: Vec<(PeerId, NodeId)> = live
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, NodeId::from_index(i)))
        .collect();
    let expected_winner = *live.last().expect("non-empty");

    for (i, &p) in live.iter().enumerate() {
        let mut proto: Box<dyn ElectionProtocol + Send> = match variant {
            Variant::BullyStaleMembership => Box::new(BullyNode::new(
                p,
                all.iter().copied(),
                BullyConfig::default(),
            )),
            Variant::BullyUpdatedMembership => {
                let mut b = BullyNode::new(p, all.iter().copied(), BullyConfig::default());
                b.remove_member(dead);
                Box::new(b)
            }
            Variant::Ring => {
                let mut r = RingNode::new(p, all.iter().copied());
                r.remove_member(dead);
                Box::new(r)
            }
        };
        // everyone starts believing in the dead coordinator
        let _ = proto.on_message(dead, ElectionMsg::Coordinator { from: dead }, SimTime::ZERO);
        let node = net.add_node(ElectionHost {
            proto,
            peer_to_node: peer_to_node.clone(),
            // Failure detection fires well after the election cooldown in
            // real deployments; trigger past it.
            trigger: (i == 0).then(|| SimDuration::from_millis(600)),
        });
        debug_assert_eq!(node, NodeId::from_index(i));
    }
    // Step until every survivor believes in the expected winner; stale
    // timers may still be queued afterwards, so quiescence would
    // overestimate the agreement time.
    let trigger_at = SimTime::from_micros(600_000);
    let unanimous = |net: &SimNet<WireMsg>| {
        (0..n_live).all(|i| {
            net.node::<ElectionHost>(NodeId::from_index(i))
                .proto
                .coordinator()
                == Some(expected_winner)
        })
    };
    let agreed_at = loop {
        if unanimous(&net) && net.now() >= trigger_at {
            break net.now();
        }
        assert!(
            net.step(),
            "{}: quiesced without agreement",
            variant.label()
        );
        assert!(
            net.now() < SimTime::from_micros(120_000_000),
            "{}: election did not converge",
            variant.label()
        );
    };
    // Drain leftovers so the message count is complete.
    net.run_until_quiescent();
    ElectionRow {
        peers: n_live,
        variant,
        time: agreed_at.since(trigger_at),
        messages: net.metrics().messages_sent(),
    }
}

/// Sweeps group sizes for every variant.
pub fn run_sweep(sizes: &[usize], seed: u64) -> Vec<ElectionRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        for v in [
            Variant::BullyStaleMembership,
            Variant::BullyUpdatedMembership,
            Variant::Ring,
        ] {
            rows.push(run_election(n, v, seed));
        }
    }
    rows
}

/// Renders the sweep.
pub fn table(rows: &[ElectionRow]) -> Table {
    let mut t = Table::new(
        "election_time",
        &["live peers", "variant", "time ms", "messages"],
    );
    for r in rows {
        t.row([
            r.peers.to_string(),
            r.variant.label().to_string(),
            crate::table::ms(r.time),
            r.messages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_membership_pays_the_answer_timeout() {
        let stale = run_election(4, Variant::BullyStaleMembership, 3);
        let fresh = run_election(4, Variant::BullyUpdatedMembership, 3);
        // the stale path waits ≥ the 1 s answer timeout at least once
        assert!(
            stale.time.as_secs_f64() >= 1.0,
            "stale election finished too fast: {}",
            stale.time
        );
        assert!(
            fresh.time < stale.time,
            "updated membership should be faster: {} vs {}",
            fresh.time,
            stale.time
        );
        assert!(
            fresh.time.as_millis_f64() < 100.0,
            "fresh election {}",
            fresh.time
        );
    }

    #[test]
    fn ring_messages_are_theta_two_n() {
        for n in [3usize, 6, 10] {
            let r = run_election(n, Variant::Ring, 5);
            assert_eq!(r.messages as usize, 2 * n, "ring cost for n={n}");
        }
    }

    #[test]
    fn bully_worst_case_messages_grow_superlinearly() {
        let small = run_election(4, Variant::BullyUpdatedMembership, 5);
        let big = run_election(12, Variant::BullyUpdatedMembership, 5);
        // worst case (lowest initiator) is O(n^2)
        let ratio = big.messages as f64 / small.messages as f64;
        assert!(
            ratio > (12.0 / 4.0),
            "bully messages should grow faster than linear: {} -> {}",
            small.messages,
            big.messages
        );
    }

    #[test]
    fn singleton_self_elects() {
        let r = run_election(1, Variant::BullyUpdatedMembership, 1);
        assert_eq!(r.messages, 0);
    }
}
