//! **Discovery quality: semantic vs. syntactic matching** (paper §3.1 and
//! §4.3): "the use of syntactic information alone originates a high recall
//! and low precision during the search" and "b-peers retrieved may be
//! inadequate due to low precision (many b-peers you do not want) and low
//! recall (missed the b-peers you really need to consider)".
//!
//! A synthetic advertisement corpus is generated with controlled naming
//! noise: functionally relevant groups frequently use *other* names
//! (synonym problem → syntactic misses), and functionally irrelevant groups
//! frequently reuse the popular operation name (homonym problem →
//! syntactic false hits). Ground truth is fixed at generation time from the
//! advertised *concepts*; the two matchers then retrieve against the same
//! corpus and are scored with precision / recall / F1.

use crate::Table;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use whisper::matchmaker;
use whisper_ontology::samples::{university_ontology, UNIVERSITY_NS};
use whisper_p2p::{GroupId, SemanticAdv};
use whisper_wsdl::samples::student_management;
use whisper_xml::QName;

/// Corpus-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusParams {
    /// Number of advertisements.
    pub size: usize,
    /// Fraction of functionally relevant advertisements.
    pub relevant_fraction: f64,
    /// Probability that a relevant advertisement uses the popular name.
    pub relevant_named_popular: f64,
    /// Probability that an irrelevant advertisement reuses the popular
    /// name (homonyms).
    pub homonym_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            size: 400,
            relevant_fraction: 0.3,
            relevant_named_popular: 0.85,
            homonym_rate: 0.35,
            seed: 31,
        }
    }
}

/// An advertisement plus its ground-truth relevance.
#[derive(Debug, Clone)]
pub struct LabeledAdv {
    /// The advertisement.
    pub adv: SemanticAdv,
    /// Whether it can actually serve the request (fixed at generation).
    pub relevant: bool,
}

const POPULAR_NAME: &str = "StudentInformation";

fn q(local: &str) -> QName {
    QName::with_ns(UNIVERSITY_NS, local)
}

/// Generates the labeled corpus.
pub fn generate_corpus(params: CorpusParams) -> Vec<LabeledAdv> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut corpus = Vec::with_capacity(params.size);

    // Concept pools. The relevant pools satisfy the matchmaker's
    // directional rules for the StudentInformation operation; the
    // irrelevant pools violate at least one position.
    let relevant_actions = ["StudentInformation", "StudentTranscriptRetrieval"];
    let relevant_inputs = ["StudentID", "Identifier"];
    let relevant_outputs = ["StudentInfo", "StudentTranscript", "StudentContactInfo"];
    let wrong_actions = ["EnrollmentUpdate", "StaffInformation", "InformationUpdate"];
    let wrong_inputs = ["NationalID", "StaffID", "PurchaseOrderLikeId"];
    let wrong_outputs = ["StaffRecord", "PayrollRecord", "Record"];

    let other_names = [
        "UniRecords",
        "CampusDirectory",
        "RegistryService",
        "PeopleFinder",
        "AcademicLookup",
    ];

    for i in 0..params.size {
        let relevant = rng.gen_bool(params.relevant_fraction);
        let (action, input, output) = if relevant {
            (
                relevant_actions[rng.gen_range(0..relevant_actions.len())],
                relevant_inputs[rng.gen_range(0..relevant_inputs.len())],
                relevant_outputs[rng.gen_range(0..relevant_outputs.len())],
            )
        } else {
            // at least the action is wrong; data concepts may even be right
            (
                wrong_actions[rng.gen_range(0..wrong_actions.len())],
                if rng.gen_bool(0.5) {
                    "StudentID"
                } else {
                    wrong_inputs[rng.gen_range(0..wrong_inputs.len())]
                },
                if rng.gen_bool(0.3) {
                    "StudentInfo"
                } else {
                    wrong_outputs[rng.gen_range(0..wrong_outputs.len())]
                },
            )
        };
        let popular = if relevant {
            rng.gen_bool(params.relevant_named_popular)
        } else {
            rng.gen_bool(params.homonym_rate)
        };
        let name = if popular {
            POPULAR_NAME.to_string()
        } else {
            other_names[rng.gen_range(0..other_names.len())].to_string()
        };
        // Concepts unknown to the ontology model the "syntactic details
        // only" advertisements plain JXTA would publish.
        let adv = SemanticAdv {
            group: GroupId::new(i as u64 + 1),
            name,
            action: q(action),
            inputs: vec![q(input)],
            outputs: vec![q(output)],
            qos: None,
        };
        corpus.push(LabeledAdv { adv, relevant });
    }
    corpus
}

/// Precision/recall scores of one matcher over the corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityRow {
    /// Retrieved advertisements.
    pub retrieved: usize,
    /// Retrieved ∩ relevant.
    pub true_positives: usize,
    /// Total relevant in corpus.
    pub relevant: usize,
    /// `tp / retrieved`.
    pub precision: f64,
    /// `tp / relevant`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

fn score(retrieved: &[bool], truth: &[bool]) -> QualityRow {
    let tp = retrieved
        .iter()
        .zip(truth)
        .filter(|(&r, &t)| r && t)
        .count();
    let retrieved_n = retrieved.iter().filter(|&&r| r).count();
    let relevant_n = truth.iter().filter(|&&t| t).count();
    let precision = if retrieved_n == 0 {
        0.0
    } else {
        tp as f64 / retrieved_n as f64
    };
    let recall = if relevant_n == 0 {
        0.0
    } else {
        tp as f64 / relevant_n as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    QualityRow {
        retrieved: retrieved_n,
        true_positives: tp,
        relevant: relevant_n,
        precision,
        recall,
        f1,
    }
}

/// Runs both matchers over one corpus: returns `(syntactic, semantic)`.
pub fn run(params: CorpusParams) -> (QualityRow, QualityRow) {
    let corpus = generate_corpus(params);
    let onto = university_ontology();
    let request = student_management()
        .operation("StudentInformation")
        .expect("sample operation")
        .resolve(&onto)
        .expect("annotations resolve");

    let truth: Vec<bool> = corpus.iter().map(|l| l.relevant).collect();
    let syntactic: Vec<bool> = corpus
        .iter()
        .map(|l| matchmaker::syntactic_match(POPULAR_NAME, &l.adv))
        .collect();
    let semantic: Vec<bool> = corpus
        .iter()
        .map(|l| matchmaker::match_semantic_adv(&onto, &request, &l.adv).is_acceptable())
        .collect();
    (score(&syntactic, &truth), score(&semantic, &truth))
}

/// Renders the comparison.
pub fn table(syntactic: QualityRow, semantic: QualityRow) -> Table {
    let mut t = Table::new(
        "discovery_quality",
        &[
            "matcher",
            "retrieved",
            "tp",
            "relevant",
            "precision",
            "recall",
            "F1",
        ],
    );
    for (name, r) in [
        ("syntactic (name)", syntactic),
        ("semantic (concepts)", semantic),
    ] {
        t.row([
            name.to_string(),
            r.retrieved.to_string(),
            r.true_positives.to_string(),
            r.relevant.to_string(),
            format!("{:.3}", r.precision),
            format!("{:.3}", r.recall),
            format!("{:.3}", r.f1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_matching_beats_syntactic_on_both_axes() {
        let (syn, sem) = run(CorpusParams::default());
        assert!(
            sem.precision > syn.precision,
            "precision: semantic {:.3} vs syntactic {:.3}",
            sem.precision,
            syn.precision
        );
        assert!(
            sem.recall > syn.recall,
            "recall: semantic {:.3} vs syntactic {:.3}",
            sem.recall,
            syn.recall
        );
        // the paper's diagnosis: "high recall and low precision"
        assert!(
            syn.recall > 0.7,
            "syntactic recall {:.3} should be high",
            syn.recall
        );
        assert!(
            syn.precision < 0.7,
            "syntactic precision {:.3} should be low",
            syn.precision
        );
        // ground truth aligns with concepts, so the semantic matcher is
        // exact by construction
        assert!((sem.precision - 1.0).abs() < 1e-9);
        assert!((sem.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn corpus_is_reproducible_and_balanced() {
        let a = generate_corpus(CorpusParams::default());
        let b = generate_corpus(CorpusParams::default());
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.iter().filter(|l| l.relevant).count(),
            b.iter().filter(|l| l.relevant).count()
        );
        let relevant = a.iter().filter(|l| l.relevant).count() as f64 / a.len() as f64;
        assert!(
            (0.15..0.45).contains(&relevant),
            "relevant fraction {relevant}"
        );
    }

    #[test]
    fn scoring_math() {
        let r = score(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.retrieved, 2);
        assert_eq!(r.relevant, 2);
        assert!((r.precision - 0.5).abs() < 1e-12);
        assert!((r.recall - 0.5).abs() < 1e-12);
        assert!((r.f1 - 0.5).abs() < 1e-12);
        // degenerate cases
        let empty = score(&[false, false], &[true, true]);
        assert_eq!(empty.precision, 0.0);
        assert_eq!(empty.f1, 0.0);
    }
}
