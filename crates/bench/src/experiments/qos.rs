//! **QoS-aware peer selection** (paper §2.4): "after discovering a JXTA
//! peer whose data and functional semantics match the semantics of the
//! required Web service, the next step is to select the most suitable
//! peer. Each peer can have different quality aspect and hence selection
//! involves locating the peer that provides the best quality criteria
//! match."
//!
//! Three semantically identical b-peer groups differ in *actual* service
//! time and reliability, and advertise QoS claims that reflect reality.
//! A closed-loop client runs the same workload under each selection policy;
//! QoS-aware selection should deliver lower latency and fewer faults than
//! random or first-found selection.

use crate::Table;
use whisper::{
    ClientConfigTemplate, DeploymentConfig, EchoBackend, FlakyBackend, GroupSpec, SelectionPolicy,
    ServiceBackend, WhisperNet, Workload,
};
use whisper_p2p::QosSpec;
use whisper_simnet::SimDuration;
use whisper_xml::Element;

/// Parameters of the QoS-selection experiment.
#[derive(Debug, Clone, Copy)]
pub struct QosParams {
    /// Requests per policy run.
    pub requests: u64,
    /// Simulator seed.
    pub seed: u64,
}

impl Default for QosParams {
    fn default() -> Self {
        QosParams {
            requests: 300,
            seed: 37,
        }
    }
}

/// Outcome of one policy run.
#[derive(Debug, Clone)]
pub struct QosRow {
    /// The selection policy measured.
    pub policy: SelectionPolicy,
    /// Mean service RTT.
    pub mean: Option<SimDuration>,
    /// 99th-percentile service RTT.
    pub p99: Option<SimDuration>,
    /// Faults observed (unreliable backends).
    pub faults: u64,
    /// Requests completed.
    pub completed: u64,
}

/// The three group profiles: (name, service time, fail probability, QoS).
fn profiles() -> Vec<(&'static str, SimDuration, f64, QosSpec)> {
    vec![
        (
            "GoldGroup",
            SimDuration::from_micros(300),
            0.0,
            QosSpec {
                latency_us: 300,
                reliability: 0.999,
                cost: 1.0,
            },
        ),
        (
            "SilverGroup",
            SimDuration::from_millis(3),
            0.02,
            QosSpec {
                latency_us: 3_000,
                reliability: 0.98,
                cost: 1.0,
            },
        ),
        (
            "BronzeGroup",
            SimDuration::from_millis(10),
            0.08,
            QosSpec {
                latency_us: 10_000,
                reliability: 0.92,
                cost: 1.0,
            },
        ),
    ]
}

/// Runs the workload under one selection policy.
pub fn run_policy(policy: SelectionPolicy, params: QosParams) -> QosRow {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();

    let mut groups = Vec::new();
    for (gi, (name, service_time, fail_p, qos)) in profiles().into_iter().enumerate() {
        let backends: Vec<Box<dyn ServiceBackend>> = (0..2)
            .map(|pi| {
                Box::new(FlakyBackend::new(
                    Box::new(EchoBackend),
                    fail_p,
                    params.seed ^ ((gi * 10 + pi) as u64),
                )) as Box<dyn ServiceBackend>
            })
            .collect();
        let mut g = GroupSpec::from_operation(name, &op, backends);
        g.qos = Some(qos);
        g.processing_time = Some(service_time);
        groups.push(g);
    }

    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1000"));
    let mut cfg = DeploymentConfig {
        seed: params.seed,
        service,
        groups,
        clients: vec![ClientConfigTemplate {
            workload: Workload::Closed {
                think: SimDuration::from_millis(5),
                window: 1,
            },
            payloads: vec![payload],
            total: Some(params.requests),
            timeout: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(2),
        }],
        ..DeploymentConfig::default()
    };
    cfg.proxy.policy = policy;

    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(
        SimDuration::from_secs(2) + SimDuration::from_millis(40 * params.requests + 10_000),
    );
    let stats = net.client_stats(net.client_ids()[0]);
    let rtt = stats.rtt.clone();
    QosRow {
        policy,
        mean: rtt.mean(),
        p99: rtt.percentile(99.0),
        faults: stats.faults,
        completed: stats.completed,
    }
}

/// Runs every policy, averaging each over `seeds` independent runs so
/// arrival-order luck (which decides what "first found" means) does not
/// dominate.
pub fn run_all_seeds(params: QosParams, seeds: &[u64]) -> Vec<QosRow> {
    [
        SelectionPolicy::SemanticThenQos,
        SelectionPolicy::QosOnly,
        SelectionPolicy::Adaptive,
        SelectionPolicy::Random,
        SelectionPolicy::FirstFound,
    ]
    .into_iter()
    .map(|policy| {
        let runs: Vec<QosRow> = seeds
            .iter()
            .map(|&s| run_policy(policy, QosParams { seed: s, ..params }))
            .collect();
        let n = runs.len() as f64;
        let avg = |f: fn(&QosRow) -> Option<SimDuration>| {
            let vals: Vec<f64> = runs
                .iter()
                .filter_map(|r| f(r).map(|d| d.as_micros() as f64))
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some(SimDuration::from_micros(
                    (vals.iter().sum::<f64>() / vals.len() as f64) as u64,
                ))
            }
        };
        QosRow {
            policy,
            mean: avg(|r| r.mean),
            p99: avg(|r| r.p99),
            faults: (runs.iter().map(|r| r.faults).sum::<u64>() as f64 / n).round() as u64,
            completed: runs.iter().map(|r| r.completed).sum::<u64>() / runs.len() as u64,
        }
    })
    .collect()
}

/// Runs every policy once with the configured seed.
pub fn run_all(params: QosParams) -> Vec<QosRow> {
    run_all_seeds(params, &[params.seed])
}

fn policy_label(p: SelectionPolicy) -> &'static str {
    match p {
        SelectionPolicy::SemanticThenQos => "semantic+qos",
        SelectionPolicy::QosOnly => "qos-only (advertised)",
        SelectionPolicy::Adaptive => "adaptive (observed)",
        SelectionPolicy::Random => "random",
        SelectionPolicy::FirstFound => "first-found",
    }
}

/// **E10 — adaptive selection vs. lying advertisements.** Two semantically
/// equal groups: the *boaster* claims gold QoS but is slow and flaky; the
/// *honest* group claims modest QoS and delivers it. Advertised-only
/// selection trusts the boaster forever; adaptive selection abandons it as
/// soon as the measurements accumulate.
pub fn run_lying_advertiser(policy: SelectionPolicy, params: QosParams) -> QosRow {
    let service = whisper_wsdl::samples::student_management();
    let op = service
        .operation("StudentInformation")
        .expect("sample op")
        .clone();

    let mk = |fail_p: f64, gi: u64| -> Vec<Box<dyn ServiceBackend>> {
        (0..2)
            .map(|pi| {
                Box::new(FlakyBackend::new(
                    Box::new(EchoBackend),
                    fail_p,
                    params.seed ^ (gi * 10 + pi),
                )) as Box<dyn ServiceBackend>
            })
            .collect()
    };
    // claims 0.3 ms / 99.9%; delivers 20 ms / ~80%
    let mut boaster = GroupSpec::from_operation("BoasterGroup", &op, mk(0.2, 1));
    boaster.qos = Some(QosSpec {
        latency_us: 300,
        reliability: 0.999,
        cost: 1.0,
    });
    boaster.processing_time = Some(SimDuration::from_millis(20));
    // claims 3 ms / 97%; delivers exactly that
    let mut honest = GroupSpec::from_operation("HonestGroup", &op, mk(0.02, 2));
    honest.qos = Some(QosSpec {
        latency_us: 3_000,
        reliability: 0.97,
        cost: 1.0,
    });
    honest.processing_time = Some(SimDuration::from_millis(3));

    let mut payload = Element::new("StudentInformation");
    payload.push_child(Element::with_text("StudentID", "u1000"));
    let mut cfg = DeploymentConfig {
        seed: params.seed,
        service,
        groups: vec![boaster, honest],
        clients: vec![ClientConfigTemplate {
            workload: Workload::Closed {
                think: SimDuration::from_millis(5),
                window: 1,
            },
            payloads: vec![payload],
            total: Some(params.requests),
            timeout: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(2),
        }],
        ..DeploymentConfig::default()
    };
    cfg.proxy.policy = policy;
    let mut net = WhisperNet::build(cfg).expect("valid deployment");
    net.run_for(
        SimDuration::from_secs(2) + SimDuration::from_millis(60 * params.requests + 10_000),
    );
    let stats = net.client_stats(net.client_ids()[0]);
    let rtt = stats.rtt.clone();
    QosRow {
        policy,
        mean: rtt.mean(),
        p99: rtt.percentile(99.0),
        faults: stats.faults,
        completed: stats.completed,
    }
}

/// Renders the lying-advertiser comparison.
pub fn lying_advertiser_table(params: QosParams) -> Table {
    let rows: Vec<QosRow> = [SelectionPolicy::QosOnly, SelectionPolicy::Adaptive]
        .into_iter()
        .map(|p| run_lying_advertiser(p, params))
        .collect();
    let mut t = Table::new(
        "qos_adaptive",
        &["policy", "completed", "mean ms", "p99 ms", "faults"],
    );
    for r in &rows {
        t.row([
            policy_label(r.policy).to_string(),
            r.completed.to_string(),
            crate::table::ms_opt(r.mean),
            crate::table::ms_opt(r.p99),
            r.faults.to_string(),
        ]);
    }
    t
}

/// Renders the comparison.
pub fn table(rows: &[QosRow]) -> Table {
    let mut t = Table::new(
        "qos_selection",
        &["policy", "completed", "mean ms", "p99 ms", "faults"],
    );
    for r in rows {
        t.row([
            policy_label(r.policy).to_string(),
            r.completed.to_string(),
            crate::table::ms_opt(r.mean),
            crate::table::ms_opt(r.p99),
            r.faults.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_aware_selection_beats_random() {
        let params = QosParams {
            requests: 120,
            seed: 5,
        };
        let qos = run_policy(SelectionPolicy::QosOnly, params);
        let random = run_policy(SelectionPolicy::Random, params);
        let qm = qos.mean.expect("completions").as_millis_f64();
        let rm = random.mean.expect("completions").as_millis_f64();
        assert!(
            qm < rm,
            "qos-aware mean {qm:.3} ms should beat random {rm:.3} ms"
        );
        assert!(
            qos.faults <= random.faults,
            "qos faults {} vs random {}",
            qos.faults,
            random.faults
        );
        // QoS-aware traffic lands on the gold group; the mean carries the
        // one-time discovery cost of the first (cold) request.
        assert!(qm < 6.0, "gold-group latency should be low, got {qm:.3} ms");
    }

    #[test]
    fn all_policies_complete_the_workload() {
        let params = QosParams {
            requests: 50,
            seed: 9,
        };
        for row in run_all(params) {
            assert_eq!(row.completed, 50, "{:?} lost requests: {row:?}", row.policy);
        }
    }

    #[test]
    fn adaptive_selection_abandons_the_lying_advertiser() {
        let params = QosParams {
            requests: 150,
            seed: 3,
        };
        let advertised = run_lying_advertiser(SelectionPolicy::QosOnly, params);
        let adaptive = run_lying_advertiser(SelectionPolicy::Adaptive, params);
        let am = advertised.mean.expect("completions").as_millis_f64();
        let dm = adaptive.mean.expect("completions").as_millis_f64();
        assert!(
            dm < am / 2.0,
            "adaptive mean {dm:.2} ms should be far below advertised-only {am:.2} ms"
        );
        assert!(
            adaptive.faults < advertised.faults,
            "adaptive faults {} vs advertised-only {}",
            adaptive.faults,
            advertised.faults
        );
    }
}
