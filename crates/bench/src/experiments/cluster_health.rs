//! **Cluster health ledger** — the availability/MTTR ledger watching a
//! live group through repeated coordinator assassinations.
//!
//! The availability experiment measures what *clients* see; this one
//! measures what the *cluster itself* records. A deterministic simnet
//! deployment runs with the [`whisper_obs::AvailabilityLedger`] attached,
//! the current coordinator is killed several times, and after each kill
//! the ledger's service timeline is read back: the downtime interval it
//! recorded (backdated to the dead coordinator's last heartbeat), the
//! detection latency, and the repair time (detection + re-election).
//! The numbers in `EXPERIMENTS.md` come straight from these reports.

use crate::Table;
use whisper::WhisperNet;
use whisper_obs::AvailabilityReport;
use whisper_simnet::{SimDuration, SimTime};

/// Parameters of the cluster-health experiment.
#[derive(Debug, Clone, Copy)]
pub struct ClusterHealthParams {
    /// B-peers in the group at boot.
    pub n_bpeers: usize,
    /// Coordinator kills to inject (must be < `n_bpeers`, the dead stay
    /// dead).
    pub kills: usize,
    /// Quiet time before the first kill (boot election + heartbeats).
    pub warmup: SimDuration,
    /// Quiet time after each kill (detection + re-election + slack).
    pub settle: SimDuration,
    /// Simulator seed.
    pub seed: u64,
}

impl Default for ClusterHealthParams {
    fn default() -> Self {
        ClusterHealthParams {
            n_bpeers: 5,
            kills: 3,
            warmup: SimDuration::from_secs(20),
            settle: SimDuration::from_secs(30),
            seed: 42,
        }
    }
}

/// What the ledger recorded about one injected coordinator kill.
#[derive(Debug, Clone)]
pub struct KillRow {
    /// Kill index (1-based).
    pub kill: usize,
    /// The coordinator that was crashed.
    pub killed: u64,
    /// The coordinator the survivors elected.
    pub new_coordinator: Option<u64>,
    /// Ledger-recorded detection latency (last heartbeat → suspicion).
    pub detection: SimDuration,
    /// Ledger-recorded repair time (last heartbeat → new coordinator),
    /// i.e. the paper's failover window measured online.
    pub repair: Option<SimDuration>,
}

/// The full experiment outcome.
#[derive(Debug, Clone)]
pub struct ClusterHealthReport {
    /// One row per injected kill.
    pub rows: Vec<KillRow>,
    /// The service timeline's final availability report.
    pub service: AvailabilityReport,
    /// Total simulated time observed.
    pub horizon: SimDuration,
}

/// Runs the experiment: boot, then kill the coordinator `params.kills`
/// times, reading the ledger's service timeline back after each kill.
pub fn run(params: ClusterHealthParams) -> ClusterHealthReport {
    assert!(
        params.kills < params.n_bpeers,
        "need a survivor to elect ({} kills, {} b-peers)",
        params.kills,
        params.n_bpeers
    );
    let mut net = WhisperNet::student_scenario(params.n_bpeers, params.seed);
    let ledger = net.enable_ledger();
    net.run_for(params.warmup);
    let service = net.group_id(0).value();

    let mut rows = Vec::with_capacity(params.kills);
    for k in 0..params.kills {
        let killed = net.kill_coordinator(0).expect("a coordinator to kill");
        net.run_for(params.settle);
        let report = ledger
            .service_report(service, net.now())
            .expect("service timeline after boot election");
        let interval = report.downtime_intervals.last().copied();
        rows.push(KillRow {
            kill: k + 1,
            killed: killed.value(),
            new_coordinator: net.coordinator_of(0).map(|p| p.value()),
            detection: interval
                .map(|i| i.detection_latency())
                .unwrap_or(SimDuration::ZERO),
            repair: interval.and_then(|i| i.duration()),
        });
    }

    let service_report = ledger
        .service_report(service, net.now())
        .expect("service timeline");
    ClusterHealthReport {
        rows,
        service: service_report,
        horizon: net.now().since(SimTime::ZERO),
    }
}

/// Renders the per-kill table.
pub fn table(report: &ClusterHealthReport) -> Table {
    let mut t = Table::new(
        "cluster_health",
        &[
            "kill",
            "killed_peer",
            "new_coordinator",
            "detection_ms",
            "repair_ms",
        ],
    );
    for row in &report.rows {
        t.row(&[
            row.kill.to_string(),
            row.killed.to_string(),
            row.new_coordinator
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", row.detection.as_secs_f64() * 1e3),
            row.repair
                .map(|d| format!("{:.1}", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "open".into()),
        ]);
    }
    t
}

/// Renders the final ledger summary for the service timeline.
pub fn summary_table(report: &ClusterHealthReport) -> Table {
    let mut t = Table::new("cluster_health_summary", &["stat", "value"]);
    let s = &report.service;
    t.row(&[
        "horizon_s".into(),
        format!("{:.1}", report.horizon.as_secs_f64()),
    ]);
    t.row(&["availability".into(), format!("{:.6}", s.availability)]);
    t.row(&["failures".into(), s.failures.to_string()]);
    t.row(&["coordinator_churn".into(), s.churn.to_string()]);
    t.row(&[
        "mttf_s".into(),
        s.mttf
            .map(|d| format!("{:.2}", d.as_secs_f64()))
            .unwrap_or_else(|| "-".into()),
    ]);
    t.row(&[
        "mttr_ms".into(),
        s.mttr
            .map(|d| format!("{:.1}", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "-".into()),
    ]);
    t
}

/// Flattens the report into `(stat, value)` pairs for the machine-readable
/// bench summary ([`crate::BenchSummary`]).
pub fn summary_stats(report: &ClusterHealthReport) -> Vec<(String, f64)> {
    let s = &report.service;
    let mut stats = vec![
        ("kills".to_string(), report.rows.len() as f64),
        ("availability".to_string(), s.availability),
        ("failures".to_string(), s.failures as f64),
        ("coordinator_churn".to_string(), s.churn as f64),
        ("horizon_s".to_string(), report.horizon.as_secs_f64()),
    ];
    if let Some(mttr) = s.mttr {
        stats.push(("mttr_ms".to_string(), mttr.as_secs_f64() * 1e3));
    }
    if let Some(mttf) = s.mttf {
        stats.push(("mttf_s".to_string(), mttf.as_secs_f64()));
    }
    if !report.rows.is_empty() {
        let mean_detect = report
            .rows
            .iter()
            .map(|r| r.detection.as_secs_f64())
            .sum::<f64>()
            / report.rows.len() as f64;
        stats.push(("mean_detection_ms".to_string(), mean_detect * 1e3));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_every_injected_kill() {
        let params = ClusterHealthParams {
            n_bpeers: 4,
            kills: 2,
            warmup: SimDuration::from_secs(15),
            settle: SimDuration::from_secs(30),
            seed: 7,
        };
        let report = run(params);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(
                row.new_coordinator.is_some(),
                "survivors re-elected: {row:?}"
            );
            assert_ne!(row.new_coordinator, Some(row.killed));
            let repair = row.repair.expect("interval closed by re-election");
            assert!(repair >= row.detection, "repair covers detection: {row:?}");
            assert!(
                repair < params.settle,
                "re-election finished inside the settle window: {row:?}"
            );
        }
        // Two closed outages → availability strictly below 1, churn = 2.
        assert_eq!(report.service.failures, 2);
        assert_eq!(report.service.churn, 2);
        assert!(report.service.availability < 1.0);
        assert!(report.service.availability > 0.9, "outages are short");
        assert!(report.service.up, "service recovered");
    }

    #[test]
    fn summary_stats_cover_the_headline_numbers() {
        let report = run(ClusterHealthParams {
            n_bpeers: 3,
            kills: 1,
            warmup: SimDuration::from_secs(15),
            settle: SimDuration::from_secs(30),
            seed: 11,
        });
        let stats = summary_stats(&report);
        let get = |k: &str| {
            stats
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing stat {k}"))
        };
        assert_eq!(get("kills"), 1.0);
        assert_eq!(get("failures"), 1.0);
        assert!(get("mttr_ms") > 0.0);
        assert!(get("availability") > 0.0 && get("availability") < 1.0);
    }
}
