//! The whisper-surge saturation load plane: a real-TCP Whisper
//! deployment plus a workload driver that can push it to (and past) its
//! knee.
//!
//! Two workload shapes, both measured at the driver:
//!
//! - **Open loop** ([`LoadCluster::run_open`]): requests are offered on a
//!   fixed schedule regardless of how the system responds — the honest
//!   model of independent B2B partners. Latency is measured from each
//!   request's *intended* send time on that schedule, not from the moment
//!   the sender got around to it, so coordinated omission cannot launder
//!   queueing delay out of the percentiles.
//! - **Closed loop** ([`LoadCluster::run_closed`]): a fixed window of
//!   requests is kept in flight and every completion is immediately
//!   replaced — the shape that finds the pipeline's saturation throughput
//!   without overrunning it.
//!
//! The deployment is the paper's student scenario on TCP loopback with
//! load-sharing on and the surge worker pool enabled
//! ([`whisper::BPeerConfig::workers`]), so backend execution rides worker
//! threads while the actor loops keep draining heartbeats, elections and
//! the next requests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use whisper::{
    BPeerConfig, GroupSpec, ProxyConfig, ScenarioWiring, ServiceBackend, StudentRegistry,
    WhisperMsg,
};
use whisper_election::BullyConfig;
use whisper_obs::NodeSnapshot;
use whisper_simnet::tcpnet::{TcpNet, TcpNetBuilder};
use whisper_simnet::{Actor, Context, NodeId, SimDuration};
use whisper_soap::Envelope;
use whisper_xml::Element;

use crate::cluster::{poll_snapshots_on, ClusterTuning, ScopeProbe, SnapshotStore, TcpCluster};

/// Tuning of the load plane's deployment.
#[derive(Debug, Clone, Copy)]
pub struct LoadTuning {
    /// Heartbeat/failure/election timing (same knobs as [`TcpCluster`]).
    pub cluster: ClusterTuning,
    /// Worker threads per b-peer (see [`BPeerConfig::workers`]).
    pub workers: usize,
    /// Proxy-side wait before a request attempt is declared failed.
    pub request_timeout: SimDuration,
}

impl Default for LoadTuning {
    fn default() -> Self {
        LoadTuning {
            cluster: ClusterTuning::default(),
            workers: 2,
            request_timeout: SimDuration::from_millis(2000),
        }
    }
}

/// What the driver actor and the pacing thread share. The driver only
/// counts a response when its id is still parked in `sent`: a `reset`
/// between measurement points empties the map, so stragglers from a past
/// (saturated) point cannot leak into the next one's numbers.
struct DriverShared {
    /// Request id → the instant latency is measured from (open loop: the
    /// intended send time; closed loop: the actual send time).
    sent: Mutex<HashMap<u64, Instant>>,
    /// Latencies of completed requests, in microseconds.
    latencies_us: Mutex<Vec<u64>>,
    /// Responses correlated to a live measurement (faults included).
    completed: AtomicUsize,
    /// `<soap:Fault>` responses among them.
    faults: AtomicUsize,
}

/// The workload end of the plane: a non-peer node the pacing thread
/// injects [`WhisperMsg::SoapRequest`]s from; it timestamps every
/// [`WhisperMsg::SoapResponse`] the proxy sends back.
struct SurgeDriver {
    shared: Arc<DriverShared>,
}

impl Actor<WhisperMsg> for SurgeDriver {
    fn on_message(&mut self, _ctx: &mut Context<'_, WhisperMsg>, _from: NodeId, msg: WhisperMsg) {
        let WhisperMsg::SoapResponse {
            request_id,
            envelope,
        } = msg
        else {
            return;
        };
        let now = Instant::now();
        let started = self
            .shared
            .sent
            .lock()
            .expect("driver store poisoned")
            .remove(&request_id);
        let Some(t0) = started else {
            return; // a straggler from a reset-away measurement point
        };
        self.shared
            .latencies_us
            .lock()
            .expect("driver store poisoned")
            .push(now.duration_since(t0).as_micros() as u64);
        let fault = Envelope::parse(&envelope)
            .map(|e| e.is_fault())
            .unwrap_or(true);
        if fault {
            self.shared.faults.fetch_add(1, Ordering::SeqCst);
        }
        self.shared.completed.fetch_add(1, Ordering::SeqCst);
    }
}

/// One measured operating point.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Requests injected.
    pub issued: u64,
    /// Responses received (faults included).
    pub completed: u64,
    /// `<soap:Fault>` responses among the completions.
    pub faults: u64,
    /// First injection to last counted completion (or drain cutoff).
    pub elapsed: Duration,
    /// Sorted per-request latencies in microseconds (open loop: measured
    /// from the intended send time).
    latencies_us: Vec<u64>,
}

impl LoadOutcome {
    /// Non-fault completions per second of the measured interval.
    pub fn achieved_rps(&self) -> f64 {
        let good = self.completed.saturating_sub(self.faults);
        good as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `p`-th latency percentile in microseconds (nearest-rank).
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil() as usize;
        Some(self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1])
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> Option<f64> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let sum: u64 = self.latencies_us.iter().sum();
        Some(sum as f64 / self.latencies_us.len() as f64)
    }
}

/// A booted load plane: `peers` b-peer replicas (load-sharing on, surge
/// workers enabled), the SWS-proxy, a scope probe for settling, and the
/// surge driver. Node layout: `0..peers` b-peers, proxy, probe, driver.
pub struct LoadCluster {
    net: TcpNet<WhisperMsg>,
    bpeer_nodes: Vec<NodeId>,
    proxy_node: NodeId,
    probe_node: NodeId,
    driver_node: NodeId,
    snapshots: SnapshotStore,
    shared: Arc<DriverShared>,
    next_scope_request: AtomicU64,
    next_request: AtomicU64,
}

impl LoadCluster {
    /// Boots the plane on TCP loopback.
    ///
    /// # Errors
    ///
    /// Socket errors while opening the loopback mesh.
    ///
    /// # Panics
    ///
    /// Panics when `peers` is zero.
    pub fn start(peers: usize, tuning: LoadTuning) -> std::io::Result<LoadCluster> {
        assert!(peers > 0, "need at least one b-peer");
        let service = whisper_wsdl::samples::student_management();
        let op = service
            .operation("StudentInformation")
            .expect("sample operation");
        let backends: Vec<Box<dyn ServiceBackend>> = (0..peers)
            .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
            .collect();
        let groups = vec![GroupSpec::from_operation("StudentInfoGroup", op, backends)];
        let wiring = ScenarioWiring {
            service,
            ontology: whisper_ontology::samples::university_ontology(),
            groups,
            use_rendezvous: false,
            firewall_bpeers: false,
            bpeer: BPeerConfig {
                heartbeat_period: tuning.cluster.heartbeat_period,
                failure_timeout: tuning.cluster.failure_timeout,
                bully: BullyConfig {
                    answer_timeout: tuning.cluster.election_timeout,
                    coordinator_timeout: tuning.cluster.election_timeout
                        + tuning.cluster.election_timeout,
                    cooldown: tuning.cluster.election_timeout,
                },
                load_share: true,
                workers: tuning.workers,
                ..BPeerConfig::default()
            },
            proxy: ProxyConfig {
                request_timeout: tuning.request_timeout,
                ..ProxyConfig::default()
            },
            clients: Vec::new(),
            ledger: None,
            recorder: None,
            pulse: None,
            flight: None,
        };

        let mut builder = TcpNetBuilder::new();
        let topo = wiring
            .wire(&mut builder)
            .expect("the load scenario is well-formed");
        let snapshots: SnapshotStore = Arc::new(Mutex::new(HashMap::new()));
        let probe_node = builder.add_node(ScopeProbe {
            store: Arc::clone(&snapshots),
        });
        let shared = Arc::new(DriverShared {
            sent: Mutex::new(HashMap::new()),
            latencies_us: Mutex::new(Vec::new()),
            completed: AtomicUsize::new(0),
            faults: AtomicUsize::new(0),
        });
        let driver_node = builder.add_node(SurgeDriver {
            shared: Arc::clone(&shared),
        });

        let net = builder.start()?;
        Ok(LoadCluster {
            net,
            bpeer_nodes: topo.group_nodes[0].clone(),
            proxy_node: topo.proxy,
            probe_node,
            driver_node,
            snapshots,
            shared,
            next_scope_request: AtomicU64::new(1),
            next_request: AtomicU64::new(1),
        })
    }

    /// The b-peer nodes, in peer-id order.
    pub fn bpeer_nodes(&self) -> &[NodeId] {
        &self.bpeer_nodes
    }

    /// The proxy node.
    pub fn proxy_node(&self) -> NodeId {
        self.proxy_node
    }

    /// Waits until every b-peer answers a scope poll and all agree on one
    /// coordinator; `true` on success, `false` when `timeout` ran out.
    /// Measuring before the boot election settles would charge Bully
    /// waits to the first requests.
    pub fn settle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let snaps = self.poll_snapshots(&self.bpeer_nodes, Duration::from_secs(2));
            if snaps.len() == self.bpeer_nodes.len()
                && TcpCluster::agreed_coordinator(&snaps).is_some()
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Scope poll (same in-band protocol as [`TcpCluster`]).
    pub fn poll_snapshots(
        &self,
        targets: &[NodeId],
        timeout: Duration,
    ) -> Vec<(NodeId, NodeSnapshot)> {
        poll_snapshots_on(
            &self.net,
            self.probe_node,
            &self.snapshots,
            &self.next_scope_request,
            targets,
            timeout,
        )
    }

    /// Crashes `node` (for the fail-during-saturation experiments).
    pub fn kill_node(&self, node: NodeId) {
        self.net.kill_node(node);
    }

    /// Restarts a killed node.
    pub fn restart_node(&self, node: NodeId) {
        self.net.restart_node(node);
    }

    /// Forgets every in-flight or finished measurement so the next run
    /// starts from zero; responses to forgotten requests are ignored.
    fn reset(&self) {
        self.shared
            .sent
            .lock()
            .expect("driver store poisoned")
            .clear();
        self.shared
            .latencies_us
            .lock()
            .expect("driver store poisoned")
            .clear();
        self.shared.completed.store(0, Ordering::SeqCst);
        self.shared.faults.store(0, Ordering::SeqCst);
    }

    /// Injects one request whose latency clock starts at `t0`.
    fn submit(&self, t0: Instant, envelope: &str) -> u64 {
        let request_id = self.next_request.fetch_add(1, Ordering::SeqCst);
        self.shared
            .sent
            .lock()
            .expect("driver store poisoned")
            .insert(request_id, t0);
        self.net.inject(
            self.driver_node,
            self.proxy_node,
            WhisperMsg::SoapRequest {
                request_id,
                envelope: envelope.to_string(),
            },
        );
        request_id
    }

    /// The paper's `StudentInformation` request, serialized once per run
    /// so the pacing thread does no XML work per request.
    fn request_envelope() -> String {
        let mut payload = Element::new("StudentInformation");
        payload.push_child(Element::with_text("StudentID", "u1000"));
        Envelope::request(payload).to_xml_string()
    }

    /// Waits until `total` responses are counted or `drain` passes.
    fn await_quiesce(&self, total: u64, drain: Duration) {
        let deadline = Instant::now() + drain;
        while (self.shared.completed.load(Ordering::SeqCst) as u64) < total
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Freezes the counters into a [`LoadOutcome`].
    fn outcome(&self, issued: u64, elapsed: Duration) -> LoadOutcome {
        let mut latencies_us = self
            .shared
            .latencies_us
            .lock()
            .expect("driver store poisoned")
            .clone();
        latencies_us.sort_unstable();
        LoadOutcome {
            issued,
            completed: self.shared.completed.load(Ordering::SeqCst) as u64,
            faults: self.shared.faults.load(Ordering::SeqCst) as u64,
            elapsed,
            latencies_us,
        }
    }

    /// Open-loop run: `total` requests offered at `rate` per second on a
    /// fixed schedule. Each latency is measured from the request's
    /// intended send time on that schedule — if the sender (or anything
    /// downstream) stalls, the stall shows up in the percentiles instead
    /// of silently thinning the load (coordinated-omission correction).
    /// After the last injection the run drains for up to `drain`.
    pub fn run_open(&self, rate: f64, total: u64, drain: Duration) -> LoadOutcome {
        assert!(rate > 0.0, "need a positive offered rate");
        self.reset();
        let envelope = Self::request_envelope();
        let interval = Duration::from_secs_f64(1.0 / rate);
        let start = Instant::now();
        for i in 0..total {
            let intended = start + interval.mul_f64(i as f64);
            // Sleep toward the slot, then spin the last stretch: loopback
            // schedules are microseconds apart and sleep granularity is not.
            loop {
                let now = Instant::now();
                if now >= intended {
                    break;
                }
                match (intended - now).checked_sub(Duration::from_micros(200)) {
                    Some(coarse) => std::thread::sleep(coarse),
                    None => std::hint::spin_loop(),
                }
            }
            self.submit(intended, &envelope);
        }
        self.await_quiesce(total, drain);
        self.outcome(total, start.elapsed())
    }

    /// Closed-loop run: keeps `window` requests in flight until `total`
    /// have been issued, replacing each completion immediately. Latency is
    /// measured from the actual send (a closed loop cannot fall behind its
    /// own schedule, so there is nothing to correct).
    pub fn run_closed(&self, window: usize, total: u64, drain: Duration) -> LoadOutcome {
        assert!(window > 0, "need at least one request in flight");
        self.reset();
        let envelope = Self::request_envelope();
        let start = Instant::now();
        let mut issued = 0u64;
        while issued < total {
            let completed = self.shared.completed.load(Ordering::SeqCst) as u64;
            if issued - completed < window as u64 {
                self.submit(Instant::now(), &envelope);
                issued += 1;
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        self.await_quiesce(total, drain);
        self.outcome(issued, start.elapsed())
    }

    /// Stops every thread and closes every socket.
    pub fn shutdown(self) {
        self.net.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_completes_every_request_and_measures_latency() {
        let cluster = LoadCluster::start(2, LoadTuning::default()).expect("loopback sockets");
        assert!(cluster.settle(Duration::from_secs(15)), "boot election");
        let out = cluster.run_closed(8, 400, Duration::from_secs(10));
        assert_eq!(out.issued, 400);
        assert_eq!(out.completed, 400, "{out:?}");
        assert_eq!(out.faults, 0, "{out:?}");
        assert!(out.achieved_rps() > 0.0);
        let p50 = out.percentile_us(50.0).expect("latencies recorded");
        let p99 = out.percentile_us(99.0).expect("latencies recorded");
        assert!(p50 <= p99);

        // A second run on the same cluster starts from a clean slate.
        let again = cluster.run_open(500.0, 100, Duration::from_secs(10));
        assert_eq!(again.completed, 100, "{again:?}");
        cluster.shutdown();
    }
}
