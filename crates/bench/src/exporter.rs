//! Prometheus-style exposition of the pulse plane: renders a
//! [`PulseStore`]'s windowed aggregate as the text format scrapers
//! expect, and serves it over a minimal HTTP/1.1 endpoint so `curl`
//! (or a real Prometheus) can watch a live cluster.
//!
//! The renderer is pure — it reads one consistent snapshot of the store
//! under its lock and formats counters, gauges, latency quantiles,
//! histogram buckets, and the pulse plane's own health (frames ingested,
//! store bytes vs. budget, evictions). The server is deliberately tiny:
//! a non-blocking accept loop on a dedicated thread, one response per
//! connection, no keep-alive — exposition is a diagnostic surface, not a
//! web framework.

use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use whisper::SharedPulseStore;
use whisper_obs::{PulseStore, SloEngine};

/// An [`SloEngine`] shared between the driving loop (which ticks it) and
/// the exposition endpoint (which renders it).
pub type SharedSlo = Arc<std::sync::Mutex<SloEngine>>;

/// Quantiles exposed per latency series.
const QUANTILES: [(f64, &str); 3] = [(50.0, "0.5"), (95.0, "0.95"), (99.0, "0.99")];

fn series_header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders the store's aggregate over the most recent `window` frames of
/// every node as Prometheus text-format exposition.
///
/// Metric names stay in a fixed `whisper_*` family; the open-ended
/// counter/gauge/histogram names from the cluster travel as label values,
/// so a new series never mints a new metric family at scrape time.
pub fn render_prometheus(store: &PulseStore, window: usize) -> String {
    let agg = store.aggregate(window);
    let mut out = String::new();

    // The headline: requests the proxy accepted over the window.
    series_header(
        &mut out,
        "whisper_request_total",
        "counter",
        "Requests accepted by the SWS-proxy over the retained window.",
    );
    let _ = writeln!(
        out,
        "whisper_request_total {}",
        agg.counter("proxy.requests")
    );
    series_header(
        &mut out,
        "whisper_response_total",
        "counter",
        "Responses the SWS-proxy forwarded back to clients.",
    );
    let _ = writeln!(
        out,
        "whisper_response_total {}",
        agg.counter("proxy.responses")
    );

    series_header(
        &mut out,
        "whisper_counter_total",
        "counter",
        "Per-name counter deltas summed over the window, all nodes.",
    );
    for (name, v) in &agg.counters {
        let _ = writeln!(out, "whisper_counter_total{{name=\"{name}\"}} {v}");
    }

    series_header(
        &mut out,
        "whisper_gauge",
        "gauge",
        "Latest per-name gauge levels.",
    );
    for (name, v) in &agg.gauges {
        let _ = writeln!(out, "whisper_gauge{{name=\"{name}\"}} {v}");
    }

    series_header(
        &mut out,
        "whisper_latency_us",
        "summary",
        "Latency quantiles (microseconds) of each merged histogram series.",
    );
    for (name, hist) in &agg.hists {
        for (p, label) in QUANTILES {
            if let Some(d) = hist.percentile(p) {
                let _ = writeln!(
                    out,
                    "whisper_latency_us{{series=\"{name}\",quantile=\"{label}\"}} {}",
                    d.as_micros()
                );
            }
        }
    }

    series_header(
        &mut out,
        "whisper_latency_us_bucket",
        "histogram",
        "Cumulative bucket counts (le = bucket upper bound, microseconds).",
    );
    for (name, hist) in &agg.hists {
        let mut cumulative = 0u64;
        for (_lo, hi, n) in hist.bucket_ranges() {
            cumulative += n;
            let _ = writeln!(
                out,
                "whisper_latency_us_bucket{{series=\"{name}\",le=\"{hi}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "whisper_latency_us_bucket{{series=\"{name}\",le=\"+Inf\"}} {}",
            hist.count()
        );
        let _ = writeln!(
            out,
            "whisper_latency_us_count{{series=\"{name}\"}} {}",
            hist.count()
        );
        let _ = writeln!(
            out,
            "whisper_latency_us_sum{{series=\"{name}\"}} {}",
            hist.sum_micros()
        );
    }

    // The pulse plane watching itself: ingest volume, memory vs. budget,
    // eviction pressure, and spans shed at the emitters.
    series_header(
        &mut out,
        "whisper_pulse_nodes",
        "gauge",
        "Nodes that have reported at least one pulse frame.",
    );
    let _ = writeln!(out, "whisper_pulse_nodes {}", store.nodes().len());
    series_header(
        &mut out,
        "whisper_pulse_frames_ingested_total",
        "counter",
        "Delta frames ingested by the collector since boot.",
    );
    let _ = writeln!(
        out,
        "whisper_pulse_frames_ingested_total {}",
        store.frames_ingested()
    );
    series_header(
        &mut out,
        "whisper_pulse_outliers_ingested_total",
        "counter",
        "Outlier traces ingested by the collector since boot.",
    );
    let _ = writeln!(
        out,
        "whisper_pulse_outliers_ingested_total {}",
        store.outliers_ingested()
    );
    series_header(
        &mut out,
        "whisper_pulse_evictions_total",
        "counter",
        "Frames/traces evicted by ring caps or the byte budget.",
    );
    let _ = writeln!(out, "whisper_pulse_evictions_total {}", store.evictions());
    series_header(
        &mut out,
        "whisper_pulse_store_bytes",
        "gauge",
        "Approximate store memory (encoded bytes held).",
    );
    let _ = writeln!(out, "whisper_pulse_store_bytes {}", store.approx_bytes());
    series_header(
        &mut out,
        "whisper_pulse_store_bytes_max",
        "gauge",
        "Configured store byte budget.",
    );
    let _ = writeln!(out, "whisper_pulse_store_bytes_max {}", store.max_bytes());
    series_header(
        &mut out,
        "whisper_pulse_spans_dropped_total",
        "counter",
        "Spans shed by emitter span stores over the window.",
    );
    let _ = writeln!(
        out,
        "whisper_pulse_spans_dropped_total {}",
        agg.spans_dropped
    );
    out
}

/// Renders the SLO engine's objectives as `whisper_slo_*` series:
/// targets, fast/slow burn rates, error budget left, alert state and the
/// total alerts fired since boot.
pub fn render_slo(slo: &SloEngine) -> String {
    let mut out = String::new();
    let statuses = slo.status();

    series_header(
        &mut out,
        "whisper_slo_target",
        "gauge",
        "Configured objective target (fraction of good time/requests).",
    );
    for s in &statuses {
        let _ = writeln!(
            out,
            "whisper_slo_target{{objective=\"{}\"}} {}",
            s.objective, s.target
        );
    }

    series_header(
        &mut out,
        "whisper_slo_burn_rate",
        "gauge",
        "Error-budget burn rate over each alert window (1.0 = spending exactly the budget).",
    );
    for s in &statuses {
        let _ = writeln!(
            out,
            "whisper_slo_burn_rate{{objective=\"{}\",window=\"fast\"}} {}",
            s.objective, s.fast_burn
        );
        let _ = writeln!(
            out,
            "whisper_slo_burn_rate{{objective=\"{}\",window=\"slow\"}} {}",
            s.objective, s.slow_burn
        );
    }

    series_header(
        &mut out,
        "whisper_slo_budget_remaining",
        "gauge",
        "Fraction of the error budget left over the budget window (negative = overspent).",
    );
    for s in &statuses {
        let _ = writeln!(
            out,
            "whisper_slo_budget_remaining{{objective=\"{}\"}} {}",
            s.objective, s.budget_remaining
        );
    }

    series_header(
        &mut out,
        "whisper_slo_firing",
        "gauge",
        "1 while the multi-window burn-rate alert for the objective is firing.",
    );
    for s in &statuses {
        let _ = writeln!(
            out,
            "whisper_slo_firing{{objective=\"{}\"}} {}",
            s.objective,
            u8::from(s.firing)
        );
    }

    series_header(
        &mut out,
        "whisper_slo_alerts_fired_total",
        "counter",
        "Burn-rate alerts fired since boot, all objectives.",
    );
    let _ = writeln!(out, "whisper_slo_alerts_fired_total {}", slo.fired_total());
    out
}

/// A running exposition endpoint; drop (or [`PulseExporter::stop`]) to
/// shut the listener down and join its thread.
pub struct PulseExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PulseExporter {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PulseExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves `store`'s exposition on `bind` (e.g. `127.0.0.1:9464`, or port
/// 0 to let the OS pick). Every request — any path — gets the current
/// rendering over the most recent `window` frames.
///
/// # Errors
///
/// Propagates binding errors.
pub fn serve(store: SharedPulseStore, bind: &str, window: usize) -> io::Result<PulseExporter> {
    serve_with_slo(store, None, bind, window)
}

/// Like [`serve`], but when `slo` is given every scrape also carries the
/// `whisper_slo_*` series from [`render_slo`].
///
/// # Errors
///
/// Propagates binding errors.
pub fn serve_with_slo(
    store: SharedPulseStore,
    slo: Option<SharedSlo>,
    bind: &str,
    window: usize,
) -> io::Result<PulseExporter> {
    let listener = TcpListener::bind(bind)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut req_buf = [0u8; 1024];
        while !stop_flag.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((mut conn, _)) => {
                    // Drain what the client sent (we answer any request)
                    // but never wait long for a slow writer.
                    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = conn.read(&mut req_buf);
                    let mut body = {
                        let guard = store.lock().unwrap_or_else(|e| e.into_inner());
                        render_prometheus(&guard, window)
                    };
                    if let Some(slo) = &slo {
                        let guard = slo.lock().unwrap_or_else(|e| e.into_inner());
                        body.push_str(&render_slo(&guard));
                    }
                    let response = format!(
                        "HTTP/1.1 200 OK\r\n\
                         Content-Type: text/plain; version=0.0.4\r\n\
                         Content-Length: {}\r\n\
                         Connection: close\r\n\r\n{body}",
                        body.len()
                    );
                    let _ = conn.write_all(response.as_bytes());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    });
    Ok(PulseExporter {
        addr,
        stop,
        handle: Some(handle),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;
    use whisper_obs::{MetricsDelta, OutlierTrace, PulseSpan};
    use whisper_simnet::{Histogram, SimDuration};

    fn seeded_store() -> PulseStore {
        let mut store = PulseStore::new(16, 8, 1 << 20);
        let mut hist = Histogram::new();
        for us in [300, 400, 500, 45_000] {
            hist.record(SimDuration::from_micros(us));
        }
        store.ingest(
            3,
            MetricsDelta {
                seq: 0,
                now_us: 1_000_000,
                interval_us: 100_000,
                counters: vec![("proxy.requests".into(), 7), ("proxy.responses".into(), 6)],
                gauges: vec![("proxy.pending".into(), 1)],
                hists: vec![("proxy.rtt".into(), hist)],
                spans_dropped: 2,
            },
            vec![OutlierTrace {
                request: 9,
                label: "StudentTranscript".into(),
                total_us: 45_000,
                spans: vec![PulseSpan {
                    id: 0,
                    parent: None,
                    name: "proxy.request".into(),
                    start_us: 0,
                    end_us: 45_000,
                }],
            }],
        );
        store
    }

    #[test]
    fn rendering_exposes_requests_quantiles_and_plane_health() {
        let store = seeded_store();
        let text = render_prometheus(&store, usize::MAX);
        assert!(text.contains("whisper_request_total 7"), "{text}");
        assert!(text.contains("whisper_response_total 6"), "{text}");
        assert!(
            text.contains("whisper_latency_us{series=\"proxy.rtt\",quantile=\"0.99\"} 45000"),
            "p99 is the exact max of four samples: {text}"
        );
        assert!(
            text.contains("whisper_latency_us_bucket{series=\"proxy.rtt\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("whisper_latency_us_count{series=\"proxy.rtt\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("whisper_gauge{name=\"proxy.pending\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("whisper_pulse_frames_ingested_total 1"),
            "{text}"
        );
        assert!(
            text.contains("whisper_pulse_outliers_ingested_total 1"),
            "{text}"
        );
        assert!(
            text.contains("whisper_pulse_spans_dropped_total 2"),
            "{text}"
        );
        // Cumulative bucket counts end at the total.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("whisper_latency_us_bucket{series=\"proxy.rtt\""))
            .expect("bucket lines");
        assert!(last_bucket.ends_with(" 4"), "{last_bucket}");
    }

    #[test]
    fn http_endpoint_serves_the_current_rendering() {
        let shared: SharedPulseStore = Arc::new(std::sync::Mutex::new(seeded_store()));
        let exporter = serve(Arc::clone(&shared), "127.0.0.1:0", usize::MAX).expect("bind");
        let mut conn = TcpStream::connect(exporter.addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain"), "{response}");
        assert!(response.contains("whisper_request_total 7"), "{response}");
        // A second scrape sees fresh state.
        shared
            .lock()
            .unwrap()
            .ingest(4, MetricsDelta::default(), Vec::new());
        let mut conn = TcpStream::connect(exporter.addr()).expect("reconnect");
        conn.write_all(b"GET / HTTP/1.0\r\n\r\n").expect("request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response");
        assert!(
            response.contains("whisper_pulse_frames_ingested_total 2"),
            "{response}"
        );
        exporter.stop();
    }

    #[test]
    fn slo_rendering_exposes_burn_budget_and_firing_state() {
        use whisper_obs::{SloConfig, SloEngine};
        use whisper_simnet::SimTime;

        let mut slo = SloEngine::new(SloConfig::default());
        slo.tick(SimTime::ZERO, SimDuration::ZERO, None);
        // Half a second of accrued downtime: the availability objective
        // burns well past both windows' thresholds and fires.
        slo.tick(
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_millis(500),
            Some(SimDuration::from_millis(10)),
        );
        let text = render_slo(&slo);
        assert!(
            text.contains("whisper_slo_target{objective=\"availability\"} 0.99"),
            "{text}"
        );
        assert!(
            text.contains("whisper_slo_burn_rate{objective=\"availability\",window=\"fast\"}"),
            "{text}"
        );
        assert!(
            text.contains("whisper_slo_burn_rate{objective=\"availability\",window=\"slow\"}"),
            "{text}"
        );
        assert!(
            text.contains("whisper_slo_budget_remaining{objective=\"availability\"}"),
            "{text}"
        );
        assert!(
            text.contains("whisper_slo_firing{objective=\"availability\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("whisper_slo_firing{objective=\"latency\"} 0"),
            "{text}"
        );
        assert!(text.contains("whisper_slo_alerts_fired_total 1"), "{text}");
    }

    #[test]
    fn http_endpoint_appends_slo_series_when_shared() {
        use whisper_obs::{SloConfig, SloEngine};
        use whisper_simnet::SimTime;

        let shared: SharedPulseStore = Arc::new(std::sync::Mutex::new(seeded_store()));
        let mut engine = SloEngine::new(SloConfig::default());
        engine.tick(SimTime::ZERO, SimDuration::ZERO, None);
        let slo: SharedSlo = Arc::new(std::sync::Mutex::new(engine));
        let exporter = serve_with_slo(Arc::clone(&shared), Some(slo), "127.0.0.1:0", usize::MAX)
            .expect("bind");
        let mut conn = TcpStream::connect(exporter.addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("whisper_request_total 7"), "{response}");
        assert!(
            response.contains("whisper_slo_target{objective=\"availability\"} 0.99"),
            "{response}"
        );
        exporter.stop();
    }
}
