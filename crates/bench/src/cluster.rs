//! A live Whisper cluster over real TCP loopback sockets, plus the
//! in-band introspection probe that `whisper-top`, the CI smoke test and
//! the integration tests share.
//!
//! The layout mirrors the simulator harness and the threadnet benches:
//! b-peer replicas on nodes `0..peers`, the SWS-proxy next, then one
//! *probe* node — an actor that is **not** a peer (it stays out of the
//! directory, like a client) and speaks only the scope protocol:
//! it injects [`WhisperMsg::ScopeRequest`]s and collects the
//! [`NodeSnapshot`]s that come back over the same sockets every other
//! message uses. Introspection rides the message plane; there is no side
//! channel.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use whisper::{
    pulse::shared_store, BPeerConfig, GroupSpec, ProxyConfig, PulseWiring, ScenarioWiring,
    ServiceBackend, SharedPulseStore, StudentRegistry, WhisperMsg,
};
use whisper_election::BullyConfig;
use whisper_obs::{AvailabilityLedger, NodeSnapshot, Recorder};
use whisper_simnet::tcpnet::{TcpNet, TcpNetBuilder};
use whisper_simnet::{Actor, Context, FaultPlan, MetricsSnapshot, NodeId, SimDuration};
use whisper_soap::Envelope;
use whisper_xml::Element;

/// Tuning of a live cluster. The defaults are aggressive (50 ms
/// heartbeats, 250 ms failure timeout, sub-second Bully waits) so smoke
/// tests observe failure detection and re-election in about a second of
/// wall clock instead of the paper's JXTA-era multi-second windows.
#[derive(Debug, Clone, Copy)]
pub struct ClusterTuning {
    /// Heartbeat beacon period.
    pub heartbeat_period: SimDuration,
    /// Silence after which a peer is suspected dead.
    pub failure_timeout: SimDuration,
    /// Bully answer/coordinator waits (scaled off this value).
    pub election_timeout: SimDuration,
}

impl Default for ClusterTuning {
    fn default() -> Self {
        ClusterTuning {
            heartbeat_period: SimDuration::from_millis(50),
            failure_timeout: SimDuration::from_millis(250),
            election_timeout: SimDuration::from_millis(200),
        }
    }
}

/// Tuning of the streaming-telemetry (pulse) plane of a live cluster,
/// plus the deliberately slow transcript replica it ships for
/// tail-capture experiments: every `interval` each node emits a
/// [`WhisperMsg::PulseReport`] delta frame to an in-cluster collector,
/// and the `StudentTranscript` operation is served by a dedicated
/// single-peer group whose backend takes `slow_processing` per request —
/// a reproducible outlier among sub-millisecond loopback traffic.
#[derive(Debug, Clone, Copy)]
pub struct PulseTuning {
    /// Pulse emission period (every node, heartbeat-aligned by its own
    /// timer wheel).
    pub interval: SimDuration,
    /// Delta frames retained per node in the collector's ring.
    pub per_node_windows: usize,
    /// Outlier traces retained by the collector.
    pub max_outliers: usize,
    /// Collector byte budget over frames + traces (oldest evicted first).
    pub max_bytes: usize,
    /// Service time of the transcript replica (the injected tail).
    pub slow_processing: SimDuration,
}

impl Default for PulseTuning {
    fn default() -> Self {
        PulseTuning {
            interval: SimDuration::from_millis(100),
            per_node_windows: 256,
            max_outliers: 128,
            max_bytes: 4 << 20,
            slow_processing: SimDuration::from_millis(40),
        }
    }
}

/// Snapshots collected by the probe, keyed by scope request id.
pub(crate) type SnapshotStore = Arc<Mutex<HashMap<u64, Vec<(NodeId, NodeSnapshot)>>>>;

/// SOAP responses collected by the driver, keyed by request id.
type ResponseStore = Arc<Mutex<HashMap<u64, String>>>;

/// The workload end of a pulse-enabled cluster: a non-peer node the
/// harness injects [`WhisperMsg::SoapRequest`]s from; it collects the
/// proxy's [`WhisperMsg::SoapResponse`]s so tests can await completion.
struct SoapDriver {
    responses: ResponseStore,
}

impl Actor<WhisperMsg> for SoapDriver {
    fn on_message(&mut self, _ctx: &mut Context<'_, WhisperMsg>, _from: NodeId, msg: WhisperMsg) {
        if let WhisperMsg::SoapResponse {
            request_id,
            envelope,
        } = msg
        {
            self.responses
                .lock()
                .expect("driver store poisoned")
                .insert(request_id, envelope);
        }
    }
}

/// The telemetry side of a pulse-enabled cluster.
struct PulsePlane {
    store: SharedPulseStore,
    collector_node: NodeId,
    recorder: Recorder,
    transcript_node: NodeId,
    driver_node: NodeId,
    responses: ResponseStore,
    next_soap_request: AtomicU64,
}

/// The measuring end of the scope protocol: collects every
/// [`WhisperMsg::ScopeResponse`] it receives, keyed by request id.
pub(crate) struct ScopeProbe {
    pub(crate) store: SnapshotStore,
}

impl Actor<WhisperMsg> for ScopeProbe {
    fn on_message(&mut self, _ctx: &mut Context<'_, WhisperMsg>, from: NodeId, msg: WhisperMsg) {
        if let WhisperMsg::ScopeResponse {
            request_id,
            snapshot,
        } = msg
        {
            self.store
                .lock()
                .expect("probe store poisoned")
                .entry(request_id)
                .or_default()
                .push((from, *snapshot));
        }
    }
}

/// A running Whisper deployment on TCP loopback: one b-peer group, its
/// SWS-proxy, and a scope probe, all exchanging length-prefixed encoded
/// frames over real sockets.
pub struct TcpCluster {
    net: TcpNet<WhisperMsg>,
    bpeer_nodes: Vec<NodeId>,
    proxy_node: NodeId,
    probe_node: NodeId,
    store: SnapshotStore,
    ledger: AvailabilityLedger,
    next_scope_request: AtomicU64,
    pulse: Option<PulsePlane>,
}

impl TcpCluster {
    /// Boots `peers` b-peer replicas plus the proxy and the probe, wired
    /// exactly like the simulator harness (peer ids are node index + 1),
    /// with a shared [`AvailabilityLedger`] installed into every b-peer.
    ///
    /// # Errors
    ///
    /// Socket errors while opening the loopback mesh.
    ///
    /// # Panics
    ///
    /// Panics when `peers` is zero.
    pub fn start(peers: usize, tuning: ClusterTuning) -> std::io::Result<TcpCluster> {
        TcpCluster::boot(peers, tuning, None)
    }

    /// Like [`TcpCluster::start`], with the streaming-telemetry plane on:
    /// a second single-peer group serving the (deliberately slow)
    /// `StudentTranscript` operation, a pulse collector node every actor
    /// reports to, a SOAP driver node for workload injection, and a shared
    /// [`Recorder`] on the proxy so captured outlier traces carry real
    /// span trees.
    ///
    /// # Errors
    ///
    /// Socket errors while opening the loopback mesh.
    ///
    /// # Panics
    ///
    /// Panics when `peers` is zero.
    pub fn start_pulse(
        peers: usize,
        tuning: ClusterTuning,
        pulse: PulseTuning,
    ) -> std::io::Result<TcpCluster> {
        TcpCluster::boot(peers, tuning, Some(pulse))
    }

    /// Node layout (from the shared deployment layer, see
    /// [`whisper::deploy`]): `0..peers` fast b-peers, then (pulse only)
    /// the transcript b-peer, then the proxy, (pulse only) the collector,
    /// then the scope probe and (pulse only) the SOAP driver. Peer ids
    /// are node index + 1 throughout, like the simulator harness.
    ///
    /// The scenario itself — groups, proxy, ledger, recorder, pulse plane
    /// — is wired by [`ScenarioWiring`], the same pass [`whisper::WhisperNet`]
    /// boots the simulator with; this function only appends the
    /// cluster-specific measuring actors (probe, driver) and starts the
    /// sockets.
    fn boot(
        peers: usize,
        tuning: ClusterTuning,
        pulse: Option<PulseTuning>,
    ) -> std::io::Result<TcpCluster> {
        assert!(peers > 0, "need at least one b-peer");
        let service = whisper_wsdl::samples::student_management();
        let op = service
            .operation("StudentInformation")
            .expect("sample operation");
        let backends: Vec<Box<dyn ServiceBackend>> = (0..peers)
            .map(|_| Box::new(StudentRegistry::operational_db().with_sample_data()) as _)
            .collect();
        let mut groups = vec![GroupSpec::from_operation("StudentInfoGroup", op, backends)];
        if let Some(p) = pulse {
            // The transcript group: one replica, one operation, a fixed
            // multi-millisecond service time. Every request it serves is a
            // reproducible tail among sub-millisecond loopback traffic.
            let transcript_op = service
                .operation("StudentTranscript")
                .expect("sample operation");
            let mut spec = GroupSpec::from_operation(
                "TranscriptGroup",
                transcript_op,
                vec![Box::new(
                    StudentRegistry::operational_db().with_sample_data(),
                )],
            );
            spec.processing_time = Some(p.slow_processing);
            groups.push(spec);
        }

        let ledger = AvailabilityLedger::default();
        let recorder = pulse.map(|_| Recorder::new());
        let pulse_store =
            pulse.map(|p| shared_store(p.per_node_windows, p.max_outliers, p.max_bytes));
        let wiring = ScenarioWiring {
            service,
            ontology: whisper_ontology::samples::university_ontology(),
            groups,
            use_rendezvous: false,
            firewall_bpeers: false,
            bpeer: BPeerConfig {
                heartbeat_period: tuning.heartbeat_period,
                failure_timeout: tuning.failure_timeout,
                bully: BullyConfig {
                    answer_timeout: tuning.election_timeout,
                    coordinator_timeout: tuning.election_timeout + tuning.election_timeout,
                    cooldown: tuning.election_timeout,
                },
                ..BPeerConfig::default()
            },
            proxy: ProxyConfig::default(),
            clients: Vec::new(),
            ledger: Some(ledger.clone()),
            recorder: recorder.clone(),
            pulse: pulse.map(|p| PulseWiring {
                interval: p.interval,
                store: pulse_store.clone().expect("store exists in pulse mode"),
            }),
            flight: None,
        };

        let mut builder = TcpNetBuilder::new();
        let topo = wiring
            .wire(&mut builder)
            .expect("the cluster scenario is well-formed");

        // The measuring actors ride the same sockets but are no part of
        // the scenario: the probe (and, pulse only, the SOAP driver) are
        // appended after the deployment-layer nodes, like clients.
        let store: SnapshotStore = Arc::new(Mutex::new(HashMap::new()));
        let probe_node = builder.add_node(ScopeProbe {
            store: Arc::clone(&store),
        });
        let mut plane = None;
        if pulse.is_some() {
            let responses: ResponseStore = Arc::new(Mutex::new(HashMap::new()));
            let driver_node = builder.add_node(SoapDriver {
                responses: Arc::clone(&responses),
            });
            plane = Some(PulsePlane {
                store: pulse_store.expect("store exists in pulse mode"),
                collector_node: topo.collector.expect("pulse wiring places a collector"),
                recorder: recorder.expect("recorder exists in pulse mode"),
                transcript_node: topo.group_nodes[1][0],
                driver_node,
                responses,
                next_soap_request: AtomicU64::new(1),
            });
        }

        let net = builder.start()?;
        Ok(TcpCluster {
            net,
            bpeer_nodes: topo.group_nodes[0].clone(),
            proxy_node: topo.proxy,
            probe_node,
            store,
            ledger,
            next_scope_request: AtomicU64::new(1),
            pulse: plane,
        })
    }

    /// The b-peer nodes, in peer-id order.
    pub fn bpeer_nodes(&self) -> &[NodeId] {
        &self.bpeer_nodes
    }

    fn plane(&self) -> &PulsePlane {
        self.pulse
            .as_ref()
            .expect("pulse plane not enabled; boot with TcpCluster::start_pulse")
    }

    /// The collector's live store (pulse mode only).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn pulse_store(&self) -> &SharedPulseStore {
        &self.plane().store
    }

    /// The proxy's shared recorder (pulse mode only).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn recorder(&self) -> &Recorder {
        &self.plane().recorder
    }

    /// The node hosting the slow transcript replica (pulse mode only).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn transcript_node(&self) -> NodeId {
        self.plane().transcript_node
    }

    /// The pulse collector's node (pulse mode only).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn collector_node(&self) -> NodeId {
        self.plane().collector_node
    }

    /// Injects `payload` as a SOAP request from the driver node and
    /// returns the request id; await the response with
    /// [`TcpCluster::await_responses`] (pulse mode only).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn submit_soap(&self, payload: Element) -> u64 {
        let plane = self.plane();
        let request_id = plane.next_soap_request.fetch_add(1, Ordering::SeqCst);
        let envelope = Envelope::request(payload).to_xml_string();
        self.net.inject(
            plane.driver_node,
            self.proxy_node,
            WhisperMsg::SoapRequest {
                request_id,
                envelope,
            },
        );
        request_id
    }

    /// Submits the paper's `StudentInformation` request (fast group).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn submit_student_info(&self, student_id: &str) -> u64 {
        let mut payload = Element::new("StudentInformation");
        payload.push_child(Element::with_text("StudentID", student_id));
        self.submit_soap(payload)
    }

    /// Submits a `StudentTranscript` request — served by the deliberately
    /// slow transcript replica, i.e. an injected tail-latency outlier.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn submit_transcript(&self, student_id: &str) -> u64 {
        let mut payload = Element::new("StudentTranscript");
        payload.push_child(Element::with_text("StudentID", student_id));
        self.submit_soap(payload)
    }

    /// Waits until at least `n` SOAP responses have arrived at the driver
    /// (or `timeout` passes); returns how many are in (pulse mode only).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn await_responses(&self, n: usize, timeout: Duration) -> usize {
        let plane = self.plane();
        let deadline = Instant::now() + timeout;
        loop {
            let got = plane.responses.lock().expect("driver store poisoned").len();
            if got >= n || Instant::now() >= deadline {
                return got;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// The response envelope for `request_id`, when it has arrived
    /// (pulse mode only).
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was booted with [`TcpCluster::start_pulse`].
    pub fn response(&self, request_id: u64) -> Option<String> {
        self.plane()
            .responses
            .lock()
            .expect("driver store poisoned")
            .get(&request_id)
            .cloned()
    }

    /// The proxy node.
    pub fn proxy_node(&self) -> NodeId {
        self.proxy_node
    }

    /// The shared availability ledger the b-peers feed.
    pub fn ledger(&self) -> &AvailabilityLedger {
        &self.ledger
    }

    /// The peer id living on `node` (node index + 1 by construction).
    pub fn peer_of(&self, node: NodeId) -> u64 {
        node.index() as u64 + 1
    }

    /// Sends a [`WhisperMsg::ScopeRequest`] to every target and waits up
    /// to `timeout` for the responses, returning whatever arrived (one
    /// `(node, snapshot)` pair per answering target). Targets whose node
    /// was killed simply never answer; the caller sees them missing.
    pub fn poll_snapshots(
        &self,
        targets: &[NodeId],
        timeout: Duration,
    ) -> Vec<(NodeId, NodeSnapshot)> {
        poll_snapshots_on(
            &self.net,
            self.probe_node,
            &self.store,
            &self.next_scope_request,
            targets,
            timeout,
        )
    }

    /// Convenience: snapshots of every node (b-peers + proxy).
    pub fn poll_all(&self, timeout: Duration) -> Vec<(NodeId, NodeSnapshot)> {
        let mut targets = self.bpeer_nodes.clone();
        targets.push(self.proxy_node);
        self.poll_snapshots(&targets, timeout)
    }

    /// The coordinator the live b-peers agree on, from a snapshot poll:
    /// `Some(peer)` only when every answering b-peer names the same one.
    pub fn agreed_coordinator(snapshots: &[(NodeId, NodeSnapshot)]) -> Option<u64> {
        let mut coords = snapshots
            .iter()
            .filter_map(|(_, s)| s.election.as_ref())
            .map(|e| e.coordinator);
        let first = coords.next()??;
        coords.all(|c| c == Some(first)).then_some(first)
    }

    /// Kills `node` as a crash (see
    /// [`TcpNet::kill_node`](whisper_simnet::tcpnet::TcpNet::kill_node)).
    pub fn kill_node(&self, node: NodeId) {
        self.net.kill_node(node);
    }

    /// Restarts a killed node: its sockets are re-dialed and its
    /// `on_restart` hook fires (see
    /// [`TcpNet::restart_node`](whisper_simnet::tcpnet::TcpNet::restart_node)).
    pub fn restart_node(&self, node: NodeId) {
        self.net.restart_node(node);
    }

    /// Blocks all traffic between `a` and `b`, both directions.
    pub fn block_link(&self, a: NodeId, b: NodeId) {
        self.net.block_link(a, b);
    }

    /// Unblocks traffic between `a` and `b`.
    pub fn unblock_link(&self, a: NodeId, b: NodeId) {
        self.net.unblock_link(a, b);
    }

    /// Replays `plan` against the live cluster in wall-clock time (action
    /// offsets are measured from cluster start).
    pub fn execute_plan(&mut self, plan: &FaultPlan) {
        self.net.execute_plan(plan);
    }

    /// Transport metrics so far.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.net.metrics_snapshot()
    }

    /// Stops every thread and closes every socket.
    pub fn shutdown(self) {
        self.net.shutdown();
    }
}

/// The scope poll every TCP harness shares ([`TcpCluster`] and the surge
/// load plane): sends one [`WhisperMsg::ScopeRequest`] to every target
/// from `probe` and waits up to `timeout` for the snapshots to land in
/// `store`, returning whatever arrived sorted by node index.
pub(crate) fn poll_snapshots_on(
    net: &TcpNet<WhisperMsg>,
    probe: NodeId,
    store: &SnapshotStore,
    next_request: &AtomicU64,
    targets: &[NodeId],
    timeout: Duration,
) -> Vec<(NodeId, NodeSnapshot)> {
    let request_id = next_request.fetch_add(1, Ordering::SeqCst);
    for &t in targets {
        net.inject(probe, t, WhisperMsg::ScopeRequest { request_id });
    }
    let deadline = Instant::now() + timeout;
    loop {
        {
            let store = store.lock().expect("probe store poisoned");
            if store.get(&request_id).map(Vec::len).unwrap_or(0) >= targets.len() {
                break;
            }
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut got = store
        .lock()
        .expect("probe store poisoned")
        .remove(&request_id)
        .unwrap_or_default();
    got.sort_by_key(|(n, _)| n.index());
    got
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Polls until `cond` holds or the deadline passes; asserts it held.
    fn wait_for(what: &str, deadline: Duration, cond: impl Fn() -> bool) {
        let end = Instant::now() + deadline;
        while !cond() {
            assert!(Instant::now() < end, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn cluster_boots_elects_and_answers_scope_requests() {
        let cluster = TcpCluster::start(3, ClusterTuning::default()).expect("loopback sockets");
        // Wait until the cluster agrees on a coordinator...
        wait_for("a coordinator", Duration::from_secs(15), || {
            let snaps = cluster.poll_snapshots(cluster.bpeer_nodes(), Duration::from_secs(2));
            snaps.len() == 3 && TcpCluster::agreed_coordinator(&snaps).is_some()
        });
        // ...let a few beacon periods elapse so heartbeats flow...
        std::thread::sleep(Duration::from_millis(300));
        // ...then check the snapshot contents in detail.
        let snaps = cluster.poll_all(Duration::from_secs(5));
        assert_eq!(snaps.len(), 4, "all four nodes answer");
        let coord = TcpCluster::agreed_coordinator(&snaps).expect("agreed");
        assert_eq!(coord, 3, "the Bully winner is the highest peer id");
        for (node, snap) in &snaps {
            assert_eq!(snap.peer, cluster.peer_of(*node));
            // everyone saw the probe's request arrive over the socket
            assert!(
                snap.received.sent_of_kind("scope-request") > 0,
                "{node:?}: {snap:?}"
            );
        }
        // b-peers have been chattering since boot (heartbeats, election)
        for (node, snap) in snaps.iter().take(3) {
            assert!(snap.sent.messages_sent() > 0, "{node:?}: {snap:?}");
        }
        let bpeer_snap = &snaps[0].1;
        assert_eq!(bpeer_snap.role.label(), "b-peer");
        assert!(
            bpeer_snap.sent.sent_of_kind("heartbeat") > 0,
            "b-peers beacon: {bpeer_snap:?}"
        );
        assert_eq!(
            bpeer_snap.heartbeat_ages_us.len(),
            2,
            "a member monitors its two siblings"
        );
        let proxy_snap = &snaps.last().expect("proxy answered").1;
        assert_eq!(proxy_snap.role.label(), "proxy");
        assert!(proxy_snap.election.is_none(), "proxies do not elect");
        cluster.shutdown();
    }
}
