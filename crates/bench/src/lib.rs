//! # whisper-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (section 5), plus the ablations its design implies.
//! Each experiment is a library module (so integration tests can pin its
//! behaviour) with a thin binary in `src/bin` that prints the table the
//! paper reports and saves a CSV under `target/experiments/`.
//!
//! | Binary | Paper artifact | Module |
//! |--------|----------------|--------|
//! | `fig4_messages` | Figure 4: messages vs. number of b-peers | [`experiments::fig4`] |
//! | `rtt_analysis` | §5 RTT: ≈0.5 ms average, multi-second worst case | [`experiments::rtt`] |
//! | `load_scalability` | §5 throughput/latency under system load | [`experiments::load`] |
//! | `election_time` | implied: election cost vs. group size | [`experiments::election`] |
//! | `availability` | §1/§4 claim: availability from redundancy | [`experiments::availability`] |
//! | `discovery_quality` | §4.3 claim: semantic vs. syntactic discovery | [`experiments::discovery_quality`] |
//! | `qos_selection` | §2.4 extension: QoS-aware peer selection | [`experiments::qos`] |
//! | `discovery_cost` | ablation: flooding vs. rendezvous discovery | [`experiments::discovery_cost`] |
//! | `cluster_health` | the availability ledger tracking coordinator kills | [`experiments::cluster_health`] |
//! | `whisper-loadgen` | E16: real-TCP saturation matrix (whisper-surge) | [`experiments::load_matrix`] |
//! | `whisper-chaos` | E17: gray-failure soak + fail-slow rebind race | [`experiments::chaos_soak`] |
//!
//! Run everything with `cargo run -p whisper-bench --bin all_experiments`.
//! `all_experiments`, `cluster_health`, `whisper-loadgen` and the
//! Criterion-style benches additionally merge headline statistics into
//! the machine-readable trajectory `target/experiments/BENCH_PR10.json`
//! ([`BenchSummary`]).
//!
//! Beyond the experiments, [`TcpCluster`] + the `whisper-top` binary give
//! a live TCP-loopback deployment with in-band scope introspection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod experiments;
pub mod exporter;
pub mod loadplane;
pub mod obs;
pub mod summary;
mod table;

pub use cluster::{ClusterTuning, PulseTuning, TcpCluster};
pub use exporter::{render_prometheus, PulseExporter};
pub use loadplane::{LoadCluster, LoadOutcome, LoadTuning};
pub use summary::{time_mean_us, BenchSummary};
pub use table::Table;
