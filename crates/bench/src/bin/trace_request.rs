//! Prints one Whisper request as a per-request span tree (a flame view in
//! text) — first a cold request, whose critical path is
//! `proxy.discover → proxy.members → proxy.bind → proxy.invoke →
//! backend.execute`, then a warm one riding the cached binding — followed
//! by a per-phase time summary and the network's message counters.

use whisper::WhisperNet;
use whisper_obs::Recorder;
use whisper_simnet::{NodeId, SimDuration};

fn request_of(rec: &Recorder, client: NodeId, id: u64) -> Option<whisper_obs::RequestId> {
    let label = format!("client{} #{id}", client.index());
    rec.requests()
        .into_iter()
        .find(|r| r.label == label)
        .map(|r| r.id)
}

fn main() {
    let mut net = WhisperNet::student_scenario(3, 42);
    let rec = net.enable_obs();
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];

    let cold = net.submit_student_request(client, "u1004");
    net.run_for(SimDuration::from_secs(1));
    let warm = net.submit_student_request(client, "u1007");
    net.run_for(SimDuration::from_secs(1));

    println!("--- cold request (discovery + bind + execute) ---");
    match request_of(&rec, client, cold) {
        Some(req) => print!("{}", rec.render_request(req)),
        None => println!("  (not traced)"),
    }
    println!();
    println!("--- warm request (cached binding) ---");
    match request_of(&rec, client, warm) {
        Some(req) => print!("{}", rec.render_request(req)),
        None => println!("  (not traced)"),
    }

    println!();
    println!("--- where the time went (all spans) ---");
    println!(
        "{:<22} {:>6} {:>14} {:>14}",
        "phase", "count", "total", "mean"
    );
    for (name, count, total, mean) in rec.phase_summary() {
        println!(
            "{name:<22} {count:>6} {:>14} {:>14}",
            total.to_string(),
            mean.to_string()
        );
    }

    println!();
    println!("--- network counters ---");
    let export = rec.export();
    for (name, value) in &export.counters {
        if name.starts_with("net.") {
            println!("{name:<28} {value:>8}");
        }
    }
}
