//! Prints the message-by-message trace of one Whisper request — first a
//! cold request (semantic discovery + member discovery + binding), then a
//! warm one (the 4-message steady-state path).

use whisper::WhisperNet;
use whisper_simnet::{NodeId, SimDuration, TraceOutcome};

fn role(net: &WhisperNet, node: NodeId) -> String {
    if node == net.proxy_node() {
        return "proxy".to_string();
    }
    if net.client_ids().contains(&node) {
        return "client".to_string();
    }
    if net.rendezvous_node() == Some(node) {
        return "rendezvous".to_string();
    }
    match net.directory().peer_of(node) {
        Some(p) => format!("b-peer {}", p.value()),
        None => node.to_string(),
    }
}

fn dump(net: &WhisperNet, title: &str) {
    println!("--- {title} ---");
    let base = net.trace().first().map(|e| e.sent_at).unwrap_or_default();
    for e in net.trace() {
        let fate = match e.outcome {
            TraceOutcome::Delivered => String::new(),
            other => format!("  [{other:?}]"),
        };
        println!(
            "{:>9.3} ms  {:>10} -> {:<10}  {:<20} {:>5} B{fate}",
            (e.sent_at.as_micros() - base.as_micros()) as f64 / 1000.0,
            role(net, e.from),
            role(net, e.to),
            e.kind,
            e.bytes,
        );
    }
    println!();
}

fn main() {
    let mut net = WhisperNet::student_scenario(3, 42);
    net.run_for(SimDuration::from_secs(3));
    let client = net.client_ids()[0];

    net.enable_trace();
    net.submit_student_request(client, "u1004");
    net.run_for(SimDuration::from_secs(1));
    // hide steady heartbeats for readability? keep them: they ARE the traffic
    dump(&net, "cold request (discovery + bind + execute)");

    net.sim().clear_trace();
    net.submit_student_request(client, "u1007");
    net.run_for(SimDuration::from_secs(1));
    dump(&net, "warm request (bound: 4 messages + heartbeats)");
}
