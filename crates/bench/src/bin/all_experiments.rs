//! Runs every experiment back to back (the full evaluation section).

use whisper_bench::experiments::*;

fn main() {
    println!("=== E1 / Figure 4 ===\n");
    let rows = fig4::run_sweep(
        &[2, 3, 4, 5, 6, 8, 9, 12, 16, 20, 24],
        fig4::Fig4Params::default(),
    );
    fig4::table(&rows).print();
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.bpeers as f64, r.steady_msgs as f64))
        .collect();
    println!("linearity R² = {:.5}\n", fig4::linear_r2(&pts));
    let _ = fig4::table(&rows).save_csv();

    println!("=== E2 / RTT analysis ===\n");
    let t = rtt::table(500, 300, 5, 11);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E3 / load scalability ===\n");
    let rows = load::run_sweep(
        &[1, 3, 5, 9],
        &[50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0],
        load::LoadParams::default(),
    );
    let t = load::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E4 / election time ===\n");
    let rows = election::run_sweep(&[2, 3, 4, 6, 8, 12, 16, 24], 7);
    let t = election::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E5 / availability ===\n");
    let rows = availability::run_sweep(
        &[1, 2, 3, 5, 7],
        availability::AvailabilityParams::default(),
    );
    let t = availability::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E5b / dynamic growth ===\n");
    let rows = availability::run_growth(availability::AvailabilityParams::default());
    let t = availability::growth_table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E6 / discovery quality ===\n");
    let (syn, sem) = discovery_quality::run(discovery_quality::CorpusParams::default());
    let t = discovery_quality::table(syn, sem);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E7 / QoS selection ===\n");
    let rows = qos::run_all_seeds(qos::QosParams::default(), &[37, 38, 39, 40, 41]);
    let t = qos::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E10 / adaptive QoS vs lying advertiser ===\n");
    let t = qos::lying_advertiser_table(qos::QosParams::default());
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E9 / failover sensitivity ===\n");
    let rows = failover_sensitivity::run_sweep(3, 19);
    let t = failover_sensitivity::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E11 / relay overhead ===\n");
    let (direct, relayed) = relay_overhead::run_both(29);
    let t = relay_overhead::table(&direct, &relayed);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E8 / discovery cost ===\n");
    let rows = discovery_cost::run_sweep(&[1, 2, 4, 8, 12], 2, 7);
    let t = discovery_cost::table(&rows);
    t.print();
    let _ = t.save_csv();
}
