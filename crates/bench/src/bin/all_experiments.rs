//! Runs every experiment back to back (the full evaluation section) and
//! writes the machine-readable trajectory (`BENCH_PR10.json`) next to the
//! CSVs.

use whisper_bench::experiments::*;
use whisper_bench::BenchSummary;

fn main() {
    let mut summary = BenchSummary::new();

    println!("=== E1 / Figure 4 ===\n");
    let rows = fig4::run_sweep(
        &[2, 3, 4, 5, 6, 8, 9, 12, 16, 20, 24],
        fig4::Fig4Params::default(),
    );
    fig4::table(&rows).print();
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.bpeers as f64, r.steady_msgs as f64))
        .collect();
    println!("linearity R² = {:.5}\n", fig4::linear_r2(&pts));
    summary.record("fig4", "linearity_r2", fig4::linear_r2(&pts));
    summary.record("fig4", "points", pts.len() as f64);
    let _ = fig4::table(&rows).save_csv();

    println!("=== E2 / RTT analysis ===\n");
    let t = rtt::table(500, 300, 5, 11);
    t.print();
    let _ = t.save_csv();
    let service = rtt::service_rtt(300, 5, 11);
    if let Some(mean) = service.mean() {
        summary.record("rtt", "service_mean_ms", mean.as_secs_f64() * 1e3);
    }
    let failover = rtt::failover_breakdown(5, 11);
    summary.record(
        "rtt",
        "failover_total_ms",
        failover.total.as_secs_f64() * 1e3,
    );
    println!();

    println!("=== E3 / load scalability ===\n");
    let rows = load::run_sweep(
        &[1, 3, 5, 9],
        &[50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0],
        load::LoadParams::default(),
    );
    let t = load::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E4 / election time ===\n");
    let rows = election::run_sweep(&[2, 3, 4, 6, 8, 12, 16, 24], 7);
    let t = election::table(&rows);
    t.print();
    let _ = t.save_csv();
    if let Some(worst) = rows.iter().map(|r| r.time).max() {
        summary.record("election", "worst_ms", worst.as_secs_f64() * 1e3);
    }
    println!();

    println!("=== E5 / availability ===\n");
    let rows = availability::run_sweep(
        &[1, 2, 3, 5, 7],
        availability::AvailabilityParams::default(),
    );
    let t = availability::table(&rows);
    t.print();
    let _ = t.save_csv();
    for row in &rows {
        summary.record(
            "availability",
            &format!("replicas_{}", row.replicas),
            row.availability,
        );
    }
    println!();

    println!("=== E5b / dynamic growth ===\n");
    let rows = availability::run_growth(availability::AvailabilityParams::default());
    let t = availability::growth_table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E6 / discovery quality ===\n");
    let (syn, sem) = discovery_quality::run(discovery_quality::CorpusParams::default());
    let t = discovery_quality::table(syn, sem);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E7 / QoS selection ===\n");
    let rows = qos::run_all_seeds(qos::QosParams::default(), &[37, 38, 39, 40, 41]);
    let t = qos::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E10 / adaptive QoS vs lying advertiser ===\n");
    let t = qos::lying_advertiser_table(qos::QosParams::default());
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E9 / failover sensitivity ===\n");
    let rows = failover_sensitivity::run_sweep(3, 19);
    let t = failover_sensitivity::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E11 / relay overhead ===\n");
    let (direct, relayed) = relay_overhead::run_both(29);
    let t = relay_overhead::table(&direct, &relayed);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E8 / discovery cost ===\n");
    let rows = discovery_cost::run_sweep(&[1, 2, 4, 8, 12], 2, 7);
    let t = discovery_cost::table(&rows);
    t.print();
    let _ = t.save_csv();
    println!();

    println!("=== E12 / cluster health ledger ===\n");
    let report = cluster_health::run(cluster_health::ClusterHealthParams::default());
    cluster_health::table(&report).print();
    println!();
    cluster_health::summary_table(&report).print();
    let _ = cluster_health::table(&report).save_csv();
    let _ = cluster_health::summary_table(&report).save_csv();
    for (stat, value) in cluster_health::summary_stats(&report) {
        summary.record("cluster_health", &stat, value);
    }

    println!("=== E14 / substrate matrix ===\n");
    let rows = substrate_matrix::run_matrix(&substrate_matrix::MatrixTuning::default());
    let t = substrate_matrix::table(&rows);
    t.print();
    let _ = t.save_csv();
    substrate_matrix::record(&mut summary, &rows);
    println!();

    println!("=== E15 / postmortem matrix ===\n");
    let rows = postmortem::run_matrix(&substrate_matrix::MatrixTuning::default());
    let t = postmortem::table(&rows);
    t.print();
    let _ = t.save_csv();
    postmortem::record(&mut summary, &rows);
    println!();

    match summary.save_merged() {
        Ok(p) => println!("\nbench summary: {}", p.display()),
        Err(e) => eprintln!("\nbench summary not written: {e}"),
    }
}
