//! Cluster health: the availability ledger watching injected coordinator
//! kills, plus the machine-readable bench trajectory (`BENCH_PR10.json`).
//!
//! Runs the deterministic simnet deployment with the
//! [`whisper_obs::AvailabilityLedger`] attached, kills the coordinator
//! several times, and prints what the ledger recorded about each outage:
//! detection latency, repair time (the online-measured failover window),
//! and the recovered availability. The summary statistics are merged into
//! `target/experiments/BENCH_PR10.json` and a copy of the trajectory file
//! is written at the repository root.

use whisper_bench::experiments::cluster_health::{self, ClusterHealthParams};
use whisper_bench::BenchSummary;

fn main() {
    let params = ClusterHealthParams::default();
    println!(
        "Cluster health ledger: {} b-peers, {} coordinator kills, settle {:.0} s\n",
        params.n_bpeers,
        params.kills,
        params.settle.as_secs_f64()
    );
    let report = cluster_health::run(params);

    let t = cluster_health::table(&report);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
    println!();

    let t = cluster_health::summary_table(&report);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    let mut summary = BenchSummary::new();
    for (stat, value) in cluster_health::summary_stats(&report) {
        summary.record("cluster_health", &stat, value);
    }
    match summary.save_merged() {
        Ok(p) => {
            println!("\nbench summary: {}", p.display());
            // Refresh the committed trajectory copy from the merged file.
            if let Ok(text) = std::fs::read_to_string(&p) {
                if std::fs::write("BENCH_PR10.json", &text).is_ok() {
                    println!("trajectory: BENCH_PR10.json");
                }
            }
        }
        Err(e) => eprintln!("\nbench summary not written: {e}"),
    }
}
