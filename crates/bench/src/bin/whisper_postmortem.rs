//! `whisper-postmortem` — boot a deployment, break it, read the story.
//!
//! Boots the 5-peer student-management deployment on any (or all) of the
//! three substrates, replays the standard kill/restart [`FaultPlan`]
//! against the coordinator with the SLO engine watching the availability
//! ledger, and prints the flight capture each burn-rate alert sealed: a
//! causally-ordered, cross-node incident timeline annotated with the
//! ledger's outage story, plus the same capture as JSONL for machines.
//!
//! ```text
//! whisper-postmortem [--substrate sim|threadnet|tcp|all] [--jsonl]
//! ```
//!
//! Exit is non-zero unless every requested leg fired exactly one
//! availability alert, sealed exactly one capture, and that capture is
//! causally consistent and tells the full failover arc in happens-before
//! order: `kill` → heartbeat miss → re-election → proxy re-bind. The
//! per-substrate counters merge into the bench trajectory
//! (`BENCH_PR10.json`).
//!
//! [`FaultPlan`]: whisper_simnet::FaultPlan

use std::process::ExitCode;

use whisper_bench::experiments::postmortem::{self, PostmortemOutcome};
use whisper_bench::experiments::substrate_matrix::MatrixTuning;
use whisper_bench::BenchSummary;

struct Options {
    substrate: String,
    jsonl: bool,
}

fn usage() -> ! {
    eprintln!("usage: whisper-postmortem [--substrate sim|threadnet|tcp|all] [--jsonl]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        substrate: "all".into(),
        jsonl: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--substrate" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--substrate needs a value");
                    usage()
                });
                match v.as_str() {
                    "sim" | "threadnet" | "tcp" | "all" => opts.substrate = v,
                    _ => usage(),
                }
            }
            "--jsonl" => opts.jsonl = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// Runs the requested leg(s); `run_matrix` covers `all`.
fn run(substrate: &str, t: &MatrixTuning) -> Vec<PostmortemOutcome> {
    if substrate == "all" {
        return postmortem::run_matrix(t);
    }
    let dep = postmortem::scenario(t);
    let row = match substrate {
        "sim" => {
            let mut booted = dep.boot_sim(11).expect("well-formed scenario");
            postmortem::run_on(&mut booted, t)
        }
        "threadnet" => {
            let mut booted = dep.boot_threadnet().expect("well-formed scenario");
            let row = postmortem::run_on(&mut booted, t);
            booted.net.shutdown();
            row
        }
        _ => {
            let mut booted = dep.boot_tcp().expect("loopback sockets");
            let row = postmortem::run_on(&mut booted, t);
            booted.net.shutdown();
            row
        }
    };
    vec![row]
}

fn main() -> ExitCode {
    let opts = parse_args();
    let tuning = MatrixTuning::default();
    println!(
        "postmortem: {} b-peers + proxy + client, kill coordinator at {:.1} s, restart {:.1} s later\n",
        tuning.peers,
        tuning.warmup.as_secs_f64(),
        tuning.outage.as_secs_f64()
    );

    let rows = run(&opts.substrate, &tuning);
    for row in &rows {
        println!("--- {} ---", row.substrate);
        if row.report.is_empty() {
            println!("(no alert fired; nothing captured)");
        } else {
            println!("{}", row.report);
            if opts.jsonl {
                println!("-- capture as JSONL --\n{}", row.jsonl);
            }
        }
    }
    postmortem::table(&rows).print();

    let mut summary = BenchSummary::new();
    postmortem::record(&mut summary, &rows);
    match summary.save_merged() {
        Ok(p) => println!("\nbench summary: {}", p.display()),
        Err(e) => eprintln!("\nbench summary not written: {e}"),
    }

    let mut ok = !rows.is_empty();
    for row in &rows {
        let leg_ok = row.alerts_fired == 1 && row.captures.len() == 1 && row.captures_ok();
        if !leg_ok {
            eprintln!(
                "FAIL {}: alerts={} captures={} captures_ok={}",
                row.substrate,
                row.alerts_fired,
                row.captures.len(),
                row.captures_ok()
            );
            ok = false;
        }
    }
    if ok {
        println!("\nevery kill produced one causally-ordered capture");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
