//! Failover-latency sensitivity ablation: which timeout dominates the
//! paper's multi-second worst-case RTT.

use whisper_bench::experiments::failover_sensitivity;

fn main() {
    println!("Failover-latency sensitivity (3 b-peers, coordinator crash mid-request)\n");
    let rows = failover_sensitivity::run_sweep(3, 19);
    let t = failover_sensitivity::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
