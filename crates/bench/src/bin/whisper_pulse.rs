//! `whisper-pulse` — the streaming telemetry plane as a standalone daemon.
//!
//! Boots a b-peer group + transcript replica + SWS-proxy + pulse
//! collector on real TCP loopback sockets, drives a steady SOAP workload
//! through the proxy (every `--slow-every`th request hits the
//! deliberately slow transcript replica so the tail stays interesting),
//! and serves the collector's windowed time-series in Prometheus text
//! exposition format over HTTP.
//!
//! ```text
//! whisper-pulse [--peers N] [--port P] [--seconds S] [--slow-every N] [--smoke]
//! ```
//!
//! `--seconds 0` (the default) runs until interrupted. `--smoke` runs the
//! workload, then scrapes its own exposition endpoint and exits non-zero
//! unless `whisper_request_total` is non-zero, a `proxy.rtt` p99 series
//! is present, and the `whisper_slo_*` series are exposed — the CI
//! self-check.
//!
//! An [`SloEngine`] with the default objectives (99 % availability, p99
//! ≤ 250 ms) watches the cluster's availability ledger and the live p99;
//! its burn rates, budget, and firing state ride along on every scrape
//! as `whisper_slo_*` series.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use whisper_bench::{exporter, ClusterTuning, PulseTuning, TcpCluster};
use whisper_obs::{SloConfig, SloEngine};
use whisper_simnet::{SimDuration, SimTime};

struct Options {
    peers: usize,
    port: u16,
    seconds: u64,
    slow_every: usize,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: whisper-pulse [--peers N] [--port P] [--seconds S] [--slow-every N] [--smoke]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        peers: 5,
        port: 9464,
        seconds: 0,
        slow_every: 16,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--peers" => match value("--peers").parse() {
                Ok(n) if n > 0 => opts.peers = n,
                _ => usage(),
            },
            "--port" => match value("--port").parse() {
                Ok(p) => opts.port = p,
                Err(_) => usage(),
            },
            "--seconds" => match value("--seconds").parse() {
                Ok(s) => opts.seconds = s,
                Err(_) => usage(),
            },
            "--slow-every" => match value("--slow-every").parse() {
                Ok(n) if n > 0 => opts.slow_every = n,
                _ => usage(),
            },
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// One HTTP GET against our own exposition endpoint.
fn self_scrape(addr: std::net::SocketAddr) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    Ok(response)
}

/// The smoke assertions: a served request counter and a p99 series.
fn smoke_check(body: &str) -> Result<(), String> {
    let requests: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("whisper_request_total "))
        .ok_or("whisper_request_total missing from exposition")?
        .trim()
        .parse()
        .map_err(|e| format!("whisper_request_total not numeric: {e}"))?;
    if requests == 0 {
        return Err("whisper_request_total is zero".into());
    }
    let p99 = "whisper_latency_us{series=\"proxy.rtt\",quantile=\"0.99\"} ";
    if !body.lines().any(|l| l.starts_with(p99)) {
        return Err(format!("p99 series {p99:?} missing from exposition"));
    }
    if !body.lines().any(|l| l.starts_with("whisper_slo_target{")) {
        return Err("whisper_slo_target series missing from exposition".into());
    }
    println!("smoke: ok ({requests} requests exposed, p99 + SLO series present)");
    Ok(())
}

/// Total ledger downtime across every tracked service at `now`.
fn ledger_downtime(cluster: &TcpCluster, now: SimTime) -> SimDuration {
    let ledger = cluster.ledger();
    let mut total = SimDuration::ZERO;
    for &s in &ledger.services() {
        if let Some(r) = ledger.service_report(s, now) {
            total = total + r.downtime;
        }
    }
    total
}

fn main() -> ExitCode {
    let opts = parse_args();

    eprintln!(
        "booting {} b-peers + transcript replica + proxy + pulse collector...",
        opts.peers
    );
    let cluster =
        match TcpCluster::start_pulse(opts.peers, ClusterTuning::default(), PulseTuning::default())
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cluster failed to boot: {e}");
                return ExitCode::FAILURE;
            }
        };

    // Boot election before traffic.
    let settle = Instant::now() + Duration::from_secs(15);
    loop {
        let snaps = cluster.poll_snapshots(cluster.bpeer_nodes(), Duration::from_secs(2));
        if snaps.len() == opts.peers && TcpCluster::agreed_coordinator(&snaps).is_some() {
            break;
        }
        if Instant::now() >= settle {
            eprintln!("cluster failed to elect a coordinator");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let boot = Instant::now();
    let slo: exporter::SharedSlo = Arc::new(Mutex::new(SloEngine::new(SloConfig::default())));
    slo.lock()
        .unwrap_or_else(|e| e.into_inner())
        .tick(SimTime::ZERO, SimDuration::ZERO, None);

    let bind = format!("127.0.0.1:{}", opts.port);
    let server = match exporter::serve_with_slo(
        cluster.pulse_store().clone(),
        Some(slo.clone()),
        &bind,
        usize::MAX,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind exposition endpoint on {bind}: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving Prometheus exposition on http://{}/metrics",
        server.addr()
    );

    // Closed-loop workload: one outstanding request at a time, a slow
    // transcript every `slow_every`th, a status line each second.
    let run_for = (opts.seconds > 0).then(|| Duration::from_secs(opts.seconds));
    let start = Instant::now();
    let mut sent = 0usize;
    let mut answered = 0usize;
    let mut last_status = Instant::now();
    loop {
        if let Some(limit) = run_for {
            if start.elapsed() >= limit {
                break;
            }
        }
        if sent % opts.slow_every == opts.slow_every - 1 {
            cluster.submit_transcript(&format!("u100{}", sent % 8));
        } else {
            cluster.submit_student_info(&format!("u100{}", sent % 8));
        }
        sent += 1;
        answered = cluster.await_responses(sent, Duration::from_secs(10));
        if answered < sent {
            eprintln!("request {sent} unanswered after 10s");
            break;
        }
        if last_status.elapsed() >= Duration::from_secs(1) {
            last_status = Instant::now();
            let store = cluster.pulse_store();
            let guard = store.lock().unwrap_or_else(|e| e.into_inner());
            let agg = guard.aggregate(usize::MAX);
            let p99_us = agg.quantile_us("proxy.rtt", 99.0);
            println!(
                "pulse · {:.0}s · {answered} answered · p50 {} · p99 {} · {} frames · {} outliers",
                start.elapsed().as_secs_f64(),
                agg.quantile_us("proxy.rtt", 50.0)
                    .map(|us| format!("{:.1}ms", us as f64 / 1e3))
                    .unwrap_or_else(|| "-".into()),
                p99_us
                    .map(|us| format!("{:.1}ms", us as f64 / 1e3))
                    .unwrap_or_else(|| "-".into()),
                guard.frames_ingested(),
                guard.outliers_ingested(),
            );
            drop(guard);
            let now = SimTime::ZERO + SimDuration::from_micros(boot.elapsed().as_micros() as u64);
            let mut slo_guard = slo.lock().unwrap_or_else(|e| e.into_inner());
            for ev in slo_guard.tick(
                now,
                ledger_downtime(&cluster, now),
                p99_us.map(SimDuration::from_micros),
            ) {
                println!("slo · {ev:?}");
            }
        }
        // A breather so the pulse interval ticks relative to the load.
        std::thread::sleep(Duration::from_millis(5));
    }

    // Let at least one pulse interval flush the final deltas.
    std::thread::sleep(Duration::from_millis(250));

    let verdict = if opts.smoke {
        match self_scrape(server.addr()) {
            Ok(body) if body.starts_with("HTTP/1.1 200 OK") => smoke_check(&body),
            Ok(body) => Err(format!("exposition endpoint returned: {body}")),
            Err(e) => Err(format!("self-scrape failed: {e}")),
        }
    } else {
        Ok(())
    };

    server.stop();
    cluster.shutdown();
    match verdict {
        Ok(()) if answered == sent && sent > 0 => ExitCode::SUCCESS,
        Ok(()) => {
            eprintln!("unhealthy: {answered}/{sent} requests answered");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("smoke failed: {msg}");
            ExitCode::FAILURE
        }
    }
}
