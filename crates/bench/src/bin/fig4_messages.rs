//! Regenerates **Figure 4**: messages exchanged vs. number of b-peers.

use whisper_bench::experiments::fig4::{self, Fig4Params};
use whisper_bench::obs;

fn main() {
    let sizes = [2, 3, 4, 5, 6, 8, 9, 12, 16, 20, 24];
    println!("Figure 4: messages exchanged as the number of b-peers increases");
    println!("(startup 2 s, steady window 60 s, 20 requests; deterministic seed)\n");
    let params = Fig4Params::default();
    let mut rows = Vec::new();
    let mut traced = None;
    for &n in &sizes {
        let (row, rec) = fig4::run_point_traced(n, params);
        if n == 5 {
            traced = Some(rec);
        }
        rows.push(row);
    }
    let t = fig4::table(&rows);
    t.print();
    let points: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.bpeers as f64, r.steady_msgs as f64))
        .collect();
    println!(
        "\nlinearity of steady-state growth: R² = {:.5}",
        fig4::linear_r2(&points)
    );
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    if let Some(rec) = traced {
        println!("\nRequest-phase spans at 5 b-peers\n");
        let phases = obs::phase_table(&rec, "fig4_phases");
        phases.print();
        if let Ok(p) = phases.save_csv() {
            println!("csv: {}", p.display());
        }
        if let Ok(p) = obs::save_jsonl(&rec, "fig4_messages") {
            println!("jsonl: {}", p.display());
        }
    }
}
