//! Regenerates the paper's **RTT analysis** (§5): ≈0.5 ms average message
//! RTT on the LAN; multi-second worst case during coordinator failover,
//! split into election and re-binding components.

use whisper_bench::experiments::rtt;
use whisper_bench::obs;

fn main() {
    println!("RTT analysis (paper §5)\n");
    let t = rtt::table(500, 300, 5, 11);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    println!("\nFailover anatomy as spans (coordinator crash, 5 b-peers)\n");
    let (_, rec) = rtt::failover_traced(5, 11);
    let phases = obs::phase_table(&rec, "rtt_failover_phases");
    phases.print();
    if let Ok(p) = phases.save_csv() {
        println!("csv: {}", p.display());
    }
    if let Ok(p) = obs::save_jsonl(&rec, "rtt_failover") {
        println!("jsonl: {}", p.display());
    }
}
