//! Regenerates the paper's **RTT analysis** (§5): ≈0.5 ms average message
//! RTT on the LAN; multi-second worst case during coordinator failover,
//! split into election and re-binding components.

use whisper_bench::experiments::rtt;

fn main() {
    println!("RTT analysis (paper §5)\n");
    let t = rtt::table(500, 300, 5, 11);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
