//! `whisper-loadgen` — the whisper-surge saturation load plane (E16).
//!
//! Boots the student deployment on real TCP loopback (load-sharing on,
//! surge worker pools enabled) and drives it with open-loop rate sweeps
//! and closed-loop in-flight windows across replica counts, printing the
//! throughput–latency matrix, the saturation knee per replica count and
//! the closed-loop peak. Open-loop percentiles are
//! coordinated-omission-corrected (latency from the intended send time).
//!
//! ```text
//! whisper-loadgen [--smoke] [--peers N,N,..] [--rates R,R,..]
//!                 [--windows W,W,..] [--secs S] [--workers K]
//! ```
//!
//! `--smoke` runs the short CI matrix. Headline statistics merge into
//! `target/experiments/BENCH_PR10.json` (the trajectory the CI
//! `load-smoke` job diffs against the committed baseline); the full
//! matrix lands as a CSV next to the other experiment tables.

use std::process::ExitCode;

use whisper_bench::experiments::load_matrix::{self, MatrixParams};
use whisper_bench::BenchSummary;

fn usage() -> ! {
    eprintln!(
        "usage: whisper-loadgen [--smoke] [--peers N,N,..] [--rates R,R,..]\n\
         \x20                      [--windows W,W,..] [--secs S] [--workers K]"
    );
    std::process::exit(2);
}

fn parse_list<T: std::str::FromStr>(raw: &str) -> Vec<T> {
    raw.split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn parse_args() -> MatrixParams {
    let mut params = MatrixParams::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--smoke" => {
                let smoke = MatrixParams::smoke();
                params = smoke;
            }
            "--peers" => params.peers = parse_list(&value("--peers")),
            "--rates" => params.rates = parse_list(&value("--rates")),
            "--windows" => params.windows = parse_list(&value("--windows")),
            "--secs" => match value("--secs").parse() {
                Ok(s) if s > 0.0 => params.secs = s,
                _ => usage(),
            },
            "--workers" => match value("--workers").parse() {
                Ok(k) => params.workers = k,
                Err(_) => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if params.peers.is_empty() || params.peers.contains(&0) {
        usage();
    }
    params
}

fn main() -> ExitCode {
    let params = parse_args();
    println!(
        "whisper-loadgen: replicas {:?}, {} workers/b-peer, open rates {:?} rps \
         ({}s each), closed windows {:?} ({} requests each)\n",
        params.peers,
        params.workers,
        params.rates,
        params.secs,
        params.windows,
        params.closed_total,
    );
    let rows = match load_matrix::run_matrix(&params) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("load matrix failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t = load_matrix::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    println!(
        "\nclosed-loop peak: {:.0} req/s",
        load_matrix::peak_rps(&rows)
    );
    for &p in &params.peers {
        match load_matrix::knee(&rows, p) {
            Some(k) => {
                let p99 = load_matrix::half_knee_p99_us(&rows, p)
                    .map(|us| format!("{:.2} ms", us as f64 / 1e3))
                    .unwrap_or_else(|| "-".into());
                println!("{p} replica(s): knee ≥ {k:.0} req/s, corrected p99 at half knee {p99}");
            }
            None => println!("{p} replica(s): saturated at every offered rate"),
        }
    }

    let mut summary = BenchSummary::new();
    load_matrix::record(&mut summary, &rows);
    match summary.save_merged() {
        Ok(path) => println!("trajectory: {}", path.display()),
        Err(e) => {
            eprintln!("could not write the bench trajectory: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
