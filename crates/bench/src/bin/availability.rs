//! Availability under churn: redundancy masks replica failures.

use whisper_bench::experiments::availability::{self, AvailabilityParams};

fn main() {
    let params = AvailabilityParams::default();
    println!(
        "Availability under churn: MTTF {:.0} s, MTTR {:.0} s, horizon {:.0} s, {} rps\n",
        params.mttf.as_secs_f64(),
        params.mttr.as_secs_f64(),
        params.horizon.as_secs_f64(),
        params.rps
    );
    let rows = availability::run_sweep(&[1, 2, 3, 5, 7], params);
    let t = availability::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    println!("\nDynamic growth: replicas joining a churning single-replica service\n");
    let rows = availability::run_growth(params);
    let t = availability::growth_table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
