//! Availability under churn: redundancy masks replica failures.

use whisper_bench::experiments::availability::{self, AvailabilityParams};
use whisper_bench::obs;

fn main() {
    let params = AvailabilityParams::default();
    println!(
        "Availability under churn: MTTF {:.0} s, MTTR {:.0} s, horizon {:.0} s, {} rps\n",
        params.mttf.as_secs_f64(),
        params.mttr.as_secs_f64(),
        params.horizon.as_secs_f64(),
        params.rps
    );
    let counts = [1usize, 2, 3, 5, 7];
    let mut rows = Vec::new();
    let mut traced = None;
    for &k in &counts {
        let (row, rec) = availability::run_point_traced(k, params);
        if k == 3 {
            traced = Some(rec);
        }
        rows.push(row);
    }
    let t = availability::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    if let Some(rec) = traced {
        println!("\nWhere the 3-replica run spent its time (span phases)\n");
        let phases = obs::phase_table(&rec, "availability_phases");
        phases.print();
        if let Ok(p) = phases.save_csv() {
            println!("csv: {}", p.display());
        }
        if let Ok(p) = obs::save_jsonl(&rec, "availability") {
            println!("jsonl: {}", p.display());
        }
    }

    println!("\nDynamic growth: replicas joining a churning single-replica service\n");
    let rows = availability::run_growth(params);
    let t = availability::growth_table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
