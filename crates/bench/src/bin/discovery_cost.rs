//! Flooding vs. rendezvous discovery cost ablation.

use whisper_bench::experiments::discovery_cost;

fn main() {
    println!("Discovery cost: flooding vs. rendezvous (2 b-peers per group)\n");
    let rows = discovery_cost::run_sweep(&[1, 2, 4, 8, 12], 2, 7);
    let t = discovery_cost::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
