//! E17 chaos soak: gray-failure injection on the wall-clock substrates
//! against the fail-slow-aware resilience layer.
//!
//! Runs the seeded soak (5 % loss, doubled latency, duplication,
//! corruption, one coordinator stall and one 51× slowdown) on OS threads
//! and on real TCP loopback across several chaos seeds, then times the
//! crash-rebind path against the fail-slow-rebind path on the same
//! deployment. Exits non-zero unless every soak answered every request
//! exactly once above the goodput floor with the gray incidents on the
//! books, and the fail-slow path was the faster recovery.
//!
//! ```text
//! whisper-chaos [--seeds N] [--plan FILE]
//! ```
//!
//! `--plan FILE` replaces the built-in gray schedule with a
//! [`FaultPlan`] in its text form (see [`FaultPlan::parse_text`]), so a
//! chaos schedule can be replayed from a file on every substrate.
//!
//! Soak and race statistics are merged into the bench trajectory next to
//! the experiment CSVs.
//!
//! [`FaultPlan`]: whisper_simnet::FaultPlan

use std::process::ExitCode;

use whisper_bench::experiments::chaos_soak::{self, ChaosTuning};
use whisper_bench::BenchSummary;
use whisper_simnet::FaultPlan;

fn main() -> ExitCode {
    let mut seeds = 3u64;
    let mut tuning = ChaosTuning::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => seeds = n,
                    _ => {
                        eprintln!("--seeds needs a positive integer, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--plan" => {
                let path = match args.next() {
                    Some(p) => p,
                    None => {
                        eprintln!("--plan needs a file path");
                        return ExitCode::FAILURE;
                    }
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match FaultPlan::parse_text(&text) {
                    Ok(plan) => {
                        println!("replaying {} actions from {path}", plan.actions().len());
                        tuning.plan = Some(plan);
                    }
                    Err(e) => {
                        eprintln!("bad fault plan {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} (usage: whisper-chaos [--seeds N] [--plan FILE])"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "Chaos soak: {} b-peers, {} requests/soak, {} seeds, degrade {:?}\n",
        tuning.peers, tuning.requests, seeds, tuning.degrade
    );

    let mut rows = Vec::new();
    for seed in 0..seeds {
        rows.push(chaos_soak::run_soak_threadnet(&tuning, seed));
        rows.push(chaos_soak::run_soak_tcp(&tuning, seed));
    }
    let t = chaos_soak::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    let race = chaos_soak::race(&tuning);
    println!(
        "\nrebind race ({}): crash {} vs fail-slow {}",
        race.substrate, race.crash_recovery, race.fail_slow_recovery
    );

    let mut summary = BenchSummary::new();
    chaos_soak::record(&mut summary, &rows, &[race]);
    match summary.save_merged() {
        Ok(p) => println!("\nbench summary: {}", p.display()),
        Err(e) => eprintln!("\nbench summary not written: {e}"),
    }

    let mut ok = true;
    for r in &rows {
        if !r.accepted(&tuning) {
            eprintln!(
                "FAIL {}: lost={} dup={} goodput={:.4} gray_events={} ledger_up={}",
                r.substrate, r.lost, r.duplicated, r.goodput, r.gray_faults_recorded, r.ledger_up
            );
            ok = false;
        }
    }
    if race.fail_slow_recovery >= race.crash_recovery {
        eprintln!(
            "FAIL race: fail-slow rebind {} not faster than crash rebind {}",
            race.fail_slow_recovery, race.crash_recovery
        );
        ok = false;
    }
    if ok {
        println!("\nevery request answered exactly once on every substrate");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
