//! `whisper-top` — top(1) for a live Whisper cluster.
//!
//! Boots a b-peer group + SWS-proxy on real TCP loopback sockets, then
//! introspects it **in-band**: every refresh sends a
//! [`whisper::WhisperMsg::ScopeRequest`] to each node over the same
//! sockets the protocol uses and renders the [`NodeSnapshot`]s that come
//! back — role, coordinator, election phase, per-peer heartbeat ages,
//! queue depth and message counters — plus the availability ledger's
//! per-service summary.
//!
//! ```text
//! whisper-top [--peers N] [--interval MS] [--frames N] [--once] [--live]
//! whisper-top --check-summary PATH
//! whisper-top --compare OLD.json NEW.json [--only SUBSTR] [--fail-on-regression PCT]
//! ```
//!
//! `--once` prints a single frame and exits by health (the CI smoke
//! check): `0` when every node answered, all b-peers agree on a
//! coordinator and the ledger shows every service up; `3` when the
//! cluster is *up but degraded* — all nodes still answering but the
//! b-peers disagree on the coordinator, the ledger carries an open
//! outage, or the SLO engine is burning (an alert firing or an error
//! budget exhausted); `1` when nodes are missing or requests went
//! unanswered (down); `2` on usage errors.
//!
//! Every frame ends with an `ALERTS` pane: per-objective burn rates over
//! the fast/slow windows, the error budget left, and whether the
//! multi-window burn-rate alert is firing (see `whisper_obs::slo`).
//! `--live` boots the pulse telemetry plane alongside the cluster (plus
//! a deliberately slow transcript replica), drives one request per
//! refresh, and adds a telemetry panel under each frame: request-rate
//! and p99 sparklines from the collector's windowed time-series, and a
//! flame rendering of the latest tail-captured slow request.
//! `--check-summary` validates that a `BENCH_PR10.json` trajectory file
//! parses, without booting anything. `--compare` diffs two trajectory
//! files stat by stat and prints a percent-change table; with
//! `--fail-on-regression PCT` it exits non-zero if any shared statistic
//! worsened by more than `PCT` percent (direction-aware: throughput-like
//! stats such as availability count a *drop* as the regression).
//! `--only SUBSTR` restricts the comparison to stats whose
//! `experiment/stat` name contains `SUBSTR` — CI uses it to hold the
//! tcpnet request-cycle bench to a tighter gate than the noisy rest.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use whisper_bench::{BenchSummary, ClusterTuning, PulseTuning, Table, TcpCluster};
use whisper_obs::{MetricsDelta, NodeSnapshot, OutlierTrace, PulseSpan, SloConfig, SloEngine};
use whisper_simnet::{NodeId, SimDuration, SimTime};

struct Options {
    peers: usize,
    interval: Duration,
    frames: Option<u64>,
    once: bool,
    live: bool,
    check_summary: Option<String>,
    compare: Option<(String, String)>,
    only: Option<String>,
    fail_on_regression: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: whisper-top [--peers N] [--interval MS] [--frames N] [--once] [--live]\n\
         \x20      whisper-top --check-summary PATH\n\
         \x20      whisper-top --compare OLD.json NEW.json [--only SUBSTR] [--fail-on-regression PCT]\n\
         \n\
         --once exits by health: 0 healthy; 3 up but degraded (coordinator\n\
         disagreement, open ledger outage, or SLO burn — alert firing /\n\
         error budget exhausted); 1 down (missing nodes or unanswered\n\
         requests); 2 usage errors."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        peers: 5,
        interval: Duration::from_millis(1000),
        frames: None,
        once: false,
        live: false,
        check_summary: None,
        compare: None,
        only: None,
        fail_on_regression: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--peers" => match value("--peers").parse() {
                Ok(n) if n > 0 => opts.peers = n,
                _ => usage(),
            },
            "--interval" => match value("--interval").parse() {
                Ok(ms) => opts.interval = Duration::from_millis(ms),
                Err(_) => usage(),
            },
            "--frames" => match value("--frames").parse() {
                Ok(n) => opts.frames = Some(n),
                Err(_) => usage(),
            },
            "--once" => opts.once = true,
            "--live" => opts.live = true,
            "--check-summary" => opts.check_summary = Some(value("--check-summary")),
            "--compare" => {
                let old = value("--compare");
                let new = value("--compare");
                opts.compare = Some((old, new));
            }
            "--only" => opts.only = Some(value("--only")),
            "--fail-on-regression" => match value("--fail-on-regression").parse() {
                Ok(pct) if pct >= 0.0 => opts.fail_on_regression = Some(pct),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// Validates a trajectory file; the CI smoke test's second half.
fn check_summary(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match BenchSummary::parse(&text) {
        Ok(s) => {
            println!("{path}: ok ({} experiments)", s.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid bench summary: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `true` for statistics where bigger is better — availability, fit
/// quality, time-to-failure and the load plane's throughput numbers
/// (`*_rps`); everything else in the trajectory is a latency/cost number
/// where smaller wins.
fn higher_is_better(stat: &str) -> bool {
    ["availability", "r2", "mttf", "rps", "throughput"]
        .iter()
        .any(|m| stat.contains(m))
}

/// Loads and parses one trajectory file, printing the failure.
fn load_summary(path: &str) -> Option<BenchSummary> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return None;
        }
    };
    match BenchSummary::parse(&text) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("{path}: invalid bench summary: {e}");
            None
        }
    }
}

/// Diffs two trajectory files stat by stat: prints a percent-change table
/// and, when `fail_pct` is set, exits non-zero if any shared statistic
/// worsened by more than that many percent. `only` restricts the diff to
/// stats whose `experiment/stat` name contains the given substring.
fn compare_summaries(
    old_path: &str,
    new_path: &str,
    only: Option<&str>,
    fail_pct: Option<f64>,
) -> ExitCode {
    let (Some(old), Some(new)) = (load_summary(old_path), load_summary(new_path)) else {
        return ExitCode::FAILURE;
    };
    let selected =
        |exp: &str, stat: &str| only.is_none_or(|needle| format!("{exp}/{stat}").contains(needle));

    let mut t = Table::new(
        "bench_compare",
        &["experiment", "stat", "old", "new", "change_pct", "note"],
    );
    let mut worst: Option<(String, f64)> = None;
    let mut missing = 0usize;
    let mut compared = 0usize;
    for exp in new.experiment_names() {
        for (stat, new_v) in new.stats(exp) {
            if !selected(exp, stat) {
                continue;
            }
            compared += 1;
            let Some(old_v) = old.get(exp, stat) else {
                t.row(&[
                    exp.to_string(),
                    stat.to_string(),
                    "-".into(),
                    format!("{new_v:.4}"),
                    "-".into(),
                    "new".into(),
                ]);
                continue;
            };
            // Percent worsening, direction-aware: positive means worse.
            let regression_pct = if old_v == 0.0 {
                0.0
            } else if higher_is_better(stat) {
                (old_v - new_v) / old_v.abs() * 100.0
            } else {
                (new_v - old_v) / old_v.abs() * 100.0
            };
            let change_pct = if old_v == 0.0 {
                0.0
            } else {
                (new_v - old_v) / old_v.abs() * 100.0
            };
            let over = fail_pct.is_some_and(|limit| regression_pct > limit);
            t.row(&[
                exp.to_string(),
                stat.to_string(),
                format!("{old_v:.4}"),
                format!("{new_v:.4}"),
                format!("{change_pct:+.1}"),
                if over {
                    "REGRESSION".into()
                } else if regression_pct < -1.0 {
                    "improved".into()
                } else {
                    String::new()
                },
            ]);
            if worst.as_ref().is_none_or(|(_, w)| regression_pct > *w) {
                worst = Some((format!("{exp}/{stat}"), regression_pct));
            }
        }
    }
    for exp in old.experiment_names() {
        for (stat, _) in old.stats(exp) {
            if selected(exp, stat) && new.get(exp, stat).is_none() {
                missing += 1;
                eprintln!(
                    "warning: {exp}/{stat} present in {old_path} but missing from {new_path}"
                );
            }
        }
    }
    if let Some(needle) = only {
        if compared == 0 {
            eprintln!("FAIL: no stat matching {needle:?} in {new_path}");
            return ExitCode::FAILURE;
        }
    }
    t.print();
    if let Some((name, pct)) = &worst {
        println!("worst regression: {name} ({pct:+.1}%)");
    }
    if missing > 0 {
        println!("{missing} stat(s) dropped from the new trajectory");
    }
    match (fail_pct, worst) {
        (Some(limit), Some((name, pct))) if pct > limit => {
            eprintln!("FAIL: {name} regressed {pct:+.1}% (> {limit}% allowed)");
            ExitCode::FAILURE
        }
        _ => ExitCode::SUCCESS,
    }
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e3)
}

/// One rendered frame: the per-node table from a fresh snapshot poll.
fn frame_table(cluster: &TcpCluster, snaps: &[(NodeId, NodeSnapshot)]) -> Table {
    let mut t = Table::new(
        "whisper_top",
        &[
            "node",
            "role",
            "peer",
            "coord",
            "phase",
            "hb_age_ms",
            "queue",
            "tx",
            "tx_kb",
            "rx",
        ],
    );
    for (node, snap) in snaps {
        let (coord, phase) = match &snap.election {
            Some(e) => (
                e.coordinator
                    .map(|c| {
                        if e.is_coordinator {
                            format!("{c}*")
                        } else {
                            c.to_string()
                        }
                    })
                    .unwrap_or_else(|| "?".into()),
                e.phase.clone(),
            ),
            None => ("-".into(), "-".into()),
        };
        let worst_age = snap.heartbeat_ages_us.iter().map(|&(_, a)| a).max();
        t.row(&[
            node.index().to_string(),
            snap.role.label().to_string(),
            cluster.peer_of(*node).to_string(),
            coord,
            phase,
            worst_age.map(fmt_ms).unwrap_or_else(|| "-".into()),
            snap.queue_depth.to_string(),
            snap.sent.messages_sent().to_string(),
            format!("{:.1}", snap.sent.bytes_sent() as f64 / 1024.0),
            snap.received.messages_sent().to_string(),
        ]);
    }
    t
}

/// How healthy the cluster looked on the last rendered frame, ordered
/// worst-first so `max` keeps the most pessimistic verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Health {
    /// Every node answered, coordinator agreed, every service up.
    Healthy,
    /// Still serving — every node answered every request — but the
    /// b-peers disagree on the coordinator, the ledger carries an open
    /// outage, or the SLO engine is burning (alert firing or error
    /// budget exhausted). Exit code 3, so CI can tell "restart it" from
    /// "wait for re-election".
    Degraded,
    /// Nodes missing from the snapshot poll or requests unanswered.
    Down,
}

/// Cumulative downtime across every ledgered service — the availability
/// signal the SLO engine burns against.
fn ledger_downtime(cluster: &TcpCluster, now: SimTime) -> SimDuration {
    let ledger = cluster.ledger();
    let mut total = SimDuration::ZERO;
    for &s in &ledger.services() {
        if let Some(r) = ledger.service_report(s, now) {
            total = total + r.downtime;
        }
    }
    total
}

/// The `ALERTS` pane: per-objective burn rates, budget left and alert
/// state from the SLO engine.
fn print_alerts(slo: &SloEngine) {
    for s in slo.status() {
        println!(
            "ALERTS {:<13} target={:.3} burn fast={:.1}x slow={:.1}x budget={:>6.1}% {}",
            s.objective,
            s.target,
            s.fast_burn,
            s.slow_burn,
            s.budget_remaining * 100.0,
            if s.firing {
                "FIRING"
            } else if s.budget_remaining <= 0.0 {
                "BUDGET EXHAUSTED"
            } else {
                "ok"
            },
        );
    }
}

/// `true` when the availability ledger currently carries an open outage
/// for any service.
fn ledger_outage(cluster: &TcpCluster, now: SimTime) -> bool {
    let ledger = cluster.ledger();
    ledger
        .services()
        .iter()
        .any(|&s| ledger.service_report(s, now).is_some_and(|r| !r.up))
}

/// Prints the availability ledger's per-service lines.
fn print_ledger(cluster: &TcpCluster, now: SimTime) {
    let ledger = cluster.ledger();
    for service in ledger.services() {
        if let Some(r) = ledger.service_report(service, now) {
            println!(
                "service {service}: {} coordinator={} availability={:.6} failures={} churn={}{}",
                if r.up { "up" } else { "DOWN" },
                r.coordinator
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "?".into()),
                r.availability,
                r.failures,
                r.churn,
                r.mttr
                    .map(|d| format!(" mttr={:.1}ms", d.as_secs_f64() * 1e3))
                    .unwrap_or_default(),
            );
        }
    }
}

/// How many pulse windows back the sparklines look.
const SPARK_WIDTH: usize = 32;

/// Scales `vals` into one `▁`..`█` glyph each (shared maximum).
fn sparkline(vals: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = vals.iter().fold(0.0_f64, |a, &b| a.max(b));
    vals.iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[((v / max * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Renders a captured outlier trace as an indented flame: each span's bar
/// is proportional to its share of the trace, children nested under
/// their parent in start order.
fn print_flame(trace: &OutlierTrace) {
    println!(
        "slowest capture: {} · {:.1} ms · {} spans",
        trace.label,
        trace.total_us as f64 / 1e3,
        trace.spans.len()
    );
    fn walk(trace: &OutlierTrace, parent: Option<u32>, depth: usize) {
        let mut children: Vec<&PulseSpan> =
            trace.spans.iter().filter(|s| s.parent == parent).collect();
        children.sort_by_key(|s| (s.start_us, s.id));
        for span in children {
            let us = span.end_us.saturating_sub(span.start_us);
            let share = (us * 24 / trace.total_us.max(1)).max(1) as usize;
            println!(
                "  {}{} {} ({:.1} ms)",
                "  ".repeat(depth),
                "█".repeat(share),
                span.name,
                us as f64 / 1e3,
            );
            walk(trace, Some(span.id), depth + 1);
        }
    }
    walk(trace, None, 0);
}

/// The `--live` telemetry panel: request-rate and p99 sparklines from the
/// proxy's windowed time-series, plus the latest tail capture.
fn print_pulse(cluster: &TcpCluster) {
    let store = cluster.pulse_store();
    let guard = store.lock().unwrap_or_else(|e| e.into_inner());
    let proxy = cluster.proxy_node().index() as u64;
    if let Some(series) = guard.series(proxy) {
        let frames: Vec<&MetricsDelta> = series.frames().collect();
        let recent = &frames[frames.len().saturating_sub(SPARK_WIDTH)..];
        let rates: Vec<f64> = recent
            .iter()
            .map(|f| f.counter("proxy.requests") as f64 * 1e6 / f.interval_us.max(1) as f64)
            .collect();
        let p99s: Vec<f64> = recent
            .iter()
            .map(|f| {
                f.hists
                    .iter()
                    .find(|(k, _)| k == "proxy.rtt")
                    .and_then(|(_, h)| h.percentile(99.0))
                    .map(|d| d.as_micros() as f64 / 1e3)
                    .unwrap_or(0.0)
            })
            .collect();
        let agg = guard.aggregate(usize::MAX);
        println!(
            "req/s {} {:.1}/s now · p99 {} {} window",
            sparkline(&rates),
            rates.last().copied().unwrap_or(0.0),
            sparkline(&p99s),
            agg.quantile_us("proxy.rtt", 99.0)
                .map(|us| format!("{:.1}ms", us as f64 / 1e3))
                .unwrap_or_else(|| "-".into()),
        );
    }
    if let Some(trace) = guard.latest_outlier() {
        print_flame(trace);
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if let Some(path) = &opts.check_summary {
        return check_summary(path);
    }
    if let Some((old, new)) = &opts.compare {
        return compare_summaries(old, new, opts.only.as_deref(), opts.fail_on_regression);
    }

    eprintln!(
        "booting {} b-peers + proxy on TCP loopback{}...",
        opts.peers,
        if opts.live {
            " (+ transcript replica + pulse collector)"
        } else {
            ""
        }
    );
    let boot = Instant::now();
    let booted = if opts.live {
        TcpCluster::start_pulse(opts.peers, ClusterTuning::default(), PulseTuning::default())
    } else {
        TcpCluster::start(opts.peers, ClusterTuning::default())
    };
    let cluster = match booted {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cluster failed to boot: {e}");
            return ExitCode::FAILURE;
        }
    };
    // b-peers + proxy, plus the transcript replica in live mode.
    let expected = opts.peers + 1 + usize::from(opts.live);
    let mut targets = cluster.bpeer_nodes().to_vec();
    if opts.live {
        targets.push(cluster.transcript_node());
    }
    targets.push(cluster.proxy_node());

    // Give the boot election a chance before the first frame.
    let settle = Instant::now() + Duration::from_secs(15);
    loop {
        let snaps = cluster.poll_snapshots(cluster.bpeer_nodes(), Duration::from_secs(2));
        if snaps.len() == opts.peers && TcpCluster::agreed_coordinator(&snaps).is_some() {
            break;
        }
        if Instant::now() >= settle {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut frames_left = if opts.once { Some(1) } else { opts.frames };
    let mut sent = 0usize;
    // The SLO engine burns against the ledger from boot, so even a single
    // `--once` frame sees all downtime accumulated since startup.
    let mut slo = SloEngine::new(SloConfig::default());
    slo.tick(SimTime::ZERO, SimDuration::ZERO, None);
    let health = loop {
        // Live mode drives a trickle of real traffic so the telemetry
        // panel moves: one request per refresh, a slow transcript every
        // eighth so the tail sampler has something to capture.
        let mut answered = sent;
        if opts.live {
            if sent % 8 == 7 {
                cluster.submit_transcript("u1004");
            } else {
                cluster.submit_student_info(&format!("u100{}", sent % 8));
            }
            sent += 1;
            answered = cluster.await_responses(sent, Duration::from_secs(5));
        }
        let snaps = cluster.poll_snapshots(&targets, Duration::from_secs(5));
        // Coordinator agreement is a fast-group question: the transcript
        // replica coordinates its own single-member group.
        let fast: Vec<_> = snaps
            .iter()
            .filter(|(n, _)| cluster.bpeer_nodes().contains(n))
            .cloned()
            .collect();
        let coord = TcpCluster::agreed_coordinator(&fast);
        let uptime = boot.elapsed();
        println!(
            "whisper-top · uptime {:.1}s · {}/{} nodes answering · coordinator: {}",
            uptime.as_secs_f64(),
            snaps.len(),
            expected,
            coord
                .map(|c| format!("peer {c}"))
                .unwrap_or_else(|| "NONE".into()),
        );
        frame_table(&cluster, &snaps).print();
        let now = SimTime::ZERO + SimDuration::from_micros(boot.elapsed().as_micros() as u64);
        print_ledger(&cluster, now);
        if opts.live {
            print_pulse(&cluster);
        }
        let p99 = opts.live.then(|| {
            let store = cluster.pulse_store();
            let guard = store.lock().unwrap_or_else(|e| e.into_inner());
            guard
                .aggregate(usize::MAX)
                .quantile_us("proxy.rtt", 99.0)
                .map(SimDuration::from_micros)
        });
        slo.tick(now, ledger_downtime(&cluster, now), p99.flatten());
        print_alerts(&slo);
        let frame_health = if snaps.len() != expected || answered != sent {
            Health::Down
        } else if coord.is_none()
            || ledger_outage(&cluster, now)
            || slo.any_firing()
            || slo.any_budget_exhausted()
        {
            Health::Degraded
        } else {
            Health::Healthy
        };

        if let Some(left) = &mut frames_left {
            *left -= 1;
            if *left == 0 {
                break frame_health;
            }
        }
        println!();
        std::thread::sleep(opts.interval);
    };
    cluster.shutdown();

    match health {
        Health::Healthy => ExitCode::SUCCESS,
        Health::Degraded => {
            eprintln!(
                "degraded: nodes answering but no agreed coordinator, an open outage, \
                 or SLO burn (alert firing / error budget exhausted)"
            );
            ExitCode::from(3)
        }
        Health::Down => {
            eprintln!("down: missing snapshots or unanswered requests");
            ExitCode::FAILURE
        }
    }
}
