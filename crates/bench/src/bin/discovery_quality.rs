//! Semantic vs. syntactic discovery precision/recall (paper §3.1, §4.3).

use whisper_bench::experiments::discovery_quality::{self, CorpusParams};

fn main() {
    let params = CorpusParams::default();
    println!(
        "Discovery quality over a corpus of {} advertisements ({}% relevant)\n",
        params.size,
        (params.relevant_fraction * 100.0) as u32
    );
    let (syn, sem) = discovery_quality::run(params);
    let t = discovery_quality::table(syn, sem);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
