//! QoS-aware peer selection (paper §2.4 extension).

use whisper_bench::experiments::qos::{self, QosParams};

fn main() {
    println!("QoS-aware selection across gold/silver/bronze groups\n");
    let rows = qos::run_all_seeds(QosParams::default(), &[37, 38, 39, 40, 41]);
    let t = qos::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    println!("\nAdaptive selection vs. a lying advertiser:\n");
    let t = qos::lying_advertiser_table(QosParams::default());
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
