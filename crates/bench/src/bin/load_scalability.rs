//! Regenerates the **throughput/latency under load** result (§5): the
//! system "scales to meet desired throughput and latency requirements".

use whisper_bench::experiments::load::{self, LoadParams};

fn main() {
    let params = LoadParams::default();
    println!(
        "Load scalability: open-loop Poisson arrivals, {} ms service time, load sharing on\n",
        params.service_time.as_millis_f64()
    );
    let rows = load::run_sweep(
        &[1, 3, 5, 9],
        &[50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0],
        params,
    );
    let t = load::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
