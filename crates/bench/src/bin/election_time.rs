//! Election-cost ablation: Bully (stale vs. updated membership) against a
//! ring baseline, over group size.

use whisper_bench::experiments::election;

fn main() {
    println!("Election cost vs. group size (lowest survivor initiates)\n");
    let rows = election::run_sweep(&[2, 3, 4, 6, 8, 12, 16, 24], 7);
    let t = election::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
