//! Relay-overhead ablation: firewalled b-peers behind the rendezvous relay.

use whisper_bench::experiments::relay_overhead;

fn main() {
    println!("Relay overhead: direct vs firewalled b-peers (100 closed-loop requests)\n");
    let (direct, relayed) = relay_overhead::run_both(29);
    let t = relay_overhead::table(&direct, &relayed);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }
}
