//! Fault matrix: boot the same 5-peer scenario on all three substrates,
//! kill and restart the coordinator on each via one [`FaultPlan`], and
//! assert every runtime recovers.
//!
//! This is the CI smoke for the deployment layer: one [`Deployment`]
//! description, one fault schedule, three runtimes (virtual time, OS
//! threads, TCP loopback). The bin exits non-zero unless every substrate
//! ends the horizon with an agreed coordinator, exactly one recorded
//! outage, and a measured MTTR — so a regression in any substrate's
//! fault handling fails the job even before the numbers are compared.
//!
//! ```text
//! fault_matrix [--plan FILE]
//! ```
//!
//! With `--plan FILE` the built-in kill/restart schedule is replaced by a
//! [`FaultPlan`] loaded from its text form ([`FaultPlan::parse_text`]),
//! replayed identically on all three substrates. Custom plans may inject
//! any number of outages (or none — gray-only plans), so the
//! exactly-one-outage assertion is relaxed to "the service is up when the
//! books close".
//!
//! Per-substrate availability/MTTR/detection triples are merged into the
//! bench trajectory next to the experiment CSVs.
//!
//! [`Deployment`]: whisper::deploy::Deployment
//! [`FaultPlan`]: whisper_simnet::FaultPlan

use std::process::ExitCode;

use whisper_bench::experiments::substrate_matrix::{self, MatrixTuning, SubstrateOutcome};
use whisper_bench::BenchSummary;
use whisper_simnet::{FaultPlan, SimDuration, SimTime};

/// Replays a custom plan on all three substrates; the horizon is the last
/// scheduled action plus the tuning's settle tail.
fn run_custom_plan(tuning: &MatrixTuning, plan: &FaultPlan) -> Vec<SubstrateOutcome> {
    let last = plan
        .actions()
        .iter()
        .map(|&(at, _)| at.since(SimTime::ZERO))
        .max()
        .unwrap_or(SimDuration::ZERO);
    let horizon = SimDuration::from_micros(last.as_micros() + tuning.settle.as_micros());
    let dep = substrate_matrix::deployment(tuning);
    let mut rows = Vec::with_capacity(3);

    let mut sim = dep
        .boot_sim(11)
        .expect("the matrix scenario is well-formed");
    rows.push(substrate_matrix::run_plan_on(&mut sim, plan, horizon));

    let mut threads = dep
        .boot_threadnet()
        .expect("the matrix scenario is well-formed");
    rows.push(substrate_matrix::run_plan_on(&mut threads, plan, horizon));
    threads.net.shutdown();

    let mut tcp = dep.boot_tcp().expect("loopback sockets");
    rows.push(substrate_matrix::run_plan_on(&mut tcp, plan, horizon));
    tcp.net.shutdown();

    rows
}

fn main() -> ExitCode {
    let mut plan: Option<FaultPlan> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plan" => {
                let path = match args.next() {
                    Some(p) => p,
                    None => {
                        eprintln!("--plan needs a file path");
                        return ExitCode::FAILURE;
                    }
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match FaultPlan::parse_text(&text) {
                    Ok(p) => {
                        println!("replaying {} actions from {path}", p.actions().len());
                        plan = Some(p);
                    }
                    Err(e) => {
                        eprintln!("bad fault plan {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: fault_matrix [--plan FILE])");
                return ExitCode::FAILURE;
            }
        }
    }

    let tuning = MatrixTuning::default();
    let rows = match &plan {
        Some(p) => {
            println!("Fault matrix: {} b-peers, custom plan\n", tuning.peers);
            run_custom_plan(&tuning, p)
        }
        None => {
            println!(
                "Fault matrix: {} b-peers, kill coordinator at {:.1} s, restart {:.1} s later\n",
                tuning.peers,
                tuning.warmup.as_secs_f64(),
                tuning.outage.as_secs_f64()
            );
            substrate_matrix::run_matrix(&tuning)
        }
    };
    let t = substrate_matrix::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    let mut summary = BenchSummary::new();
    substrate_matrix::record(&mut summary, &rows);
    match summary.save_merged() {
        Ok(p) => println!("\nbench summary: {}", p.display()),
        Err(e) => eprintln!("\nbench summary not written: {e}"),
    }

    let mut ok = rows.len() == 3;
    for r in &rows {
        // A custom plan may schedule any number of outages; the built-in
        // schedule must book exactly one with a measured repair.
        let recovered = match plan {
            Some(_) => r.recovered,
            None => r.recovered && r.failures == 1 && r.mttr.is_some(),
        };
        if !recovered {
            eprintln!(
                "FAIL {}: recovered={} failures={} mttr={:?}",
                r.substrate, r.recovered, r.failures, r.mttr
            );
            ok = false;
        }
    }
    if ok {
        println!("\nall substrates recovered");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
