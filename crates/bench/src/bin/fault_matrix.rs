//! Fault matrix: boot the same 5-peer scenario on all three substrates,
//! kill and restart the coordinator on each via one [`FaultPlan`], and
//! assert every runtime recovers.
//!
//! This is the CI smoke for the deployment layer: one [`Deployment`]
//! description, one fault schedule, three runtimes (virtual time, OS
//! threads, TCP loopback). The bin exits non-zero unless every substrate
//! ends the horizon with an agreed coordinator, exactly one recorded
//! outage, and a measured MTTR — so a regression in any substrate's
//! fault handling fails the job even before the numbers are compared.
//!
//! Per-substrate availability/MTTR/detection triples are merged into
//! `target/experiments/BENCH_PR8.json`.
//!
//! [`Deployment`]: whisper::deploy::Deployment
//! [`FaultPlan`]: whisper_simnet::FaultPlan

use std::process::ExitCode;

use whisper_bench::experiments::substrate_matrix::{self, MatrixTuning};
use whisper_bench::BenchSummary;

fn main() -> ExitCode {
    let tuning = MatrixTuning::default();
    println!(
        "Fault matrix: {} b-peers, kill coordinator at {:.1} s, restart {:.1} s later\n",
        tuning.peers,
        tuning.warmup.as_secs_f64(),
        tuning.outage.as_secs_f64()
    );

    let rows = substrate_matrix::run_matrix(&tuning);
    let t = substrate_matrix::table(&rows);
    t.print();
    if let Ok(p) = t.save_csv() {
        println!("csv: {}", p.display());
    }

    let mut summary = BenchSummary::new();
    substrate_matrix::record(&mut summary, &rows);
    match summary.save_merged() {
        Ok(p) => println!("\nbench summary: {}", p.display()),
        Err(e) => eprintln!("\nbench summary not written: {e}"),
    }

    let mut ok = rows.len() == 3;
    for r in &rows {
        let recovered = r.recovered && r.failures == 1 && r.mttr.is_some();
        if !recovered {
            eprintln!(
                "FAIL {}: recovered={} failures={} mttr={:?}",
                r.substrate, r.recovered, r.failures, r.mttr
            );
            ok = false;
        }
    }
    if ok {
        println!("\nall substrates recovered");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
