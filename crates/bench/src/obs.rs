//! Experiment-side observability plumbing: saving a [`Recorder`]'s JSONL
//! export next to the CSVs under `target/experiments/`, and rendering its
//! per-phase span breakdown as a [`Table`].

use std::fs;
use std::io;
use std::path::PathBuf;

use whisper_obs::Recorder;

use crate::Table;

/// Writes the recorder's full export (spans, counters, gauges, histograms)
/// as JSON Lines under `target/experiments/<name>.jsonl` and returns the
/// path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_jsonl(rec: &Recorder, name: &str) -> io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    fs::write(&path, rec.to_jsonl())?;
    Ok(path)
}

/// Renders the recorder's per-phase span breakdown (one row per span name,
/// sorted by total time, like a collapsed flame graph) as a table named
/// `name`.
pub fn phase_table(rec: &Recorder, name: &str) -> Table {
    let mut t = Table::new(name, &["phase", "count", "total ms", "mean ms"]);
    for (phase, count, total, mean) in rec.phase_summary() {
        t.row([
            phase,
            count.to_string(),
            crate::table::ms(total),
            crate::table::ms(mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_simnet::{SimDuration, SimTime};

    #[test]
    fn phase_table_has_one_row_per_span_name() {
        let rec = Recorder::new();
        let t0 = SimTime::ZERO;
        let req = rec.begin_request("r", t0);
        let a = rec.start_span("alpha", req, t0);
        rec.end_span(a, t0 + SimDuration::from_millis(2));
        let b = rec.start_span("beta", req, t0);
        rec.end_span(b, t0 + SimDuration::from_millis(1));
        let t = phase_table(&rec, "test_phases");
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("alpha"));
    }
}
