//! # whisper-wire
//!
//! The byte-level codec of the Whisper message plane: everything that
//! crosses a link is turned into real bytes here, and parsed back out.
//!
//! The paper's evaluation is about *bytes and messages on a real 100 Mbit
//! LAN*; this crate is what makes the reproduction's byte accounting
//! truthful. Every message type implements [`Encode`]/[`Decode`], the
//! simulator's `Wire::wire_size` is exactly `encode().len()`, and the
//! threaded TCP transport ships the same bytes over loopback sockets.
//!
//! ## Wire format
//!
//! * **Frames** — each message travels as `[u32 LE length][payload]`
//!   ([`write_frame`]/[`read_frame`]); payloads are capped at
//!   [`MAX_FRAME_LEN`].
//! * **Integers** — unsigned LEB128 varints (1–10 bytes).
//! * **Strings** (and XML documents such as advertisements and SOAP
//!   envelopes) — varint byte length + UTF-8 bytes.
//! * **Floats** — IEEE 754 bits, 8 bytes little-endian.
//! * **Options** — one tag byte (`0`/`1`) then the value.
//! * **Sequences** — varint count then the elements.
//! * **Enums** — one tag byte then the variant's fields.
//!
//! ## Hardened decoding
//!
//! Decoding never panics on truncated or garbage input: every failure is a
//! typed [`WireError`]. Nested (relayed) messages are bounded by
//! [`MAX_DEPTH`], declared lengths are validated against the bytes
//! actually present, and a full-message [`Decode::decode`] rejects
//! trailing bytes.
//!
//! # Examples
//!
//! ```
//! use whisper_wire::{Decode, Encode, Reader, WireError};
//!
//! let mut buf = Vec::new();
//! 42u64.encode_into(&mut buf);
//! "hello".to_string().encode_into(&mut buf);
//!
//! let mut r = Reader::new(&buf);
//! assert_eq!(u64::decode_from(&mut r).unwrap(), 42);
//! assert_eq!(String::decode_from(&mut r).unwrap(), "hello");
//! assert!(r.is_empty());
//!
//! // garbage input errors instead of panicking: interpreted as a string,
//! // the first byte declares a 42-byte length with no bytes behind it
//! assert!(matches!(
//!     String::decode(&buf[..1]),
//!     Err(WireError::LengthOverflow(42))
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
mod primitives;
mod reader;

pub use error::WireError;
pub use frame::{
    read_frame, read_frame_into, write_frame, write_frame_vectored, write_frames_vectored,
    MAX_FRAME_LEN,
};
pub use reader::{Reader, MAX_DEPTH};

/// A value that can be serialized to wire bytes.
///
/// Implementations append to a caller-supplied buffer so composite
/// messages encode without intermediate allocations.
pub trait Encode {
    /// Appends this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Encodes into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// The exact number of bytes [`Encode::encode`] produces.
    fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// A value that can be parsed back from wire bytes.
pub trait Decode: Sized {
    /// Reads one value from the reader, leaving it positioned after the
    /// value.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; implementations must never panic on malformed
    /// input.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decodes a complete message: the whole slice must be consumed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; [`WireError::TrailingBytes`] when the value ends
    /// before the input does.
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

/// Appends `value` followed by a trailing Lamport-`clock` varint.
///
/// The clock travels *after* the message encoding, so readers that predate
/// it (which call [`Decode::decode`] on a clock-less frame) and readers
/// that expect it (which call [`decode_clocked`] on an old frame) both
/// keep working: a missing trailing varint simply reads back as clock 0.
pub fn encode_clocked_into<T: Encode>(value: &T, clock: u64, out: &mut Vec<u8>) {
    value.encode_into(out);
    clock.encode_into(out);
}

/// Decodes a complete message followed by an *optional* trailing
/// Lamport-clock varint. Frames written before clocks existed end exactly
/// where the message does; those decode with clock 0.
///
/// # Errors
///
/// Any [`WireError`]; [`WireError::TrailingBytes`] when bytes remain after
/// the clock varint.
pub fn decode_clocked<T: Decode>(bytes: &[u8]) -> Result<(T, u64), WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode_from(&mut r)?;
    let clock = if r.is_empty() {
        0
    } else {
        u64::decode_from(&mut r)?
    };
    r.finish()?;
    Ok((value, clock))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_matches_encode() {
        let v = vec![1u64, 2, 3, u64::MAX];
        assert_eq!(v.encoded_len(), v.encode().len());
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut buf = 7u64.encode();
        buf.push(0xFF);
        assert_eq!(u64::decode(&buf), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn clocked_round_trip_and_old_frame_compat() {
        let value = "payload".to_string();
        let mut buf = Vec::new();
        encode_clocked_into(&value, 99, &mut buf);
        assert_eq!(decode_clocked::<String>(&buf).unwrap(), (value.clone(), 99));
        // an old frame without the trailing varint decodes with clock 0
        assert_eq!(
            decode_clocked::<String>(&value.encode()).unwrap(),
            (value, 0)
        );
    }

    #[test]
    fn clocked_decode_rejects_bytes_after_the_clock() {
        let mut buf = Vec::new();
        encode_clocked_into(&"x".to_string(), 1, &mut buf);
        buf.push(0x01);
        assert_eq!(
            decode_clocked::<String>(&buf),
            Err(WireError::TrailingBytes(1))
        );
    }
}
