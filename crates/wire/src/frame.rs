//! Length-prefixed framing over byte streams.
//!
//! A frame is `[u32 little-endian payload length][payload bytes]`. The
//! prefix is fixed-width (not a varint) so a reader can always pull
//! exactly four bytes to learn the payload size — the property the TCP
//! transport's per-link reader threads rely on.

use std::io::{self, Read, Write};

/// Largest payload a frame may carry (16 MiB).
///
/// Nothing in Whisper comes close — the biggest legitimate messages are
/// SOAP envelopes of a few KiB — so anything larger is treated as a
/// corrupt or hostile stream rather than buffered into memory.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when the payload exceeds
/// [`MAX_FRAME_LEN`]; otherwise any I/O error from the writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload {} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first
/// prefix byte) — how a transport distinguishes an orderly shutdown from
/// a mid-frame disconnect.
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] when the stream ends mid-prefix or
/// mid-payload; [`io::ErrorKind::InvalidData`] when the prefix declares
/// more than [`MAX_FRAME_LEN`] bytes; otherwise any I/O error from the
/// reader.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"third message").unwrap();

        let mut r = Cursor::new(stream);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"third message");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_mid_prefix_and_mid_payload_are_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, b"payload").unwrap();

        let mut r = Cursor::new(&full[..2]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );

        let mut r = Cursor::new(&full[..6]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversize_declared_length_is_invalid_data_not_allocation() {
        let prefix = (u32::MAX).to_le_bytes();
        let mut r = Cursor::new(prefix.to_vec());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversize_payload_refused_at_write() {
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frame(&mut sink, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(sink.is_empty());
    }
}
