//! Length-prefixed framing over byte streams.
//!
//! A frame is `[u32 little-endian payload length][payload bytes]`. The
//! prefix is fixed-width (not a varint) so a reader can always pull
//! exactly four bytes to learn the payload size — the property the TCP
//! transport's per-link reader threads rely on.

use std::io::{self, IoSlice, Read, Write};

/// Largest payload a frame may carry (16 MiB).
///
/// Nothing in Whisper comes close — the biggest legitimate messages are
/// SOAP envelopes of a few KiB — so anything larger is treated as a
/// corrupt or hostile stream rather than buffered into memory.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when the payload exceeds
/// [`MAX_FRAME_LEN`]; otherwise any I/O error from the writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload {} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Like [`write_frame`] but submits the length prefix and payload as one
/// vectored write, so an unbuffered socket sees a single syscall (and a
/// single TCP segment for small frames) instead of two.
///
/// Falls back to a partial-write loop when the writer accepts fewer bytes
/// than offered, which plain [`Write::write_vectored`] permits.
///
/// # Errors
///
/// Same conditions as [`write_frame`].
pub fn write_frame_vectored<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload {} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
                payload.len()
            ),
        ));
    }
    let prefix = (payload.len() as u32).to_le_bytes();
    let total = prefix.len() + payload.len();
    let mut written = 0;
    while written < total {
        let n = if written < prefix.len() {
            w.write_vectored(&[IoSlice::new(&prefix[written..]), IoSlice::new(payload)])?
        } else {
            w.write(&payload[written - prefix.len()..])?
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "writer accepted zero bytes mid-frame",
            ));
        }
        written += n;
    }
    w.flush()
}

/// Writes several frames (each with its own length prefix) as a single
/// vectored write — the flush path of a batching transport: frames that
/// queued up behind a busy link leave in one `writev` instead of one
/// syscall each.
///
/// The byte stream is identical to calling [`write_frame`] once per
/// payload, so readers need no batching awareness. Falls back to a
/// partial-write loop when the writer accepts fewer bytes than offered.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when any payload exceeds
/// [`MAX_FRAME_LEN`] (nothing is written); otherwise any I/O error from
/// the writer.
pub fn write_frames_vectored<W: Write>(w: &mut W, payloads: &[&[u8]]) -> io::Result<()> {
    for p in payloads {
        if p.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload {} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}",
                    p.len()
                ),
            ));
        }
    }
    if payloads.is_empty() {
        return w.flush();
    }
    let prefixes: Vec<[u8; 4]> = payloads
        .iter()
        .map(|p| (p.len() as u32).to_le_bytes())
        .collect();
    // The flattened frame sequence: prefix, payload, prefix, payload...
    let part = |i: usize| -> &[u8] {
        if i.is_multiple_of(2) {
            &prefixes[i / 2]
        } else {
            payloads[i / 2]
        }
    };
    let parts = payloads.len() * 2;
    let mut idx = 0; // current part
    let mut off = 0; // bytes of it already written
    while idx < parts {
        let mut slices = Vec::with_capacity(parts - idx);
        slices.push(IoSlice::new(&part(idx)[off..]));
        slices.extend((idx + 1..parts).map(|i| IoSlice::new(part(i))));
        let mut n = w.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "writer accepted zero bytes mid-batch",
            ));
        }
        while idx < parts && n > 0 {
            let left = part(idx).len() - off;
            if n >= left {
                n -= left;
                idx += 1;
                off = 0;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    w.flush()
}

/// Reads one frame's payload.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first
/// prefix byte) — how a transport distinguishes an orderly shutdown from
/// a mid-frame disconnect.
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] when the stream ends mid-prefix or
/// mid-payload; [`io::ErrorKind::InvalidData`] when the prefix declares
/// more than [`MAX_FRAME_LEN`] bytes; otherwise any I/O error from the
/// reader.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    if read_frame_into(r, &mut payload)? {
        Ok(Some(payload))
    } else {
        Ok(None)
    }
}

/// Buffer-reusing variant of [`read_frame`]: reads one frame's payload
/// into `buf` (cleared and resized to the exact payload length), so a
/// long-lived reader loop amortizes its allocation across frames instead
/// of paying a fresh `Vec` per message.
///
/// Returns `Ok(false)` on a clean end of stream (and leaves `buf` empty),
/// `Ok(true)` when a frame was read.
///
/// # Errors
///
/// Same conditions as [`read_frame`].
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<bool> {
    buf.clear();
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"third message").unwrap();

        let mut r = Cursor::new(stream);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"third message");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_mid_prefix_and_mid_payload_are_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, b"payload").unwrap();

        let mut r = Cursor::new(&full[..2]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );

        let mut r = Cursor::new(&full[..6]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversize_declared_length_is_invalid_data_not_allocation() {
        let prefix = (u32::MAX).to_le_bytes();
        let mut r = Cursor::new(prefix.to_vec());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversize_payload_refused_at_write() {
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frame(&mut sink, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(sink.is_empty());
        assert_eq!(
            write_frame_vectored(&mut sink, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn vectored_write_produces_identical_bytes() {
        for payload in [&b""[..], b"x", b"hello frame", &[0xAB; 4096][..]] {
            let mut plain = Vec::new();
            let mut vectored = Vec::new();
            write_frame(&mut plain, payload).unwrap();
            write_frame_vectored(&mut vectored, payload).unwrap();
            assert_eq!(plain, vectored);
        }
    }

    /// A writer that accepts at most one byte per call, exercising the
    /// partial-write loop in [`write_frame_vectored`].
    struct Trickle(Vec<u8>);
    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        let mut t = Trickle(Vec::new());
        write_frame_vectored(&mut t, b"drip-fed payload").unwrap();
        let mut r = Cursor::new(t.0);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"drip-fed payload");
    }

    #[test]
    fn batched_write_matches_sequential_frames() {
        let payloads: Vec<&[u8]> = vec![b"first", b"", b"third message", &[0xCD; 2048][..]];
        let mut sequential = Vec::new();
        for p in &payloads {
            write_frame(&mut sequential, p).unwrap();
        }
        let mut batched = Vec::new();
        write_frames_vectored(&mut batched, &payloads).unwrap();
        assert_eq!(sequential, batched);

        let mut r = Cursor::new(batched);
        for p in &payloads {
            assert_eq!(read_frame(&mut r).unwrap().unwrap(), *p);
        }
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn batched_write_survives_partial_writes() {
        let mut t = Trickle(Vec::new());
        write_frames_vectored(&mut t, &[b"drip", b"", b"fed batch"]).unwrap();
        let mut r = Cursor::new(t.0);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"drip");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"fed batch");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn batched_write_refuses_any_oversize_payload_atomically() {
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert_eq!(
            write_frames_vectored(&mut sink, &[b"ok", &big])
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(sink.is_empty(), "nothing written before the bad frame");
        write_frames_vectored(&mut sink, &[]).unwrap();
        assert!(sink.is_empty(), "empty batch writes nothing");
    }

    #[test]
    fn read_frame_into_reuses_buffer_without_bleed() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"a much longer first frame").unwrap();
        write_frame(&mut stream, b"short").unwrap();
        write_frame(&mut stream, b"").unwrap();

        let mut r = Cursor::new(stream);
        let mut buf = Vec::new();
        assert!(read_frame_into(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"a much longer first frame");
        // a shorter frame after a longer one must not retain old bytes
        assert!(read_frame_into(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"short");
        assert!(read_frame_into(&mut r, &mut buf).unwrap());
        assert!(buf.is_empty());
        assert!(!read_frame_into(&mut r, &mut buf).unwrap());
    }
}
