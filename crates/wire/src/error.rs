//! Typed decode failures.

use std::fmt;

/// Why a decode (or frame write) failed.
///
/// Every malformed-input path returns one of these — decoding never
/// panics, which is what lets the TCP transport feed raw socket bytes
/// straight into [`Decode`](crate::Decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated {
        /// Bytes the value still needed.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow,
    /// An enum tag byte matched no variant of the named type.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A declared length or count exceeds what the input can hold.
    LengthOverflow(u64),
    /// Relayed-message nesting exceeded [`MAX_DEPTH`](crate::MAX_DEPTH).
    DepthExceeded(usize),
    /// Bytes remained after a complete top-level decode.
    TrailingBytes(usize),
    /// The bytes parsed but failed domain validation (e.g. an
    /// advertisement document that is well-formed XML of the wrong shape).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {available} available"
                )
            }
            WireError::VarintOverflow => write!(f, "varint overflows 64 bits"),
            WireError::BadTag { what, tag } => write!(f, "unknown tag {tag:#04x} for {what}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::LengthOverflow(n) => write!(f, "declared length {n} exceeds input"),
            WireError::DepthExceeded(d) => write!(f, "message nesting deeper than {d}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Invalid(why) => write!(f, "invalid payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(WireError, &str)> = vec![
            (
                WireError::Truncated {
                    needed: 4,
                    available: 1,
                },
                "needed 4",
            ),
            (WireError::VarintOverflow, "varint"),
            (WireError::BadTag { what: "X", tag: 9 }, "0x09"),
            (WireError::BadUtf8, "UTF-8"),
            (WireError::LengthOverflow(7), "7"),
            (WireError::DepthExceeded(16), "16"),
            (WireError::TrailingBytes(3), "3"),
            (WireError::Invalid("no".into()), "no"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
