//! [`Encode`]/[`Decode`] for the primitive building blocks: varints,
//! strings, floats, options, sequences, and qualified XML names.

use crate::error::WireError;
use crate::reader::Reader;
use crate::{Decode, Encode};
use whisper_xml::QName;

/// Appends `value` as an unsigned LEB128 varint (1–10 bytes).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_varint`] emits for `value`.
pub(crate) fn varint_len(value: u64) -> usize {
    // ceil(bits / 7), with zero taking one byte.
    let bits = 64 - value.max(1).leading_zeros() as usize;
    bits.div_ceil(7)
}

macro_rules! impl_varint {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode_into(&self, out: &mut Vec<u8>) {
                write_varint(out, u64::from(*self));
            }
            fn encoded_len(&self) -> usize {
                varint_len(u64::from(*self))
            }
        }
        impl Decode for $ty {
            fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let v = r.varint()?;
                <$ty>::try_from(v).map_err(|_| WireError::LengthOverflow(v))
            }
        }
    )*};
}

impl_varint!(u8, u16, u32, u64);

impl Encode for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = r.varint()?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow(v))
    }
}

impl Encode for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Encode for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for f64 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl Encode for str {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Encode for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_str().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl Decode for String {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.string()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

/// Pairs concatenate their fields with no framing: sizes are already
/// self-delimiting, and `Vec<(K, V)>` is how map-shaped data (counters,
/// bindings, heartbeat ages) travels.
impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?))
    }
}

/// Triples work like pairs: plain field concatenation. Used for sparse
/// histogram buckets, which travel as `(lo, hi, count)`.
impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode_from(r)?, B::decode_from(r)?, C::decode_from(r)?))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode_into(out);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Every element costs at least one byte, so a count beyond the
        // remaining input is a lie — reject it before allocating.
        let count = r.length()?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(T::decode_from(r)?);
        }
        Ok(items)
    }
}

/// A [`QName`] travels as a presence flag for the namespace, the
/// namespace URI (when present), then the local part. Unlike Clark
/// notation this round-trips namespaces containing `}`.
impl Encode for QName {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self.ns() {
            None => out.push(0),
            Some(ns) => {
                out.push(1);
                ns.encode_into(out);
            }
        }
        self.local().encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        let ns_len = match self.ns() {
            None => 0,
            Some(ns) => ns.encoded_len(),
        };
        1 + ns_len + self.local().encoded_len()
    }
}

impl Decode for QName {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let ns = match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            tag => {
                return Err(WireError::BadTag {
                    what: "QName namespace",
                    tag,
                })
            }
        };
        let local = r.string()?;
        Ok(match ns {
            Some(ns) => QName::with_ns(ns, local),
            None => QName::new(local),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode();
        assert_eq!(
            bytes.len(),
            value.encoded_len(),
            "encoded_len for {value:?}"
        );
        assert_eq!(T::decode(&bytes).unwrap(), value);
    }

    #[test]
    fn integers_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
    }

    #[test]
    fn narrow_integer_rejects_wide_value() {
        let bytes = 300u64.encode();
        assert_eq!(u8::decode(&bytes), Err(WireError::LengthOverflow(300)));
    }

    #[test]
    fn varint_len_matches_emission() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, 1 << 35, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v = {v}");
        }
    }

    #[test]
    fn floats_round_trip_including_specials() {
        round_trip(0.0f64);
        round_trip(-1.5f64);
        round_trip(f64::MAX);
        round_trip(f64::INFINITY);
        let nan_bytes = f64::NAN.encode();
        assert!(f64::decode(&nan_bytes).unwrap().is_nan());
    }

    #[test]
    fn strings_and_options_round_trip() {
        round_trip(String::new());
        round_trip("héllo — ünïcode".to_string());
        round_trip(None::<String>);
        round_trip(Some("x".to_string()));
        round_trip(vec!["a".to_string(), String::new(), "ccc".to_string()]);
    }

    #[test]
    fn qname_round_trips_hostile_namespace() {
        round_trip(QName::new("local"));
        round_trip(QName::with_ns("http://example.org/ns", "op"));
        // Clark notation would mangle this namespace; the codec must not.
        round_trip(QName::with_ns("weird}ns{", "op"));
    }

    #[test]
    fn pairs_round_trip() {
        round_trip((7u64, "seven".to_string()));
        round_trip(vec![(1u64, 2u64), (3, 4)]);
        round_trip((None::<u32>, vec![(0u8, false)]));
    }

    #[test]
    fn vec_count_beyond_input_is_rejected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1000);
        buf.push(0);
        assert!(matches!(
            Vec::<u64>::decode(&buf),
            Err(WireError::LengthOverflow(1000))
        ));
    }
}
