//! Cursor over a byte slice with depth tracking for nested messages.

use crate::error::WireError;

/// Maximum nesting depth for recursive messages (relayed envelopes).
///
/// A hostile peer could otherwise send a frame whose payload is a chain
/// of `Relayed` headers deep enough to blow the decoder's stack. Sixteen
/// is far beyond any legitimate relay chain (the harness relays at most
/// once, rendezvous → b-peer).
pub const MAX_DEPTH: usize = 16;

/// A decoding cursor over a borrowed byte slice.
///
/// All reads are bounds-checked and return [`WireError`] instead of
/// panicking. Recursive decoders must wrap their recursion in
/// [`Reader::nested`] so depth is bounded by [`MAX_DEPTH`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            depth: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors with [`WireError::TrailingBytes`] unless the input is fully
    /// consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes exactly `n` bytes and returns them.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            let chunk = u64::from(byte & 0x7F);
            // The 10th byte may only carry the top bit of a u64.
            if shift == 63 && chunk > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= chunk << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a varint that must fit in (and plausibly describe) the
    /// remaining input, e.g. a byte length or element count.
    pub fn length(&mut self) -> Result<usize, WireError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(WireError::LengthOverflow(n));
        }
        Ok(n as usize)
    }

    /// Reads an IEEE 754 double from 8 little-endian bytes.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) returned 8 bytes");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.length()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Runs `f` one nesting level deeper, erroring with
    /// [`WireError::DepthExceeded`] past [`MAX_DEPTH`].
    pub fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Reader<'a>) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        if self.depth >= MAX_DEPTH {
            return Err(WireError::DepthExceeded(MAX_DEPTH));
        }
        self.depth += 1;
        let result = f(self);
        self.depth -= 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_past_end_is_truncated() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.take(3),
            Err(WireError::Truncated {
                needed: 3,
                available: 2
            })
        );
        // The failed read consumed nothing.
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            crate::primitives::write_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0xFFu8; 11];
        assert_eq!(Reader::new(&buf).varint(), Err(WireError::VarintOverflow));
        // 10 bytes whose top chunk exceeds the single remaining bit.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert_eq!(Reader::new(&buf).varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn length_guards_against_huge_declared_sizes() {
        // Varint declares 2^40 bytes but only a handful follow.
        let mut buf = Vec::new();
        crate::primitives::write_varint(&mut buf, 1 << 40);
        buf.extend_from_slice(b"abc");
        assert_eq!(
            Reader::new(&buf).length(),
            Err(WireError::LengthOverflow(1 << 40))
        );
    }

    #[test]
    fn string_rejects_bad_utf8() {
        let mut buf = Vec::new();
        crate::primitives::write_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xC0, 0xAF]);
        assert_eq!(Reader::new(&buf).string(), Err(WireError::BadUtf8));
    }

    #[test]
    fn nested_bounds_depth() {
        fn recurse(r: &mut Reader<'_>, levels: usize) -> Result<(), WireError> {
            if levels == 0 {
                return Ok(());
            }
            r.nested(|r| recurse(r, levels - 1))
        }
        let mut r = Reader::new(&[]);
        assert!(recurse(&mut r, MAX_DEPTH).is_ok());
        assert_eq!(
            recurse(&mut r, MAX_DEPTH + 1),
            Err(WireError::DepthExceeded(MAX_DEPTH))
        );
        // Depth unwinds after errors, so the reader is reusable.
        assert!(recurse(&mut r, 1).is_ok());
    }
}
