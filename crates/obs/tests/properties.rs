//! Property tests of the recorder's structural invariants: every span the
//! driver opens can be closed, closed children always nest inside their
//! parents in sim-time, and the JSONL export round-trips losslessly for
//! arbitrary interleavings of requests, spans, instants and metrics.

use proptest::prelude::*;
use whisper_obs::{Export, Recorder, RequestId, SpanId};
use whisper_simnet::{SimDuration, SimTime};

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Replays a random op script against a fresh recorder, mirroring the
/// open-span stacks on the test side, then closes everything LIFO.
/// Returns the recorder with `open_span_count() == 0` expected.
fn drive(script: &[(u8, u8, u16)]) -> Recorder {
    let rec = Recorder::new();
    let mut now = SimTime::ZERO;
    let mut requests: Vec<(RequestId, Vec<SpanId>)> = Vec::new();
    for &(op, sel, dt) in script {
        now += SimDuration::from_micros(dt as u64 + 1);
        let name = NAMES[sel as usize % NAMES.len()];
        match op % 6 {
            0 => {
                let req = rec.begin_request(format!("req #{}", requests.len()), now);
                let root = rec.start_span(name, req, now);
                requests.push((req, vec![root]));
            }
            1 | 2 => {
                if !requests.is_empty() {
                    let i = sel as usize % requests.len();
                    let (req, stack) = &mut requests[i];
                    let s = rec.start_span(name, *req, now);
                    rec.set_attr(s, "sel", sel as u64);
                    stack.push(s);
                }
            }
            3 => {
                if !requests.is_empty() {
                    let i = sel as usize % requests.len();
                    let (_, stack) = &mut requests[i];
                    // keep the root open until the final sweep so later ops
                    // on this request still nest under it
                    if stack.len() > 1 {
                        if let Some(s) = stack.pop() {
                            rec.end_span(s, now);
                        }
                    }
                }
            }
            4 => {
                if !requests.is_empty() {
                    let i = sel as usize % requests.len();
                    rec.instant(name, requests[i].0, now);
                }
            }
            _ => {
                rec.incr(name, dt as u64 + 1);
                rec.set_gauge(name, sel as i64 - 2);
                rec.record_duration(name, SimDuration::from_micros(dt as u64 + 1));
            }
        }
    }
    for (_, stack) in &mut requests {
        while let Some(s) = stack.pop() {
            now += SimDuration::from_micros(1);
            rec.end_span(s, now);
        }
    }
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After the closing sweep no span is left open, and every recorded
    /// span has `start <= end`.
    #[test]
    fn every_span_closes(
        script in proptest::collection::vec((0u8..6, any::<u8>(), 0u16..2_000), 1..40),
    ) {
        let rec = drive(&script);
        prop_assert_eq!(rec.open_span_count(), 0);
        for s in rec.spans() {
            let end = s.end;
            prop_assert!(end.is_some(), "span {:?} never closed", s.name);
            prop_assert!(end.unwrap() >= s.start, "span {:?} ends before it starts", s.name);
        }
    }

    /// Every child span lies within its parent's sim-time interval and
    /// belongs to the same request as its parent.
    #[test]
    fn children_nest_inside_parents(
        script in proptest::collection::vec((0u8..6, any::<u8>(), 0u16..2_000), 1..40),
    ) {
        let rec = drive(&script);
        let spans = rec.spans();
        for child in &spans {
            let Some(pid) = child.parent else { continue };
            let parent = spans.iter().find(|s| s.id == pid);
            prop_assert!(parent.is_some(), "dangling parent id for {:?}", child.name);
            let parent = parent.unwrap();
            prop_assert_eq!(parent.request, child.request);
            prop_assert!(parent.start <= child.start);
            prop_assert!(
                child.end.unwrap() <= parent.end.unwrap(),
                "child {:?} outlives parent {:?}",
                child.name,
                parent.name
            );
        }
    }

    /// The JSONL export parses back to an identical export, whatever the
    /// mix of requests, spans, attributes, counters, gauges and histograms.
    #[test]
    fn jsonl_round_trips_losslessly(
        script in proptest::collection::vec((0u8..6, any::<u8>(), 0u16..2_000), 1..40),
    ) {
        let rec = drive(&script);
        let export = rec.export();
        let parsed = Export::parse_jsonl(&export.to_jsonl());
        prop_assert!(parsed.is_ok(), "export did not parse: {:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), export);
    }
}
