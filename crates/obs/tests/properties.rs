//! Property tests of the recorder's structural invariants: every span the
//! driver opens can be closed, closed children always nest inside their
//! parents in sim-time, and the JSONL export round-trips losslessly for
//! arbitrary interleavings of requests, spans, instants and metrics.

use proptest::prelude::*;
use whisper_obs::{AvailabilityLedger, Export, Recorder, RequestId, SpanId};
use whisper_simnet::{SimDuration, SimTime};

const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Replays a random op script against a fresh recorder, mirroring the
/// open-span stacks on the test side, then closes everything LIFO.
/// Returns the recorder with `open_span_count() == 0` expected.
fn drive(script: &[(u8, u8, u16)]) -> Recorder {
    let rec = Recorder::new();
    let mut now = SimTime::ZERO;
    let mut requests: Vec<(RequestId, Vec<SpanId>)> = Vec::new();
    for &(op, sel, dt) in script {
        now += SimDuration::from_micros(dt as u64 + 1);
        let name = NAMES[sel as usize % NAMES.len()];
        match op % 6 {
            0 => {
                let req = rec.begin_request(format!("req #{}", requests.len()), now);
                let root = rec.start_span(name, req, now);
                requests.push((req, vec![root]));
            }
            1 | 2 => {
                if !requests.is_empty() {
                    let i = sel as usize % requests.len();
                    let (req, stack) = &mut requests[i];
                    let s = rec.start_span(name, *req, now);
                    rec.set_attr(s, "sel", sel as u64);
                    stack.push(s);
                }
            }
            3 => {
                if !requests.is_empty() {
                    let i = sel as usize % requests.len();
                    let (_, stack) = &mut requests[i];
                    // keep the root open until the final sweep so later ops
                    // on this request still nest under it
                    if stack.len() > 1 {
                        if let Some(s) = stack.pop() {
                            rec.end_span(s, now);
                        }
                    }
                }
            }
            4 => {
                if !requests.is_empty() {
                    let i = sel as usize % requests.len();
                    rec.instant(name, requests[i].0, now);
                }
            }
            _ => {
                rec.incr(name, dt as u64 + 1);
                rec.set_gauge(name, sel as i64 - 2);
                rec.record_duration(name, SimDuration::from_micros(dt as u64 + 1));
            }
        }
    }
    for (_, stack) in &mut requests {
        while let Some(s) = stack.pop() {
            now += SimDuration::from_micros(1);
            rec.end_span(s, now);
        }
    }
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After the closing sweep no span is left open, and every recorded
    /// span has `start <= end`.
    #[test]
    fn every_span_closes(
        script in proptest::collection::vec((0u8..6, any::<u8>(), 0u16..2_000), 1..40),
    ) {
        let rec = drive(&script);
        prop_assert_eq!(rec.open_span_count(), 0);
        for s in rec.spans() {
            let end = s.end;
            prop_assert!(end.is_some(), "span {:?} never closed", s.name);
            prop_assert!(end.unwrap() >= s.start, "span {:?} ends before it starts", s.name);
        }
    }

    /// Every child span lies within its parent's sim-time interval and
    /// belongs to the same request as its parent.
    #[test]
    fn children_nest_inside_parents(
        script in proptest::collection::vec((0u8..6, any::<u8>(), 0u16..2_000), 1..40),
    ) {
        let rec = drive(&script);
        let spans = rec.spans();
        for child in &spans {
            let Some(pid) = child.parent else { continue };
            let parent = spans.iter().find(|s| s.id == pid);
            prop_assert!(parent.is_some(), "dangling parent id for {:?}", child.name);
            let parent = parent.unwrap();
            prop_assert_eq!(parent.request, child.request);
            prop_assert!(parent.start <= child.start);
            prop_assert!(
                child.end.unwrap() <= parent.end.unwrap(),
                "child {:?} outlives parent {:?}",
                child.name,
                parent.name
            );
        }
    }

    /// The JSONL export parses back to an identical export, whatever the
    /// mix of requests, spans, attributes, counters, gauges and histograms.
    #[test]
    fn jsonl_round_trips_losslessly(
        script in proptest::collection::vec((0u8..6, any::<u8>(), 0u16..2_000), 1..40),
    ) {
        let rec = drive(&script);
        let export = rec.export();
        let parsed = Export::parse_jsonl(&export.to_jsonl());
        prop_assert!(parsed.is_ok(), "export did not parse: {:?}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), export);
    }
}

/// Microseconds after the epoch as a [`SimTime`].
fn at(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

/// Replays a random up/down/election script against a fresh ledger,
/// keeping time monotone, and returns the ledger plus the final clock.
fn drive_ledger(script: &[(u8, u8, u16)]) -> (AvailabilityLedger, SimTime) {
    const SERVICE: u64 = 1;
    let ledger = AvailabilityLedger::new();
    let mut now_us = 0u64;
    for &(op, sel, dt) in script {
        now_us += dt as u64 + 1;
        let peer = u64::from(sel % 4) + 1;
        // last proof of life a little before the detection
        let last_seen = at(now_us - u64::from(dt / 2));
        match op % 4 {
            0 => ledger.peer_heartbeat(peer, at(now_us)),
            1 => ledger.peer_down(peer, last_seen, at(now_us)),
            2 => ledger.coordinator_elected(SERVICE, peer, at(now_us)),
            _ => ledger.coordinator_down(SERVICE, peer, last_seen, at(now_us)),
        }
    }
    (ledger, at(now_us + 17))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every peer and service timeline, whatever the event
    /// interleaving: the reported availability is exactly
    /// `uptime / (uptime + downtime)`, and the observed time splits
    /// entirely into those two buckets (`uptime + downtime = now - born`).
    #[test]
    fn ledger_availability_is_uptime_over_total(
        script in proptest::collection::vec((0u8..4, any::<u8>(), 0u16..2_000), 1..60),
    ) {
        let (ledger, now) = drive_ledger(&script);
        let reports = ledger
            .peers()
            .into_iter()
            .filter_map(|p| ledger.peer_report(p, now))
            .chain(
                ledger
                    .services()
                    .into_iter()
                    .filter_map(|s| ledger.service_report(s, now)),
            );
        let mut saw_one = false;
        for r in reports {
            saw_one = true;
            let up = r.uptime.as_micros();
            let down = r.downtime.as_micros();
            let total = up + down;
            prop_assert_eq!(
                total,
                now.since(r.born).as_micros(),
                "observed time must split into uptime + downtime"
            );
            let expected = if total == 0 { 1.0 } else { up as f64 / total as f64 };
            prop_assert!(
                (r.availability - expected).abs() < 1e-9,
                "availability {} != uptime/total {}",
                r.availability,
                expected
            );
            // MTTR/MTTF are means of closed stretches, so they can never
            // exceed the totals they average.
            if let Some(mttr) = r.mttr {
                prop_assert!(mttr.as_micros() * r.failures <= down);
            }
        }
        prop_assert!(saw_one, "at least one timeline exists");
    }
}
