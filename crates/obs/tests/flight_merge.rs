//! Property tests of cross-node incident merging: for arbitrary message
//! exchanges between flight rings, the merged [`IncidentTimeline`] places
//! every send before its matched receive (happens-before is embedded in
//! the Lamport order), keeps each node's own events in recording order,
//! and passes its own `causally_consistent` audit.

use proptest::prelude::*;
use whisper_obs::{FlightEventKind, FlightRing, IncidentTimeline};
use whisper_simnet::{SimDuration, SimTime};

/// One step of the random cluster script.
#[derive(Debug, Clone)]
enum Op {
    /// Node records a local (non-message) event.
    Local(usize),
    /// Node sends to another node; the message sits in flight until a
    /// later `Deliver` pops it.
    Send { from: usize, to: usize },
    /// Deliver the oldest in-flight message selected by index.
    Deliver(usize),
}

fn op_strategy(nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nodes).prop_map(Op::Local),
        (0..nodes, 0..nodes).prop_map(|(from, to)| Op::Send { from, to }),
        (0usize..1 << 16).prop_map(Op::Deliver),
    ]
}

/// A message in flight between two rings.
struct InFlight {
    from: usize,
    to: usize,
    correlation: u64,
    clock: u64,
}

/// Replays `script` against `nodes` fresh rings and returns them plus
/// the correlation ids of every message that was actually delivered.
fn drive(nodes: usize, script: &[Op]) -> (Vec<FlightRing>, Vec<u64>) {
    let mut rings: Vec<FlightRing> = (0..nodes)
        .map(|n| FlightRing::new(n as u64, 1 << 20))
        .collect();
    let mut now = SimTime::ZERO;
    let mut pending: Vec<InFlight> = Vec::new();
    let mut delivered = Vec::new();
    let mut next_correlation = 0u64;
    for op in script {
        now += SimDuration::from_micros(1);
        match *op {
            Op::Local(n) => rings[n].record(
                now,
                FlightEventKind::Fault {
                    action: format!("local on {n}"),
                },
            ),
            Op::Send { from, to } => {
                let correlation = next_correlation;
                next_correlation += 1;
                let clock = rings[from].record_send(now, to as u64, "msg", 16, Some(correlation));
                pending.push(InFlight {
                    from,
                    to,
                    correlation,
                    clock,
                });
            }
            Op::Deliver(sel) => {
                if pending.is_empty() {
                    continue;
                }
                let m = pending.remove(sel % pending.len());
                rings[m.to].record_recv(
                    now,
                    m.from as u64,
                    "msg",
                    16,
                    Some(m.correlation),
                    m.clock,
                );
                delivered.push(m.correlation);
            }
        }
    }
    (rings, delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The merged timeline respects happens-before: every delivered
    /// message's send appears strictly before its receive, per-node
    /// events stay in recording (seq) order, and the timeline's own
    /// causal audit agrees.
    #[test]
    fn merged_timelines_respect_happens_before(
        nodes in 2usize..5,
        script in proptest::collection::vec(op_strategy(4), 1..60),
    ) {
        // op_strategy draws node ids from 0..4; clamp into range.
        let script: Vec<Op> = script
            .into_iter()
            .map(|op| match op {
                Op::Local(n) => Op::Local(n % nodes),
                Op::Send { from, to } => Op::Send { from: from % nodes, to: to % nodes },
                d => d,
            })
            .collect();
        let (rings, delivered) = drive(nodes, &script);
        let timeline = IncidentTimeline::merge(rings.iter().map(|r| r.snapshot()));

        prop_assert!(timeline.causally_consistent());

        // Send-before-receive for every delivered correlation id.
        for c in delivered {
            let send = timeline.positions(|ev| {
                matches!(&ev.kind, FlightEventKind::MsgSend { correlation, .. }
                    if *correlation == Some(c))
            });
            let recv = timeline.positions(|ev| {
                matches!(&ev.kind, FlightEventKind::MsgRecv { correlation, .. }
                    if *correlation == Some(c))
            });
            prop_assert_eq!(send.len(), 1, "correlation {} sent once", c);
            prop_assert_eq!(recv.len(), 1, "correlation {} delivered once", c);
            prop_assert!(
                send[0] < recv[0],
                "send of {} at merged index {} must precede its receive at {}",
                c, send[0], recv[0]
            );
        }

        // Each node's events appear in its own recording order.
        for ring in &rings {
            let mut last_seq = None;
            for ev in timeline.events().iter().filter(|ev| ev.node == ring.node()) {
                if let Some(prev) = last_seq {
                    prop_assert!(ev.seq > prev, "node {} out of order", ring.node());
                }
                last_seq = Some(ev.seq);
            }
        }
    }

    /// Merging is insensitive to dump order: any permutation of the same
    /// per-node dumps yields the identical merged event sequence.
    #[test]
    fn merge_is_dump_order_independent(
        script in proptest::collection::vec(op_strategy(3), 1..40),
    ) {
        let (rings, _) = drive(3, &script);
        let dumps: Vec<Vec<_>> = rings.iter().map(|r| r.snapshot()).collect();
        let forward = IncidentTimeline::merge(dumps.clone());
        let reversed = IncidentTimeline::merge(dumps.into_iter().rev());
        prop_assert_eq!(forward.events(), reversed.events());
    }
}
