//! Typed node snapshots for the in-band introspection plane
//! ("whisper-scope").
//!
//! A [`NodeSnapshot`] is what a live node answers when asked "who are you,
//! who do you think is coordinator, how healthy are your peers?". It is a
//! plain-data value with a full wire codec, so introspection requests ride
//! the same message plane as SOAP traffic and work identically over the
//! deterministic simulator, threadnet, and real TCP sockets.
//!
//! Peers, groups, and pipes are identified by their raw `u64` values here:
//! this crate sits below the p2p substrate in the dependency graph (the
//! substrate depends on *it* for tracing), so it cannot name those types —
//! and an introspection dump is exactly the place where opaque numeric ids
//! are the honest representation.

use std::borrow::Cow;
use whisper_simnet::MetricsSnapshot;
use whisper_wire::{Decode, Encode, Reader, WireError};

/// What kind of actor answered the snapshot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// The SWS-proxy (client-facing semantic gateway).
    Proxy,
    /// A b-peer inside a redundancy group.
    BPeer,
    /// A rendezvous super-peer (discovery hub).
    Rendezvous,
}

impl NodeRole {
    /// Short lowercase label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            NodeRole::Proxy => "proxy",
            NodeRole::BPeer => "b-peer",
            NodeRole::Rendezvous => "rendezvous",
        }
    }
}

impl Encode for NodeRole {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            NodeRole::Proxy => 0,
            NodeRole::BPeer => 1,
            NodeRole::Rendezvous => 2,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for NodeRole {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(NodeRole::Proxy),
            1 => Ok(NodeRole::BPeer),
            2 => Ok(NodeRole::Rendezvous),
            tag => Err(WireError::BadTag {
                what: "NodeRole",
                tag,
            }),
        }
    }
}

/// A b-peer's view of its group election at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ElectionView {
    /// The peer currently believed to be coordinator, if any.
    pub coordinator: Option<u64>,
    /// Whether the answering node itself is that coordinator.
    pub is_coordinator: bool,
    /// The election term (monotone across elections and coordinator
    /// announcements).
    pub term: u64,
    /// Elections this node has initiated.
    pub elections_started: u64,
    /// Protocol phase name (`idle`, `awaiting-answers`,
    /// `awaiting-coordinator`).
    pub phase: String,
}

impl Encode for ElectionView {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.coordinator.encode_into(out);
        self.is_coordinator.encode_into(out);
        self.term.encode_into(out);
        self.elections_started.encode_into(out);
        self.phase.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.coordinator.encoded_len()
            + self.is_coordinator.encoded_len()
            + self.term.encoded_len()
            + self.elections_started.encoded_len()
            + self.phase.encoded_len()
    }
}

impl Decode for ElectionView {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ElectionView {
            coordinator: Option::decode_from(r)?,
            is_coordinator: bool::decode_from(r)?,
            term: u64::decode_from(r)?,
            elections_started: u64::decode_from(r)?,
            phase: String::decode_from(r)?,
        })
    }
}

/// Aggregate summary of one named duration histogram, including its
/// occupied bucket bounds (sparse, so the wire cost is proportional to
/// distinct magnitudes, not samples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Histogram name in the registry.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples in microseconds.
    pub sum_us: u64,
    /// Smallest sample in microseconds.
    pub min_us: u64,
    /// Largest sample in microseconds.
    pub max_us: u64,
    /// Occupied bucket bounds as `(lo µs, hi µs, count)` triples with
    /// half-open ranges `[lo, hi)`, ascending — lets a scope probe
    /// recompute percentiles remotely instead of trusting a point summary.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl Encode for HistSummary {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.count.encode_into(out);
        self.sum_us.encode_into(out);
        self.min_us.encode_into(out);
        self.max_us.encode_into(out);
        self.buckets.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.name.encoded_len()
            + self.count.encoded_len()
            + self.sum_us.encoded_len()
            + self.min_us.encoded_len()
            + self.max_us.encoded_len()
            + self.buckets.encoded_len()
    }
}

impl Decode for HistSummary {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HistSummary {
            name: String::decode_from(r)?,
            count: u64::decode_from(r)?,
            sum_us: u64::decode_from(r)?,
            min_us: u64::decode_from(r)?,
            max_us: u64::decode_from(r)?,
            buckets: Vec::decode_from(r)?,
        })
    }
}

/// A dump of a node's obs metrics registry: counters, gauges, and
/// duration-histogram summaries, each ascending by name.
///
/// Gauges are `i64`; they travel as their two's-complement bit pattern in
/// a `u64` varint, which round-trips every value exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistryDump {
    /// Named counters.
    pub counters: Vec<(String, u64)>,
    /// Named gauges.
    pub gauges: Vec<(String, i64)>,
    /// Duration histogram summaries.
    pub hists: Vec<HistSummary>,
    /// Spans the bounded span store refused because it was full — a
    /// non-zero value tells a scope probe the node is under-sampling and
    /// its span-derived numbers are partial.
    pub spans_dropped: u64,
}

impl Encode for RegistryDump {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.counters.encode_into(out);
        let raw: Vec<(String, u64)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v as u64))
            .collect();
        raw.encode_into(out);
        self.hists.encode_into(out);
        self.spans_dropped.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        let raw: Vec<(String, u64)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v as u64))
            .collect();
        self.counters.encoded_len()
            + raw.encoded_len()
            + self.hists.encoded_len()
            + self.spans_dropped.encoded_len()
    }
}

impl Decode for RegistryDump {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let counters = Vec::decode_from(r)?;
        let raw: Vec<(String, u64)> = Vec::decode_from(r)?;
        let gauges = raw.into_iter().map(|(k, v)| (k, v as i64)).collect();
        let hists = Vec::decode_from(r)?;
        let spans_dropped = u64::decode_from(r)?;
        Ok(RegistryDump {
            counters,
            gauges,
            hists,
            spans_dropped,
        })
    }
}

/// Everything a node reveals about itself to the introspection plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// What kind of actor answered.
    pub role: NodeRole,
    /// The answering node's peer id (raw value).
    pub peer: u64,
    /// The b-peer group it belongs to, when it has one.
    pub group: Option<u64>,
    /// Election state, for actors that take part in one.
    pub election: Option<ElectionView>,
    /// `(peer, age µs)` since each monitored peer was last heard from, at
    /// snapshot time, ascending by peer id.
    pub heartbeat_ages_us: Vec<(u64, u64)>,
    /// Cached `(group, coordinator)` pipe bindings (the proxy's re-binding
    /// cache), ascending by group id.
    pub bindings: Vec<(u64, u64)>,
    /// In-flight work parked at this node: pending requests on the proxy,
    /// stashed-while-busy requests on a b-peer.
    pub queue_depth: u64,
    /// Messages this node has sent, counted per kind with byte totals.
    pub sent: MetricsSnapshot,
    /// Messages this node has received, counted per kind with byte totals.
    pub received: MetricsSnapshot,
    /// Dump of the node's obs metrics registry (empty when tracing is not
    /// enabled).
    pub registry: RegistryDump,
}

impl NodeSnapshot {
    /// A snapshot with everything empty, for building up field by field.
    pub fn empty(role: NodeRole, peer: u64) -> Self {
        NodeSnapshot {
            role,
            peer,
            group: None,
            election: None,
            heartbeat_ages_us: Vec::new(),
            bindings: Vec::new(),
            queue_depth: 0,
            sent: MetricsSnapshot::default(),
            received: MetricsSnapshot::default(),
            registry: RegistryDump::default(),
        }
    }

    /// The coordinator this node currently believes in, if any.
    pub fn coordinator(&self) -> Option<u64> {
        self.election.as_ref().and_then(|e| e.coordinator)
    }
}

impl Encode for NodeSnapshot {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.role.encode_into(out);
        self.peer.encode_into(out);
        self.group.encode_into(out);
        self.election.encode_into(out);
        self.heartbeat_ages_us.encode_into(out);
        self.bindings.encode_into(out);
        self.queue_depth.encode_into(out);
        self.sent.encode_into(out);
        self.received.encode_into(out);
        self.registry.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.role.encoded_len()
            + self.peer.encoded_len()
            + self.group.encoded_len()
            + self.election.encoded_len()
            + self.heartbeat_ages_us.encoded_len()
            + self.bindings.encoded_len()
            + self.queue_depth.encoded_len()
            + self.sent.encoded_len()
            + self.received.encoded_len()
            + self.registry.encoded_len()
    }
}

impl Decode for NodeSnapshot {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeSnapshot {
            role: NodeRole::decode_from(r)?,
            peer: u64::decode_from(r)?,
            group: Option::decode_from(r)?,
            election: Option::decode_from(r)?,
            heartbeat_ages_us: Vec::decode_from(r)?,
            bindings: Vec::decode_from(r)?,
            queue_depth: u64::decode_from(r)?,
            sent: MetricsSnapshot::decode_from(r)?,
            received: MetricsSnapshot::decode_from(r)?,
            registry: RegistryDump::decode_from(r)?,
        })
    }
}

impl crate::Recorder {
    /// Dumps the registry's counters (with net-hook counts merged in, as
    /// in the JSONL export), gauges, and histogram summaries into a
    /// wire-encodable [`RegistryDump`] for a [`NodeSnapshot`].
    pub fn registry_dump(&self) -> RegistryDump {
        let inner = self.lock();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(k, &v)| (k.clone().into_owned(), v))
            .collect();
        for (kind, &n) in &inner.net_sent {
            counters.push((format!("net.sent.{kind}"), n));
        }
        for (kind, &n) in &inner.net_dropped {
            counters.push((format!("net.dropped.{kind}"), n));
        }
        if inner.net_bytes > 0 {
            counters.push(("net.bytes_sent".into(), inner.net_bytes));
        }
        counters.sort();
        let gauges = inner
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone().into_owned(), v))
            .collect();
        let hists = inner
            .durations
            .iter()
            .map(|(k, h)| HistSummary {
                name: match k {
                    Cow::Borrowed(s) => (*s).to_string(),
                    Cow::Owned(s) => s.clone(),
                },
                count: h.count() as u64,
                sum_us: h.sum_micros(),
                min_us: h.min().map(|d| d.as_micros()).unwrap_or(0),
                max_us: h.max().map(|d| d.as_micros()).unwrap_or(0),
                buckets: h.bucket_ranges(),
            })
            .collect();
        RegistryDump {
            counters,
            gauges,
            hists,
            spans_dropped: inner.dropped_spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use whisper_simnet::SimDuration;

    fn sample() -> NodeSnapshot {
        NodeSnapshot {
            role: NodeRole::BPeer,
            peer: 7,
            group: Some(2),
            election: Some(ElectionView {
                coordinator: Some(9),
                is_coordinator: false,
                term: 4,
                elections_started: 1,
                phase: "idle".into(),
            }),
            heartbeat_ages_us: vec![(6, 120), (9, 450)],
            bindings: vec![(2, 9)],
            queue_depth: 3,
            sent: MetricsSnapshot {
                sent: 10,
                bytes_sent: 512,
                by_kind: vec![("heartbeat".into(), 8), ("peer-response".into(), 2)],
                ..Default::default()
            },
            received: MetricsSnapshot {
                sent: 12,
                bytes_sent: 640,
                by_kind: vec![("heartbeat".into(), 12)],
                ..Default::default()
            },
            registry: RegistryDump {
                counters: vec![("requests.handled".into(), 5)],
                gauges: vec![("queue.depth".into(), -3)],
                hists: vec![HistSummary {
                    name: "proxy.rtt".into(),
                    count: 2,
                    sum_us: 900,
                    min_us: 400,
                    max_us: 500,
                    buckets: vec![(400, 408, 1), (496, 504, 1)],
                }],
                spans_dropped: 17,
            },
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.encoded_len());
        assert_eq!(NodeSnapshot::decode(&bytes).unwrap(), s);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = NodeSnapshot::empty(NodeRole::Rendezvous, 1);
        assert_eq!(NodeSnapshot::decode(&s.encode()).unwrap(), s);
        assert_eq!(s.coordinator(), None);
    }

    #[test]
    fn negative_gauges_survive_the_codec() {
        let mut s = NodeSnapshot::empty(NodeRole::Proxy, 1);
        s.registry.gauges = vec![("a".into(), i64::MIN), ("b".into(), -1), ("c".into(), 0)];
        assert_eq!(NodeSnapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn bad_role_tag_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = 9;
        assert_eq!(
            NodeSnapshot::decode(&bytes),
            Err(WireError::BadTag {
                what: "NodeRole",
                tag: 9
            })
        );
    }

    #[test]
    fn registry_dump_merges_net_counters_like_the_export() {
        let rec = Recorder::new();
        rec.incr("requests.handled", 2);
        rec.set_gauge("depth", -4);
        rec.record_duration("rtt", SimDuration::from_micros(250));
        {
            use whisper_simnet::{NetHook, NodeId, SimTime};
            let mut hook = rec.clone();
            hook.on_send(
                SimTime::ZERO,
                NodeId::from_index(0),
                NodeId::from_index(1),
                "ping",
                32,
            );
        }
        let dump = rec.registry_dump();
        let get = |name: &str| {
            dump.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|&(_, v)| v)
        };
        assert_eq!(get("requests.handled"), Some(2));
        assert_eq!(get("net.sent.ping"), Some(1));
        assert_eq!(get("net.bytes_sent"), Some(32));
        assert_eq!(dump.gauges, vec![("depth".to_string(), -4)]);
        assert_eq!(dump.hists.len(), 1);
        assert_eq!(dump.hists[0].sum_us, 250);
        // Satellite: bucket bounds ride along so probes can recompute
        // percentiles; the single 250 µs sample sits in its exact bucket.
        assert_eq!(dump.hists[0].buckets, vec![(250, 251, 1)]);
        assert_eq!(dump.spans_dropped, 0);
    }

    #[test]
    fn span_store_overflow_is_visible_in_the_dump() {
        use whisper_simnet::SimTime;
        let rec = Recorder::with_span_capacity(2);
        let req = rec.begin_request("r", SimTime::ZERO);
        for i in 0..5u64 {
            let s = rec.start_span("phase", req, SimTime::from_micros(i));
            rec.end_span(s, SimTime::from_micros(i + 1));
        }
        let dump = rec.registry_dump();
        assert_eq!(dump.spans_dropped, 3);
        assert_eq!(dump.spans_dropped, rec.dropped_spans());
    }
}
