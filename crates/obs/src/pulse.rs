//! Streaming telemetry plane ("whisper-pulse").
//!
//! The scope plane answers *point-in-time* questions; this module is the
//! push side: every actor periodically emits a [`MetricsDelta`] — the
//! counters and histogram samples accumulated since its previous frame —
//! plus the span trees of requests its [`TailSampler`] flagged as slow.
//! A collector ingests those frames into a bounded [`PulseStore`] of
//! per-node ring buffers ([`TimeSeries`]), which answers windowed queries
//! (rates, p50/p95/p99 over the last N windows) by merging the delta
//! histograms bucket-wise ([`whisper_simnet::Histogram::merge`] is exact
//! at the bucket level, so windowed percentiles have the same fidelity as
//! a single histogram of all the samples).
//!
//! Memory is bounded end to end: each node's ring holds a fixed number of
//! windows, outlier traces live in a bounded deque, and the store tracks
//! its own encoded size and evicts oldest-first when a byte budget is
//! exceeded — an unattended collector cannot grow without bound.

use std::collections::{BTreeMap, VecDeque};

use whisper_simnet::Histogram;
use whisper_wire::{Decode, Encode, Reader, WireError};

/// One telemetry frame: everything a node accumulated since its previous
/// frame. Counters and histograms are *deltas*, not absolutes, so windows
/// can be aggregated by plain summation/merging and a collector restart
/// loses history but never double-counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsDelta {
    /// Frame sequence number per emitter (gaps reveal lost frames).
    pub seq: u64,
    /// Emitter clock at frame time, microseconds.
    pub now_us: u64,
    /// Nominal interval this frame covers, microseconds.
    pub interval_us: u64,
    /// Counter increments since the previous frame (zero deltas omitted),
    /// ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at frame time (gauges are levels, not deltas),
    /// ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram samples recorded since the previous frame, as standalone
    /// delta histograms, ascending by name.
    pub hists: Vec<(String, Histogram)>,
    /// Spans dropped by the emitter's span store since the previous frame.
    pub spans_dropped: u64,
}

impl MetricsDelta {
    /// The delta for one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

impl Encode for MetricsDelta {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.seq.encode_into(out);
        self.now_us.encode_into(out);
        self.interval_us.encode_into(out);
        self.counters.encode_into(out);
        // Gauges travel as their two's-complement bit pattern, like in
        // RegistryDump.
        let raw: Vec<(String, u64)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v as u64))
            .collect();
        raw.encode_into(out);
        self.hists.encode_into(out);
        self.spans_dropped.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        let raw: Vec<(String, u64)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v as u64))
            .collect();
        self.seq.encoded_len()
            + self.now_us.encoded_len()
            + self.interval_us.encoded_len()
            + self.counters.encoded_len()
            + raw.encoded_len()
            + self.hists.encoded_len()
            + self.spans_dropped.encoded_len()
    }
}

impl Decode for MetricsDelta {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seq = u64::decode_from(r)?;
        let now_us = u64::decode_from(r)?;
        let interval_us = u64::decode_from(r)?;
        let counters = Vec::decode_from(r)?;
        let raw: Vec<(String, u64)> = Vec::decode_from(r)?;
        let gauges = raw.into_iter().map(|(k, v)| (k, v as i64)).collect();
        let hists = Vec::decode_from(r)?;
        let spans_dropped = u64::decode_from(r)?;
        Ok(MetricsDelta {
            seq,
            now_us,
            interval_us,
            counters,
            gauges,
            hists,
            spans_dropped,
        })
    }
}

/// One span of a captured outlier trace, flattened for the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseSpan {
    /// Span id within the trace (parent references use these).
    pub id: u32,
    /// Parent span id, `None` for the root.
    pub parent: Option<u32>,
    /// Span name (e.g. `proxy.request`, `match.semantic`).
    pub name: String,
    /// Start time, microseconds of emitter sim-time.
    pub start_us: u64,
    /// End time, microseconds (`start_us` for instant markers; open spans
    /// are clamped to capture time).
    pub end_us: u64,
}

impl Encode for PulseSpan {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.parent.encode_into(out);
        self.name.encode_into(out);
        self.start_us.encode_into(out);
        self.end_us.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.id.encoded_len()
            + self.parent.encoded_len()
            + self.name.encoded_len()
            + self.start_us.encoded_len()
            + self.end_us.encoded_len()
    }
}

impl Decode for PulseSpan {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PulseSpan {
            id: u32::decode_from(r)?,
            parent: Option::decode_from(r)?,
            name: String::decode_from(r)?,
            start_us: u64::decode_from(r)?,
            end_us: u64::decode_from(r)?,
        })
    }
}

/// The span tree of one request the tail sampler decided to keep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutlierTrace {
    /// The emitter's request id (recorder-local).
    pub request: u64,
    /// Request label (e.g. the operation name).
    pub label: String,
    /// End-to-end duration in microseconds, as the emitter measured it.
    pub total_us: u64,
    /// The spans, in start order; parents precede children.
    pub spans: Vec<PulseSpan>,
}

impl Encode for OutlierTrace {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.request.encode_into(out);
        self.label.encode_into(out);
        self.total_us.encode_into(out);
        self.spans.encode_into(out);
    }
    fn encoded_len(&self) -> usize {
        self.request.encoded_len()
            + self.label.encoded_len()
            + self.total_us.encoded_len()
            + self.spans.encoded_len()
    }
}

impl Decode for OutlierTrace {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OutlierTrace {
            request: u64::decode_from(r)?,
            label: String::decode_from(r)?,
            total_us: u64::decode_from(r)?,
            spans: Vec::decode_from(r)?,
        })
    }
}

/// Adaptive tail sampler: always keeps requests slower than a rolling p99
/// threshold, probabilistically keeps `1/sample_one_in` of the rest.
///
/// The threshold is frozen from the current window's p99 at each
/// [`TailSampler::roll`] (called once per pulse interval), so a latency
/// regime shift moves the bar within one interval instead of being
/// averaged away by all-time history. Memory is one bounded
/// [`Histogram`], independent of request volume.
#[derive(Debug, Clone)]
pub struct TailSampler {
    window: Histogram,
    threshold_us: Option<u64>,
    min_samples: u64,
    sample_one_in: u64,
}

impl TailSampler {
    /// `min_samples` observations are required before a p99 threshold is
    /// trusted; until then only the probabilistic path keeps anything.
    /// `sample_one_in == 0` disables probabilistic sampling entirely.
    pub fn new(min_samples: u64, sample_one_in: u64) -> Self {
        TailSampler {
            window: Histogram::new(),
            threshold_us: None,
            min_samples,
            sample_one_in,
        }
    }

    /// Observes one request duration and decides whether to keep its
    /// trace. `coin` is caller-supplied randomness (e.g. from the actor's
    /// deterministic RNG) for the probabilistic path.
    pub fn observe(&mut self, us: u64, coin: u64) -> bool {
        self.window
            .record(whisper_simnet::SimDuration::from_micros(us));
        // Strictly slower than the bar: in a uniform regime the p99
        // value itself is the common case, not the tail.
        let tail = self.current_threshold_us().is_some_and(|t| us > t);
        tail || (self.sample_one_in > 0 && coin.is_multiple_of(self.sample_one_in))
    }

    /// The threshold currently in force: the one frozen at the last roll,
    /// or — before any roll — the live window p99 once warmed up.
    pub fn current_threshold_us(&self) -> Option<u64> {
        self.threshold_us.or_else(|| {
            (self.window.count() as u64 >= self.min_samples)
                .then(|| self.window.percentile(99.0).expect("warm").as_micros())
        })
    }

    /// Rotates the window (call once per pulse interval): refreezes the
    /// threshold from the window just observed when it was warm enough,
    /// then starts a fresh window.
    pub fn roll(&mut self) {
        if self.window.count() as u64 >= self.min_samples {
            self.threshold_us = Some(self.window.percentile(99.0).expect("warm").as_micros());
            self.window = Histogram::new();
        }
    }
}

/// Turns absolute counter/histogram readings into [`MetricsDelta`] frames
/// by remembering the previous reading as a baseline.
#[derive(Debug, Clone, Default)]
pub struct PulseEmitter {
    seq: u64,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    spans_dropped: u64,
}

impl PulseEmitter {
    /// A fresh emitter whose first frame reports everything since zero.
    pub fn new() -> Self {
        PulseEmitter::default()
    }

    /// Builds the next frame from *absolute* readings, advancing the
    /// baseline. Counters whose delta is zero are omitted; histograms are
    /// reduced to the samples recorded since the previous frame via
    /// [`Histogram::since`].
    pub fn frame(
        &mut self,
        now_us: u64,
        interval_us: u64,
        counters: Vec<(String, u64)>,
        gauges: Vec<(String, i64)>,
        hists: Vec<(String, Histogram)>,
        spans_dropped: u64,
    ) -> MetricsDelta {
        let mut counter_deltas = Vec::new();
        for (name, abs) in counters {
            let prev = self.counters.get(&name).copied().unwrap_or(0);
            let delta = abs.saturating_sub(prev);
            if delta > 0 {
                counter_deltas.push((name.clone(), delta));
            }
            self.counters.insert(name, abs);
        }
        let mut hist_deltas = Vec::new();
        for (name, abs) in hists {
            let delta = match self.hists.get(&name) {
                Some(prev) => abs.since(prev),
                None => abs.clone(),
            };
            if delta.count() > 0 {
                hist_deltas.push((name.clone(), delta));
            }
            self.hists.insert(name, abs);
        }
        let dropped_delta = spans_dropped.saturating_sub(self.spans_dropped);
        self.spans_dropped = spans_dropped;
        let seq = self.seq;
        self.seq += 1;
        MetricsDelta {
            seq,
            now_us,
            interval_us,
            counters: counter_deltas,
            gauges,
            hists: hist_deltas,
            spans_dropped: dropped_delta,
        }
    }
}

/// Absolute registry readings for pulse delta framing: counters, gauges,
/// full duration histograms, and the span-drop total.
pub type PulseReadings = (
    Vec<(String, u64)>,
    Vec<(String, i64)>,
    Vec<(String, Histogram)>,
    u64,
);

impl crate::Recorder {
    /// Absolute registry readings for pulse delta framing: counters (with
    /// net-hook counts merged in, like [`crate::Recorder::registry_dump`]),
    /// gauges, full duration histograms, and the span-drop total.
    pub fn pulse_readings(&self) -> PulseReadings {
        let inner = self.lock();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(k, &v)| (k.clone().into_owned(), v))
            .collect();
        for (kind, &n) in &inner.net_sent {
            counters.push((format!("net.sent.{kind}"), n));
        }
        for (kind, &n) in &inner.net_dropped {
            counters.push((format!("net.dropped.{kind}"), n));
        }
        if inner.net_bytes > 0 {
            counters.push(("net.bytes_sent".into(), inner.net_bytes));
        }
        counters.sort();
        let gauges = inner
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone().into_owned(), v))
            .collect();
        let hists = inner
            .durations
            .iter()
            .map(|(k, h)| (k.clone().into_owned(), h.clone()))
            .collect();
        (counters, gauges, hists, inner.dropped_spans)
    }
}

/// Fixed-capacity ring buffer of one node's recent delta frames.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    cap: usize,
    frames: VecDeque<MetricsDelta>,
}

impl TimeSeries {
    /// A ring holding at most `cap` frames (oldest evicted first).
    pub fn new(cap: usize) -> Self {
        TimeSeries {
            cap: cap.max(1),
            frames: VecDeque::new(),
        }
    }

    /// Appends a frame, returning the evicted oldest frame when full.
    pub fn push(&mut self, frame: MetricsDelta) -> Option<MetricsDelta> {
        let evicted = if self.frames.len() == self.cap {
            self.frames.pop_front()
        } else {
            None
        };
        self.frames.push_back(frame);
        evicted
    }

    /// Frames currently held, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &MetricsDelta> {
        self.frames.iter()
    }

    /// Number of frames currently held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Aggregates the most recent `last_n` frames.
    pub fn aggregate(&self, last_n: usize) -> WindowAgg {
        let skip = self.frames.len().saturating_sub(last_n);
        let mut agg = WindowAgg::default();
        for frame in self.frames.iter().skip(skip) {
            agg.absorb(frame);
        }
        agg
    }
}

/// The answer to a windowed query: counters summed and histograms merged
/// over a set of delta frames.
#[derive(Debug, Clone, Default)]
pub struct WindowAgg {
    /// Number of frames absorbed.
    pub windows: usize,
    /// Total time the absorbed frames cover, microseconds.
    pub elapsed_us: u64,
    /// Summed counter deltas.
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge value per name.
    pub gauges: BTreeMap<String, i64>,
    /// Merged delta histograms (bucket-wise exact).
    pub hists: BTreeMap<String, Histogram>,
    /// Summed span drops.
    pub spans_dropped: u64,
}

impl WindowAgg {
    /// Folds one frame into the aggregate.
    pub fn absorb(&mut self, frame: &MetricsDelta) {
        self.windows += 1;
        self.elapsed_us += frame.interval_us;
        for (name, n) in &frame.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, v) in &frame.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &frame.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
        self.spans_dropped += frame.spans_dropped;
    }

    /// Merges another aggregate (e.g. the same window range of a different
    /// node) into this one. `elapsed_us` takes the maximum, not the sum:
    /// nodes report concurrently, so wall-clock coverage does not add up.
    pub fn merge(&mut self, other: &WindowAgg) {
        self.windows = self.windows.max(other.windows);
        self.elapsed_us = self.elapsed_us.max(other.elapsed_us);
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
        self.spans_dropped += other.spans_dropped;
    }

    /// Total of one counter over the window (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Events per second for one counter over the window.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.counter(name) as f64 * 1_000_000.0 / self.elapsed_us as f64
    }

    /// A percentile of one merged histogram, microseconds.
    pub fn quantile_us(&self, hist: &str, p: f64) -> Option<u64> {
        self.hists.get(hist)?.percentile(p).map(|d| d.as_micros())
    }
}

/// The collector's store: per-node frame rings plus a bounded deque of
/// captured outlier traces, with a global byte budget.
#[derive(Debug)]
pub struct PulseStore {
    per_node_windows: usize,
    max_outliers: usize,
    max_bytes: usize,
    nodes: BTreeMap<u64, TimeSeries>,
    outliers: VecDeque<OutlierTrace>,
    bytes: usize,
    frames_ingested: u64,
    outliers_ingested: u64,
    evictions: u64,
}

impl PulseStore {
    /// A store keeping at most `per_node_windows` frames per node and
    /// `max_outliers` traces, never exceeding `max_bytes` of encoded
    /// payload overall.
    pub fn new(per_node_windows: usize, max_outliers: usize, max_bytes: usize) -> Self {
        PulseStore {
            per_node_windows: per_node_windows.max(1),
            max_outliers: max_outliers.max(1),
            max_bytes,
            nodes: BTreeMap::new(),
            outliers: VecDeque::new(),
            bytes: 0,
            frames_ingested: 0,
            outliers_ingested: 0,
            evictions: 0,
        }
    }

    /// Ingests one report from `node`.
    pub fn ingest(&mut self, node: u64, delta: MetricsDelta, outliers: Vec<OutlierTrace>) {
        self.frames_ingested += 1;
        self.bytes += delta.encoded_len();
        let per_node = self.per_node_windows;
        let ring = self
            .nodes
            .entry(node)
            .or_insert_with(|| TimeSeries::new(per_node));
        if let Some(evicted) = ring.push(delta) {
            self.bytes -= evicted.encoded_len();
            self.evictions += 1;
        }
        for trace in outliers {
            self.outliers_ingested += 1;
            self.bytes += trace.encoded_len();
            if self.outliers.len() == self.max_outliers {
                if let Some(old) = self.outliers.pop_front() {
                    self.bytes -= old.encoded_len();
                    self.evictions += 1;
                }
            }
            self.outliers.push_back(trace);
        }
        self.enforce_budget();
    }

    /// Evicts oldest-first until under the byte budget: outlier traces go
    /// before metric frames (a trace is a luxury, the series is the
    /// product).
    fn enforce_budget(&mut self) {
        while self.bytes > self.max_bytes {
            if let Some(old) = self.outliers.pop_front() {
                self.bytes -= old.encoded_len();
                self.evictions += 1;
                continue;
            }
            // Evict the globally oldest frame across nodes.
            let oldest = self
                .nodes
                .iter()
                .filter_map(|(&n, ts)| ts.frames.front().map(|f| (f.now_us, n)))
                .min()
                .map(|(_, n)| n);
            match oldest {
                Some(n) => {
                    let ring = self.nodes.get_mut(&n).expect("node exists");
                    if let Some(old) = ring.frames.pop_front() {
                        self.bytes -= old.encoded_len();
                        self.evictions += 1;
                    }
                    if ring.is_empty() {
                        self.nodes.remove(&n);
                    }
                }
                None => break, // nothing left to evict
            }
        }
    }

    /// Approximate store memory: total encoded bytes of everything held.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Node ids that have reported, ascending.
    pub fn nodes(&self) -> Vec<u64> {
        self.nodes.keys().copied().collect()
    }

    /// One node's frame ring.
    pub fn series(&self, node: u64) -> Option<&TimeSeries> {
        self.nodes.get(&node)
    }

    /// Windowed aggregate over the most recent `last_n` frames of one node.
    pub fn aggregate_node(&self, node: u64, last_n: usize) -> Option<WindowAgg> {
        self.nodes.get(&node).map(|ts| ts.aggregate(last_n))
    }

    /// Windowed aggregate over the most recent `last_n` frames of every
    /// node (counters summed, histograms merged, elapsed = max).
    pub fn aggregate(&self, last_n: usize) -> WindowAgg {
        let mut agg = WindowAgg::default();
        for ts in self.nodes.values() {
            agg.merge(&ts.aggregate(last_n));
        }
        agg
    }

    /// Captured outlier traces, oldest first.
    pub fn outliers(&self) -> impl Iterator<Item = &OutlierTrace> {
        self.outliers.iter()
    }

    /// The most recently captured outlier trace.
    pub fn latest_outlier(&self) -> Option<&OutlierTrace> {
        self.outliers.back()
    }

    /// Total frames ingested since creation (eviction does not subtract).
    pub fn frames_ingested(&self) -> u64 {
        self.frames_ingested
    }

    /// Total outlier traces ingested since creation.
    pub fn outliers_ingested(&self) -> u64 {
        self.outliers_ingested
    }

    /// Frames and traces evicted by ring caps or the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whisper_simnet::SimDuration;

    fn hist_of(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &us in samples {
            h.record(SimDuration::from_micros(us));
        }
        h
    }

    fn frame(seq: u64, now_us: u64, requests: u64, samples: &[u64]) -> MetricsDelta {
        MetricsDelta {
            seq,
            now_us,
            interval_us: 1_000_000,
            counters: vec![("requests".into(), requests)],
            gauges: vec![("depth".into(), seq as i64)],
            hists: vec![("rtt".into(), hist_of(samples))],
            spans_dropped: 0,
        }
    }

    #[test]
    fn delta_codec_round_trips() {
        let d = frame(3, 5_000_000, 40, &[100, 200, 90_000]);
        let bytes = d.encode();
        assert_eq!(bytes.len(), d.encoded_len());
        assert_eq!(MetricsDelta::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn outlier_trace_codec_round_trips() {
        let t = OutlierTrace {
            request: 12,
            label: "StudentInformation".into(),
            total_us: 43_000,
            spans: vec![
                PulseSpan {
                    id: 0,
                    parent: None,
                    name: "proxy.request".into(),
                    start_us: 0,
                    end_us: 43_000,
                },
                PulseSpan {
                    id: 1,
                    parent: Some(0),
                    name: "peer.execute".into(),
                    start_us: 900,
                    end_us: 42_100,
                },
            ],
        };
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(OutlierTrace::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn tail_sampler_keeps_slow_requests_after_warmup() {
        let mut s = TailSampler::new(50, 0);
        for _ in 0..200 {
            // fast regime: nothing kept while warm and under threshold
            s.observe(100, 1);
        }
        assert!(s.current_threshold_us().is_some());
        assert!(s.observe(40_000, 1), "a 400x outlier must be kept");
        assert!(!s.observe(100, 1), "fast requests stay unsampled");
    }

    #[test]
    fn tail_sampler_threshold_rolls_with_the_regime() {
        let mut s = TailSampler::new(10, 0);
        for _ in 0..100 {
            s.observe(100, 1);
        }
        s.roll();
        let slow_bar = s.current_threshold_us().unwrap();
        assert!(slow_bar <= 101, "p99 of a uniform 100µs regime: {slow_bar}");
        // The regime shifts 100x slower; after one roll the threshold
        // follows, so steady 10ms requests stop being "outliers".
        for _ in 0..100 {
            s.observe(10_000, 1);
        }
        s.roll();
        let new_bar = s.current_threshold_us().unwrap();
        assert!(
            new_bar >= 9_000,
            "threshold must follow the regime: {new_bar}"
        );
        assert!(!s.observe(8_000, 1));
    }

    #[test]
    fn tail_sampler_probabilistic_path_is_coin_driven() {
        let mut s = TailSampler::new(1000, 10);
        assert!(s.observe(5, 20), "coin divisible by 10 → kept");
        assert!(!s.observe(5, 21), "coin not divisible → dropped");
    }

    #[test]
    fn emitter_frames_are_true_deltas() {
        let mut e = PulseEmitter::new();
        let f1 = e.frame(
            1_000_000,
            1_000_000,
            vec![("requests".into(), 10)],
            vec![],
            vec![("rtt".into(), hist_of(&[100, 200]))],
            0,
        );
        assert_eq!(f1.seq, 0);
        assert_eq!(f1.counter("requests"), 10);
        assert_eq!(f1.hists[0].1.count(), 2);
        let f2 = e.frame(
            2_000_000,
            1_000_000,
            vec![("requests".into(), 25)],
            vec![],
            vec![("rtt".into(), hist_of(&[100, 200, 300, 400]))],
            0,
        );
        assert_eq!(f2.seq, 1);
        assert_eq!(f2.counter("requests"), 15);
        assert_eq!(f2.hists[0].1.count(), 2, "only the new samples");
        assert_eq!(f2.hists[0].1.sum_micros(), 700);
        // An idle interval emits an empty frame, not a repeat.
        let f3 = e.frame(
            3_000_000,
            1_000_000,
            vec![("requests".into(), 25)],
            vec![],
            vec![("rtt".into(), hist_of(&[100, 200, 300, 400]))],
            0,
        );
        assert!(f3.counters.is_empty());
        assert!(f3.hists.is_empty());
    }

    #[test]
    fn recorder_pulse_readings_include_net_counters() {
        use whisper_simnet::{NetHook, NodeId, SimTime};
        let rec = crate::Recorder::new();
        rec.incr("queries", 3);
        rec.record_duration("rtt", SimDuration::from_micros(500));
        let mut hook = rec.clone();
        hook.on_send(
            SimTime::ZERO,
            NodeId::from_index(0),
            NodeId::from_index(1),
            "ping",
            64,
        );
        let (counters, _gauges, hists, dropped) = rec.pulse_readings();
        assert!(counters.contains(&("queries".to_string(), 3)));
        assert!(counters.contains(&("net.sent.ping".to_string(), 1)));
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].1.count(), 1);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn time_series_ring_evicts_oldest() {
        let mut ts = TimeSeries::new(3);
        for i in 0..5 {
            let evicted = ts.push(frame(i, i * 1_000_000, 1, &[10]));
            if i < 3 {
                assert!(evicted.is_none());
            } else {
                assert_eq!(evicted.unwrap().seq, i - 3);
            }
        }
        assert_eq!(ts.len(), 3);
        let seqs: Vec<u64> = ts.frames().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn window_agg_sums_rates_and_merges_percentiles() {
        let mut ts = TimeSeries::new(8);
        ts.push(frame(0, 1_000_000, 100, &[100; 50]));
        ts.push(frame(1, 2_000_000, 100, &[200; 50]));
        ts.push(frame(2, 3_000_000, 100, &[40_000; 2]));
        let agg = ts.aggregate(3);
        assert_eq!(agg.windows, 3);
        assert_eq!(agg.counter("requests"), 300);
        assert!((agg.rate_per_sec("requests") - 100.0).abs() < 1e-9);
        let p50 = agg.quantile_us("rtt", 50.0).unwrap();
        assert!(p50 <= 200, "p50={p50}");
        let p99 = agg.quantile_us("rtt", 99.0).unwrap();
        assert!(p99 >= 39_000, "p99={p99}");
        // Narrower window sees only the slow frame.
        let last = ts.aggregate(1);
        assert_eq!(last.counter("requests"), 100);
        assert_eq!(last.quantile_us("rtt", 50.0), Some(40_000));
    }

    #[test]
    fn store_aggregates_across_nodes() {
        let mut store = PulseStore::new(8, 4, 1 << 20);
        store.ingest(1, frame(0, 1_000_000, 60, &[100; 10]), vec![]);
        store.ingest(2, frame(0, 1_000_000, 40, &[300; 10]), vec![]);
        assert_eq!(store.nodes(), vec![1, 2]);
        let agg = store.aggregate(4);
        assert_eq!(agg.counter("requests"), 100);
        assert_eq!(agg.elapsed_us, 1_000_000, "elapsed is max, not sum");
        assert_eq!(agg.hists["rtt"].count(), 20);
    }

    #[test]
    fn store_byte_budget_is_enforced_outliers_first() {
        let trace = OutlierTrace {
            request: 1,
            label: "r".into(),
            total_us: 50_000,
            spans: vec![PulseSpan {
                id: 0,
                parent: None,
                name: "client.request".into(),
                start_us: 0,
                end_us: 50_000,
            }],
        };
        // Room for the 4-frame ring plus two traces: outlier history gets
        // trimmed, the series never does.
        let frame_len = frame(0, 0, 1, &[10]).encoded_len();
        let budget = 4 * frame_len + 2 * trace.encoded_len();
        let mut store = PulseStore::new(4, 64, budget);
        for i in 0..100 {
            store.ingest(1, frame(i, i * 1_000_000, 1, &[10]), vec![trace.clone()]);
            assert!(
                store.approx_bytes() <= budget,
                "bytes {} over budget {budget} at frame {i}",
                store.approx_bytes()
            );
        }
        assert!(store.evictions() > 0);
        // The newest outlier survives; history was evicted oldest-first.
        assert_eq!(store.latest_outlier().unwrap().request, 1);
        assert_eq!(store.series(1).unwrap().len(), 4);
    }

    #[test]
    fn store_tracks_exact_encoded_bytes() {
        let mut store = PulseStore::new(4, 4, 1 << 20);
        store.ingest(1, frame(0, 1_000_000, 5, &[100]), vec![]);
        store.ingest(1, frame(1, 2_000_000, 5, &[100]), vec![]);
        let expected: usize = store
            .series(1)
            .unwrap()
            .frames()
            .map(Encode::encoded_len)
            .sum();
        assert_eq!(store.approx_bytes(), expected);
    }
}
