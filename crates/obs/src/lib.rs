//! Request-scoped causal tracing, span timing, and a bounded-memory
//! metrics registry for the Whisper stack.
//!
//! The paper's headline numbers — Table 2 availability, Figure 4 message
//! counts, the 18.43 s failover RTT decomposition — are all explanations
//! of *where time and messages go*. This crate provides the substrate for
//! those explanations:
//!
//! * **Causal trace** — a [`RequestId`] is minted when a request is born
//!   (at the client) and followed across every node it touches. Wire
//!   protocols carry their own ids (SOAP request ids, peer request ids,
//!   discovery query ids), so the [`Recorder`] keeps a namespaced
//!   *correlation* table mapping `(namespace, wire id)` pairs back to the
//!   originating [`RequestId`].
//! * **Spans** — named intervals in sim-time, organised as a tree per
//!   request. Spans may start and end in different actors on different
//!   nodes: the recorder keeps a per-request stack of open spans, so a
//!   span opened while another is open becomes its child, even across
//!   node boundaries (the simulator is causally ordered, which makes this
//!   sound).
//! * **Metrics registry** — named counters, gauges, and bounded-memory
//!   log-bucketed duration histograms (reusing
//!   [`whisper_simnet::Histogram`]).
//! * **Export** — structured JSONL ([`Recorder::to_jsonl`], lossless
//!   round-trip via [`export::Export::parse_jsonl`]) and a span-tree
//!   pretty-printer ([`Recorder::render_request`]) that turns a request
//!   into a flame view.
//!
//! The recorder is cheap to clone (a shared handle) and every method takes
//! `&self`, so one instance can be installed into every actor of a
//! deployment plus the engine's [`whisper_simnet::NetHook`].
//!
//! # Example
//!
//! ```
//! use whisper_obs::Recorder;
//! use whisper_simnet::SimTime;
//!
//! let rec = Recorder::new();
//! let t0 = SimTime::from_micros(100);
//! let req = rec.begin_request("demo", t0);
//! let root = rec.start_span("client.request", req, t0);
//! let child = rec.start_span("proxy.request", req, SimTime::from_micros(150));
//! rec.end_span(child, SimTime::from_micros(400));
//! rec.end_span(root, SimTime::from_micros(500));
//! assert_eq!(rec.spans_of(req).len(), 2);
//! println!("{}", rec.render_request(req));
//! ```

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use whisper_simnet::{Histogram, NetHook, NodeId, SimDuration, SimTime, TraceOutcome};

pub mod export;
pub mod flight;
mod json;
pub mod ledger;
pub mod pulse;
mod render;
pub mod scope;
pub mod slo;

pub use export::Export;
pub use flight::{
    FlightEvent, FlightEventKind, FlightHandle, FlightPlane, FlightRing, IncidentTimeline,
};
pub use ledger::{AvailabilityLedger, AvailabilityReport, DowntimeInterval};
pub use pulse::{
    MetricsDelta, OutlierTrace, PulseEmitter, PulseSpan, PulseStore, TailSampler, TimeSeries,
    WindowAgg,
};
pub use scope::{ElectionView, HistSummary, NodeRole, NodeSnapshot, RegistryDump};
pub use slo::{SloConfig, SloEngine, SloEvent, SloStatus};

/// Identity of one end-to-end request (or other traced activity, such as
/// an election run), minted by [`Recorder::begin_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u32);

impl RequestId {
    /// Numeric value, e.g. for use as a wire tag.
    pub fn value(&self) -> u64 {
        self.0 as u64
    }
}

/// Identity of one span within a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u32);

impl SpanId {
    /// Sentinel returned once the span capacity is exhausted; all
    /// operations on it are no-ops.
    const DROPPED: SpanId = SpanId(u32::MAX);

    /// Whether this span was dropped by the capacity bound.
    pub fn is_dropped(&self) -> bool {
        *self == SpanId::DROPPED
    }
}

/// A span attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    U64(u64),
    Str(Cow<'static, str>),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(Cow::Owned(v))
    }
}

/// One recorded span: a named sim-time interval within a request.
#[derive(Debug, Clone)]
pub struct Span {
    pub id: SpanId,
    pub request: RequestId,
    pub parent: Option<SpanId>,
    pub name: Cow<'static, str>,
    pub start: SimTime,
    /// `None` while the span is still open.
    pub end: Option<SimTime>,
    pub attrs: Vec<(Cow<'static, str>, AttrValue)>,
}

impl Span {
    /// Duration, for closed spans.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.since(self.start))
    }
}

/// One traced request.
#[derive(Debug, Clone)]
pub struct RequestInfo {
    pub id: RequestId,
    pub label: Cow<'static, str>,
    pub started: SimTime,
}

#[derive(Debug, Default)]
struct Inner {
    requests: Vec<RequestInfo>,
    spans: Vec<Span>,
    /// Per-request stack of open spans; the top is the parent of the next
    /// span started for that request.
    open: HashMap<RequestId, Vec<SpanId>>,
    correlations: HashMap<(&'static str, u64), RequestId>,
    counters: BTreeMap<Cow<'static, str>, u64>,
    gauges: BTreeMap<Cow<'static, str>, i64>,
    durations: BTreeMap<Cow<'static, str>, Histogram>,
    net_sent: BTreeMap<&'static str, u64>,
    net_dropped: BTreeMap<&'static str, u64>,
    net_bytes: u64,
    span_capacity: usize,
    dropped_spans: u64,
}

/// Default bound on recorded spans; beyond it new spans are counted but
/// not stored, so a long experiment cannot grow memory without bound.
pub const DEFAULT_SPAN_CAPACITY: usize = 262_144;

/// The shared observability recorder. Clone freely: clones share state.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Creates a recorder with [`DEFAULT_SPAN_CAPACITY`].
    pub fn new() -> Self {
        Recorder::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// Creates a recorder that stores at most `capacity` spans; further
    /// spans are dropped (and counted in [`Recorder::dropped_spans`]).
    pub fn with_span_capacity(capacity: usize) -> Self {
        let inner = Inner {
            span_capacity: capacity,
            ..Inner::default()
        };
        Recorder {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ---- requests & correlation -------------------------------------

    /// Registers a new traced request and returns its id.
    pub fn begin_request(&self, label: impl Into<Cow<'static, str>>, now: SimTime) -> RequestId {
        let mut inner = self.lock();
        let id = RequestId(inner.requests.len() as u32);
        inner.requests.push(RequestInfo {
            id,
            label: label.into(),
            started: now,
        });
        id
    }

    /// All requests seen so far, in creation order.
    pub fn requests(&self) -> Vec<RequestInfo> {
        self.lock().requests.clone()
    }

    /// Maps a wire-protocol id (scoped by `namespace`) to a request, so a
    /// later hop can recover the causal request from its own protocol ids.
    pub fn bind(&self, namespace: &'static str, key: u64, req: RequestId) {
        self.lock().correlations.insert((namespace, key), req);
    }

    /// Resolves a wire-protocol id bound with [`Recorder::bind`].
    pub fn lookup(&self, namespace: &'static str, key: u64) -> Option<RequestId> {
        self.lock().correlations.get(&(namespace, key)).copied()
    }

    /// Drops a correlation (when the wire id is retired).
    pub fn unbind(&self, namespace: &'static str, key: u64) {
        self.lock().correlations.remove(&(namespace, key));
    }

    // ---- spans -------------------------------------------------------

    /// Opens a span. Its parent is the request's innermost open span.
    pub fn start_span(
        &self,
        name: impl Into<Cow<'static, str>>,
        req: RequestId,
        now: SimTime,
    ) -> SpanId {
        let mut inner = self.lock();
        if inner.spans.len() >= inner.span_capacity {
            inner.dropped_spans += 1;
            return SpanId::DROPPED;
        }
        let id = SpanId(inner.spans.len() as u32);
        let parent = inner.open.get(&req).and_then(|stack| stack.last().copied());
        inner.spans.push(Span {
            id,
            request: req,
            parent,
            name: name.into(),
            start: now,
            end: None,
            attrs: Vec::new(),
        });
        inner.open.entry(req).or_default().push(id);
        id
    }

    /// Opens a span and returns a handle that closes it.
    pub fn span(
        &self,
        name: impl Into<Cow<'static, str>>,
        req: RequestId,
        now: SimTime,
    ) -> SpanHandle {
        SpanHandle {
            recorder: self.clone(),
            id: self.start_span(name, req, now),
        }
    }

    /// Records a zero-duration marker span.
    pub fn instant(
        &self,
        name: impl Into<Cow<'static, str>>,
        req: RequestId,
        now: SimTime,
    ) -> SpanId {
        let id = self.start_span(name, req, now);
        self.end_span(id, now);
        id
    }

    /// Closes a span. Closing an already-closed or dropped span is a no-op.
    pub fn end_span(&self, id: SpanId, now: SimTime) {
        if id.is_dropped() {
            return;
        }
        let mut inner = self.lock();
        let Some(span) = inner.spans.get_mut(id.0 as usize) else {
            return;
        };
        if span.end.is_some() {
            return;
        }
        span.end = Some(now);
        let req = span.request;
        if let Some(stack) = inner.open.get_mut(&req) {
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                inner.open.remove(&req);
            }
        }
    }

    /// Closes the request's innermost open span with the given name.
    /// Returns `false` when no such span is open (e.g. it was dropped by
    /// the capacity bound).
    pub fn end_named(&self, req: RequestId, name: &str, now: SimTime) -> bool {
        let id = {
            let inner = self.lock();
            let Some(stack) = inner.open.get(&req) else {
                return false;
            };
            stack
                .iter()
                .rev()
                .copied()
                .find(|&s| inner.spans[s.0 as usize].name == name)
        };
        match id {
            Some(id) => {
                self.end_span(id, now);
                true
            }
            None => false,
        }
    }

    /// Attaches an attribute to a span (no-op on dropped spans).
    pub fn set_attr(
        &self,
        id: SpanId,
        key: impl Into<Cow<'static, str>>,
        value: impl Into<AttrValue>,
    ) {
        if id.is_dropped() {
            return;
        }
        let mut inner = self.lock();
        if let Some(span) = inner.spans.get_mut(id.0 as usize) {
            span.attrs.push((key.into(), value.into()));
        }
    }

    /// All spans, in start order.
    pub fn spans(&self) -> Vec<Span> {
        self.lock().spans.clone()
    }

    /// The spans of one request, in start order.
    pub fn spans_of(&self, req: RequestId) -> Vec<Span> {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.request == req)
            .cloned()
            .collect()
    }

    /// Number of spans currently open across all requests.
    pub fn open_span_count(&self) -> usize {
        self.lock().open.values().map(Vec::len).sum()
    }

    /// Spans discarded by the capacity bound.
    pub fn dropped_spans(&self) -> u64 {
        self.lock().dropped_spans
    }

    // ---- metrics registry -------------------------------------------

    /// Adds `delta` to a named counter.
    pub fn incr(&self, name: impl Into<Cow<'static, str>>, delta: u64) {
        *self.lock().counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Reads a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a named gauge.
    pub fn set_gauge(&self, name: impl Into<Cow<'static, str>>, value: i64) {
        self.lock().gauges.insert(name.into(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records a duration sample into a named bounded histogram.
    pub fn record_duration(&self, name: impl Into<Cow<'static, str>>, d: SimDuration) {
        self.lock()
            .durations
            .entry(name.into())
            .or_default()
            .record(d);
    }

    /// Snapshot of a named duration histogram.
    pub fn duration_histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().durations.get(name).cloned()
    }

    // ---- export & rendering -----------------------------------------

    /// Snapshot of everything recorded, as a serialisable [`Export`].
    pub fn export(&self) -> Export {
        export::snapshot(&self.lock())
    }

    /// Everything recorded, as JSON-lines text.
    pub fn to_jsonl(&self) -> String {
        self.export().to_jsonl()
    }

    /// Pretty-prints one request's span tree with exact sim-durations.
    pub fn render_request(&self, req: RequestId) -> String {
        render::render_request(&self.lock(), req)
    }

    /// Per-span-name totals: `(name, count, total, mean)` over closed
    /// spans, sorted by total descending.
    pub fn phase_summary(&self) -> Vec<(String, u64, SimDuration, SimDuration)> {
        render::phase_summary(&self.lock())
    }
}

/// A handle to an open span; call [`SpanHandle::end`] to close it.
#[derive(Debug, Clone)]
pub struct SpanHandle {
    recorder: Recorder,
    id: SpanId,
}

impl SpanHandle {
    pub fn id(&self) -> SpanId {
        self.id
    }

    pub fn set_attr(&self, key: impl Into<Cow<'static, str>>, value: impl Into<AttrValue>) {
        self.recorder.set_attr(self.id, key, value);
    }

    pub fn end(self, now: SimTime) {
        self.recorder.end_span(self.id, now);
    }
}

/// Installing a [`Recorder`] as the engine's [`NetHook`] counts every
/// message the network carries, by kind and outcome.
impl NetHook for Recorder {
    fn on_send(
        &mut self,
        _now: SimTime,
        _from: NodeId,
        _to: NodeId,
        kind: &'static str,
        bytes: usize,
    ) {
        let mut inner = self.lock();
        *inner.net_sent.entry(kind).or_insert(0) += 1;
        inner.net_bytes += bytes as u64;
    }

    fn on_drop(
        &mut self,
        _now: SimTime,
        _from: NodeId,
        _to: NodeId,
        kind: &'static str,
        _reason: TraceOutcome,
    ) {
        *self.lock().net_dropped.entry(kind).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn spans_nest_via_per_request_stack() {
        let rec = Recorder::new();
        let a = rec.begin_request("a", t(0));
        let b = rec.begin_request("b", t(0));
        let ra = rec.start_span("root", a, t(0));
        let rb = rec.start_span("root", b, t(5));
        let ca = rec.start_span("child", a, t(10));
        // request b's stack is independent of request a's
        let cb = rec.start_span("child", b, t(12));
        rec.end_span(ca, t(20));
        rec.end_span(cb, t(22));
        rec.end_span(ra, t(30));
        rec.end_span(rb, t(32));
        let spans = rec.spans();
        let get = |id: SpanId| spans.iter().find(|s| s.id == id).unwrap();
        assert_eq!(get(ca).parent, Some(ra));
        assert_eq!(get(cb).parent, Some(rb));
        assert_eq!(get(ra).parent, None);
        assert_eq!(get(ca).duration(), Some(SimDuration::from_micros(10)));
        assert_eq!(rec.open_span_count(), 0);
    }

    #[test]
    fn end_named_closes_innermost_match() {
        let rec = Recorder::new();
        let req = rec.begin_request("r", t(0));
        let outer = rec.start_span("invoke", req, t(0));
        let inner = rec.start_span("invoke", req, t(5));
        assert!(rec.end_named(req, "invoke", t(9)));
        let spans = rec.spans();
        assert_eq!(
            spans.iter().find(|s| s.id == inner).unwrap().end,
            Some(t(9))
        );
        assert_eq!(spans.iter().find(|s| s.id == outer).unwrap().end, None);
        assert!(!rec.end_named(req, "missing", t(10)));
    }

    #[test]
    fn correlation_binds_and_unbinds() {
        let rec = Recorder::new();
        let req = rec.begin_request("r", t(0));
        rec.bind("soap", 7, req);
        assert_eq!(rec.lookup("soap", 7), Some(req));
        assert_eq!(rec.lookup("peer", 7), None, "namespaces are distinct");
        rec.unbind("soap", 7);
        assert_eq!(rec.lookup("soap", 7), None);
    }

    #[test]
    fn span_capacity_bounds_memory() {
        let rec = Recorder::with_span_capacity(2);
        let req = rec.begin_request("r", t(0));
        let a = rec.start_span("a", req, t(0));
        let b = rec.start_span("b", req, t(1));
        let c = rec.start_span("c", req, t(2));
        assert!(!a.is_dropped() && !b.is_dropped());
        assert!(c.is_dropped());
        rec.end_span(c, t(3)); // no-op, must not panic
        rec.set_attr(c, "k", 1u64);
        assert_eq!(rec.dropped_spans(), 1);
        assert_eq!(rec.spans().len(), 2);
    }

    #[test]
    fn double_end_is_ignored() {
        let rec = Recorder::new();
        let req = rec.begin_request("r", t(0));
        let s = rec.start_span("s", req, t(0));
        rec.end_span(s, t(5));
        rec.end_span(s, t(99));
        assert_eq!(rec.spans()[0].end, Some(t(5)));
    }

    #[test]
    fn metrics_registry_counts_and_measures() {
        let rec = Recorder::new();
        rec.incr("queries", 2);
        rec.incr("queries", 1);
        assert_eq!(rec.counter("queries"), 3);
        assert_eq!(rec.counter("absent"), 0);
        rec.set_gauge("depth", -4);
        assert_eq!(rec.gauge("depth"), Some(-4));
        rec.record_duration("rtt", SimDuration::from_micros(500));
        rec.record_duration("rtt", SimDuration::from_micros(700));
        let h = rec.duration_histogram("rtt").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(SimDuration::from_micros(600)));
    }

    #[test]
    fn net_hook_counts_by_kind() {
        let mut rec = Recorder::new();
        let n = NodeId::from_index(0);
        NetHook::on_send(&mut rec, t(0), n, n, "ping", 64);
        NetHook::on_send(&mut rec, t(1), n, n, "ping", 64);
        NetHook::on_drop(&mut rec, t(2), n, n, "ping", TraceOutcome::Lost);
        let export = rec.export();
        let get = |name: &str| {
            export
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        assert_eq!(get("net.sent.ping"), Some(2));
        assert_eq!(get("net.dropped.ping"), Some(1));
        assert_eq!(get("net.bytes_sent"), Some(128));
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.incr("x", 1);
        assert_eq!(rec.counter("x"), 1);
    }
}
